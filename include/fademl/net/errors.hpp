#pragma once

#include <cstdint>
#include <string>

#include "fademl/tensor/error.hpp"

namespace fademl::net {

/// Base of all networking-layer failures.
///
/// Every NetError knows whether the operation that raised it is safe to
/// retry (`retryable()`): transport faults (reset, timeout, refused
/// connect) are — the request may simply be replayed against a healthy
/// connection — while protocol violations and terminal application
/// errors are not, because retrying would repeat the same failure or,
/// worse, repeat a non-idempotent effect. The Client's retry loop keys
/// off this flag; it never guesses from the message text.
class NetError : public Error {
 public:
  NetError(const std::string& what, bool retryable)
      : Error(what), retryable_(retryable) {}

  [[nodiscard]] bool retryable() const noexcept { return retryable_; }

 private:
  bool retryable_;
};

/// Could not establish a connection (refused, unreachable, timed out
/// during connect). Retryable: the server may simply not be up yet, or a
/// drain-restart is in progress.
class ConnectError final : public NetError {
 public:
  explicit ConnectError(const std::string& what) : NetError(what, true) {}
};

/// The peer closed or reset the connection mid-stream (EOF inside a
/// frame, ECONNRESET, EPIPE). Retryable for idempotent requests: the
/// request's fate is unknown, but replaying a predict/ping is harmless.
class ConnectionResetError final : public NetError {
 public:
  explicit ConnectionResetError(const std::string& what)
      : NetError(what, true) {}
};

/// A read or write missed its deadline. Retryable: a slow peer or
/// congested path may recover; the caller's retry budget bounds the
/// total wait.
class TimeoutError final : public NetError {
 public:
  explicit TimeoutError(const std::string& what) : NetError(what, true) {}
};

/// The byte stream violated the wire protocol: bad magic, unsupported
/// version, frame length over the bound, CRC mismatch, or a payload that
/// does not parse. Terminal — the stream is unsynchronized and replaying
/// bytes cannot fix a speaker of the wrong protocol.
class ProtocolError final : public NetError {
 public:
  explicit ProtocolError(const std::string& what) : NetError(what, false) {}
};

/// Application-level error codes carried in kError frames. The numeric
/// values are wire format — append only, never renumber.
enum class WireError : uint16_t {
  kInternal = 0,          ///< unclassified server-side failure
  kBadRequest = 1,        ///< request payload failed to decode
  kUnknownModel = 2,      ///< no registry entry with that name
  kInvalidInput = 3,      ///< image failed admission control
  kQueueFull = 4,         ///< request shed by the bounded queue
  kCircuitOpen = 5,       ///< circuit breaker failing fast
  kDeadlineExceeded = 6,  ///< server-side deadline expired
  kShuttingDown = 7,      ///< service draining; no new requests
  kServerBusy = 8,        ///< connection limit reached
  kSwapFailed = 9,        ///< hot swap rejected; old model still serving
  kWorkerLost = 10,       ///< serving replica stalled/died mid-request
  kQuarantinedInput = 11, ///< input fingerprint is on the quarantine list
};

/// Human-readable name of a wire error code (stable, for logs/tests).
const char* wire_error_name(WireError code);

/// True if a request failing with `code` is worth retrying (possibly
/// against the same server a moment later): transient overload and
/// drain conditions are; semantic rejections are not.
bool wire_error_retryable(WireError code);

/// The server answered with a kError frame. Retryability comes from the
/// frame itself (the server knows whether the condition is transient),
/// so an old client still handles error codes a newer server may add.
class RemoteError final : public NetError {
 public:
  RemoteError(WireError code, const std::string& what, bool retryable)
      : NetError(what, retryable), code_(code) {}

  [[nodiscard]] WireError code() const noexcept { return code_; }

 private:
  WireError code_;
};

/// Local shorthand for RemoteError{kUnknownModel}: the request named a
/// model the registry does not serve. Terminal — retrying cannot create
/// the model.
class UnknownModelError final : public NetError {
 public:
  explicit UnknownModelError(const std::string& what)
      : NetError(what, false) {}
};

/// A hot swap failed validation or load; the previous checkpoint is
/// still serving. Terminal for this checkpoint — the caller must supply
/// a healthy bundle, not retry the damaged one.
class SwapError final : public NetError {
 public:
  explicit SwapError(const std::string& what) : NetError(what, false) {}
};

}  // namespace fademl::net
