#pragma once

#include "fademl/attacks/fademl_attack.hpp"
#include "fademl/core/analysis.hpp"

namespace fademl::core {

/// Verbatim trace of the six-step FAdeML methodology (Fig. 8 of the
/// paper), one field per step, so experiments and documentation can point
/// at the exact quantity each step defines.
struct FademlTrace {
  // Step 1: reference sample x and a sample y of the target class.
  Tensor x;
  Tensor y;
  Scenario scenario;

  // Step 2: prediction gap between x and y under TM-I
  // (f(cost) = Σ Px(Cn) − Py(C*n)).
  Prediction x_clean;
  Prediction y_clean;
  float initial_gap = 0.0f;

  // Step 3: the adversarial example x* = η·n + x.
  attacks::AttackResult attack;

  // Step 4: x* under the filtered route (TM-II/III).
  Prediction x_star_filtered;

  // Step 5: Eq.-2 consistency cost between the TM-I and TM-II/III views
  // of x*.
  Prediction x_star_tm1;
  float eq2 = 0.0f;

  // Step 6 outcome: did the filter-aware optimization land the target
  // through the filter?
  [[nodiscard]] bool success() const {
    return x_star_filtered.label == scenario.target_class;
  }
};

/// Run the full Fig.-8 methodology for one scenario with the chosen base
/// attack, filter-aware along `eval_tm` (kII or kIII).
FademlTrace run_fademl_methodology(const InferencePipeline& pipeline,
                                   attacks::AttackKind base,
                                   const Scenario& scenario,
                                   int64_t image_size,
                                   const attacks::AttackConfig& budget,
                                   ThreatModel eval_tm = ThreatModel::kIII);

}  // namespace fademl::core
