#pragma once

#include <string>

namespace fademl::core {

/// The three attacker capability models of Fig. 2.
///
/// - `kI`: the attacker writes directly into the DNN's input buffer, i.e.
///   *after* the pre-processing noise filter. Adversarial pixels reach the
///   network untouched.
/// - `kII`: the attacker manipulates the scene *before* data acquisition;
///   the perturbed image passes through the acquisition stage (modelled as
///   a mild optical blur) and then the noise filter.
/// - `kIII`: the attacker perturbs the acquired data before the input
///   buffer; the perturbation passes through the noise filter only.
///
/// The paper analyzes II and III jointly ("Threat Models II/III") because
/// both route the perturbation through the filter; the acquisition blur of
/// II only strengthens the same effect.
enum class ThreatModel {
  kI,
  kII,
  kIII,
};

/// "TM-I", "TM-II", "TM-III".
const std::string& threat_model_name(ThreatModel tm);

}  // namespace fademl::core
