#pragma once

#include <vector>

#include "fademl/attacks/attack.hpp"
#include "fademl/core/cost.hpp"
#include "fademl/core/pipeline.hpp"
#include "fademl/core/scenarios.hpp"
#include "fademl/data/dataset.hpp"

namespace fademl::core {

/// Everything the paper's per-scenario figure cells report about one
/// attack run: the clean prediction, the adversarial prediction under
/// Threat Model I (attack succeeds?), the adversarial prediction under
/// Threat Models II/III (does the filter neutralize it?), and the Eq.-2
/// consistency cost between those two views.
struct ScenarioOutcome {
  Scenario scenario;
  attacks::AttackResult attack;

  Prediction clean;     ///< source image through the deployed pipeline
  Prediction adv_tm1;   ///< adversarial image injected after the filter
  Prediction adv_tm23;  ///< adversarial image routed through the filter
  float eq2 = 0.0f;     ///< Eq. 2 between adv_tm1 and adv_tm23 probabilities

  /// Did the targeted misclassification land under each view?
  [[nodiscard]] bool success_tm1() const {
    return adv_tm1.label == scenario.target_class;
  }
  [[nodiscard]] bool success_tm23() const {
    return adv_tm23.label == scenario.target_class;
  }
  /// Did the filter restore the source class?
  [[nodiscard]] bool neutralized() const {
    return adv_tm23.label == scenario.source_class;
  }
};

/// The Fig.-3 analysis methodology: craft an adversarial example with a
/// chosen attack, then compare its behaviour between Threat Model I and
/// Threat Models II/III on a given pipeline.
///
/// `eval_tm` selects which filtered route (kII or kIII) the comparison
/// uses; the paper treats the two jointly.
ScenarioOutcome analyze_scenario(const InferencePipeline& pipeline,
                                 const attacks::Attack& attack,
                                 const Scenario& scenario,
                                 const Tensor& source_image,
                                 ThreatModel eval_tm = ThreatModel::kIII);

/// Convenience: pick a well-classified source image for the scenario at
/// `image_size` (see `well_classified_sample`) and call `analyze_scenario`.
ScenarioOutcome analyze_scenario(const InferencePipeline& pipeline,
                                 const attacks::Attack& attack,
                                 const Scenario& scenario, int64_t image_size,
                                 ThreatModel eval_tm = ThreatModel::kIII);

/// A rendering of `class_id` that the *unfiltered* DNN classifies
/// correctly, preferring the highest confidence among the canonical pose
/// and `attempts` randomized ones. The paper's scenarios start from
/// sources the classifier is sure about (99%+ clean confidence); this is
/// the attacker's step of picking such an input. Falls back to the
/// best-confidence candidate if none classifies correctly.
Tensor well_classified_sample(const InferencePipeline& pipeline,
                              int64_t class_id, int64_t image_size,
                              int attempts = 8);

/// Top-1/top-5 accuracy of the pipeline over a labelled set when the given
/// adversarial noise is added to *every* sample (the universal-noise
/// evaluation behind the paper's "overall top-5 accuracy" panels in
/// Figs. 6, 7 and 9). Pass an undefined tensor for the no-attack rows.
InferencePipeline::Accuracy accuracy_with_noise(
    const InferencePipeline& pipeline, const std::vector<Tensor>& images,
    const std::vector<int64_t>& labels, const Tensor& noise, ThreatModel tm);

/// One row of the accuracy panels: accuracy per filter configuration.
struct FilterSweepPoint {
  std::string filter_name;
  double top5_no_attack = 0.0;
  std::vector<double> top5_under_attack;  ///< one entry per attack
};

}  // namespace fademl::core
