#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "fademl/data/dataset.hpp"
#include "fademl/nn/module.hpp"
#include "fademl/nn/trainer.hpp"
#include "fademl/nn/vggnet.hpp"

namespace fademl::core {

/// Shared configuration of every experiment binary: the synthetic-GTSRB
/// benchmark plus the width-scaled VGGNet trained on it.
///
/// The trained model is cached under `cache_dir` keyed by the
/// configuration, so the first experiment run trains once and every later
/// run (any bench, any example) loads in milliseconds. Set `FADEML_FAST=1`
/// in the environment for a drastically smaller setup (smoke-test scale);
/// `FADEML_CACHE_DIR` overrides the cache location.
struct ExperimentConfig {
  int64_t image_size = 32;
  /// VGG width divisor: paper widths {64,...,512} divided by this
  /// (8 -> {8, 16, 32, 64, 64}); see DESIGN.md §2 on why widths scale.
  int64_t width_divisor = 8;
  int64_t train_per_class = 32;
  int64_t test_per_class = 8;
  int64_t epochs = 18;
  /// Training augmentation strength (see data::SynthConfig). The defaults
  /// balance two paper phenomena: enough blur/noise robustness for the
  /// filter sweet-spot curves (Figs. 7/9 panels), while staying attackable
  /// by the one-step FGSM (Fig. 5).
  float train_blur_max = 1.2f;
  float train_noise_max = 0.08f;
  float test_noise_std = 0.06f;
  /// 0.01 is the stable region for this depth/width at batch 16 with
  /// momentum 0.9; 0.05 oscillates at the uniform-logits plateau.
  float lr = 0.01f;
  float lr_decay = 0.9f;
  int64_t batch_size = 16;
  uint64_t seed = 42;
  std::string cache_dir = "artifacts";
  bool verbose = true;

  /// Default config adjusted by FADEML_FAST / FADEML_CACHE_DIR.
  static ExperimentConfig from_env();

  /// Cache file that uniquely identifies this configuration.
  [[nodiscard]] std::string checkpoint_path() const;

  /// Sidecar file holding the in-progress training snapshot
  /// (`checkpoint_path() + ".snap"`). An interrupted training run resumes
  /// from it; it is deleted once the final checkpoint is durably saved.
  [[nodiscard]] std::string snapshot_path() const;
};

/// A ready-to-attack experiment: data + trained model + its clean metrics.
struct Experiment {
  ExperimentConfig config;
  std::shared_ptr<nn::Sequential> model;
  data::SynthGtsrb dataset;
  nn::EvalResult clean_test;  ///< unfiltered test accuracy of the model
};

/// Build the experiment: synthesize the dataset, then train the VGGNet or
/// load it from the cache. Deterministic in `config`.
Experiment make_experiment(const ExperimentConfig& config);

}  // namespace fademl::core
