#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "fademl/core/pipeline.hpp"

namespace fademl::core {

/// Row-normalized confusion matrix and per-class statistics of a pipeline
/// over a labelled set — the diagnostic behind "which classes does the
/// filter/attack actually confuse?" questions the figures raise.
class ConfusionMatrix {
 public:
  explicit ConfusionMatrix(int64_t num_classes);

  /// Record one (true label, predicted label) observation.
  void record(int64_t truth, int64_t predicted);

  [[nodiscard]] int64_t num_classes() const { return num_classes_; }
  [[nodiscard]] int64_t count(int64_t truth, int64_t predicted) const;
  [[nodiscard]] int64_t total() const { return total_; }

  /// Overall accuracy (trace / total).
  [[nodiscard]] double accuracy() const;

  /// Recall of one class (diagonal / row sum); 0 when the class is absent.
  [[nodiscard]] double recall(int64_t cls) const;

  /// Precision of one class (diagonal / column sum); 0 when never
  /// predicted.
  [[nodiscard]] double precision(int64_t cls) const;

  /// The most confused (truth, predicted, count) pairs, descending,
  /// excluding the diagonal.
  struct Confusion {
    int64_t truth;
    int64_t predicted;
    int64_t count;
  };
  [[nodiscard]] std::vector<Confusion> top_confusions(int k) const;

 private:
  int64_t num_classes_;
  int64_t total_ = 0;
  std::vector<int64_t> counts_;  // row-major [truth][predicted]
};

/// Evaluate the pipeline over a labelled set into a confusion matrix.
ConfusionMatrix confusion_matrix(const InferencePipeline& pipeline,
                                 const std::vector<Tensor>& images,
                                 const std::vector<int64_t>& labels,
                                 ThreatModel tm);

}  // namespace fademl::core
