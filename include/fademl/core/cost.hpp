#pragma once

#include "fademl/core/pipeline.hpp"
#include "fademl/tensor/tensor.hpp"

namespace fademl::core {

/// Equation 2 of the paper:
///
///   f(cost) = Σ_{n=1..5}  P(C_n) − P(C*_n)
///
/// where C_n are the top-5 classes of the reference prediction (threat
/// model I) with probabilities P(C_n), and P(C*_n) are the probabilities of
/// *those same classes* under the comparison prediction (threat models
/// II/III). A cost near zero means the filter did not disturb the attack;
/// a large cost means the filter redistributed the probability mass the
/// attack had concentrated.
float eq2_cost(const Tensor& reference_probs, const Tensor& comparison_probs);

/// The Fig.-8 attack cost between a perturbed sample's top-5 and the
/// *target* sample's top-5:  f(cost) = Σ_{n=1..5} Px(C_n) − Py(C*_n).
/// Minimizing it pulls x's top-5 mass onto y's top-5 classes.
float fademl_cost(const Tensor& x_probs, const Tensor& y_probs);

/// Weight vector w (length = num classes) such that
/// dot(probs, w) == eq2-style cost against `reference_probs`'s top-5 set.
/// Used to build differentiable Eq.-2 objectives via autograd::dot_const.
Tensor top5_weight_vector(const Tensor& reference_probs);

}  // namespace fademl::core
