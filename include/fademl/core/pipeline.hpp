#pragma once

#include <atomic>
#include <functional>
#include <memory>
#include <vector>

#include "fademl/autograd/variable.hpp"
#include "fademl/core/threat_model.hpp"
#include "fademl/filters/filter.hpp"
#include "fademl/nn/module.hpp"
#include "fademl/plan/plan.hpp"

namespace fademl::core {

/// Classifier output for one image: the full distribution plus the top-5
/// summary the paper's figures report.
struct Prediction {
  Tensor probs;                     ///< [num_classes] softmax probabilities
  int64_t label = -1;               ///< argmax class
  float confidence = 0.0f;          ///< probability of `label`
  std::vector<int64_t> top5;        ///< class ids, descending probability
  std::vector<float> top5_probs;    ///< matching probabilities
};

/// Objective for input-gradient queries: maps the [1, C] logits Variable to
/// a scalar Variable (e.g. targeted cross-entropy, or the Eq.-2 weighted
/// probability sum). Must use fademl::autograd ops so the tape reaches the
/// input.
using Objective =
    std::function<autograd::Variable(const autograd::Variable& logits)>;

/// Batched objective: maps the [N, C] logits Variable to the [N] vector of
/// per-image losses. Each row must depend only on its own logits row (the
/// batched attack drivers rely on this to keep per-image results bitwise
/// identical to the single-image path); build these from the row-wise ops
/// (autograd::cross_entropy_rows, autograd::rowwise_dot_const).
using BatchObjective =
    std::function<autograd::Variable(const autograd::Variable& logits)>;

/// Scalar loss + gradient of that loss w.r.t. the *attacker-controlled*
/// image (i.e. after routing through the filter when requested).
struct LossGrad {
  float loss = 0.0f;
  Tensor grad;  ///< [C, H, W], same shape as the query image
};

/// Batched counterpart of LossGrad: one loss and one gradient row per
/// cohort image.
struct BatchLossGrad {
  std::vector<float> losses;  ///< per-image objective values
  Tensor grads;               ///< [N, C, H, W], same shape as the batch
};

/// The ML inference module of Fig. 2: pre-processing noise filter + DNN.
///
/// The pipeline knows how each threat model routes an attacker-controlled
/// image to the DNN input buffer and provides both inference
/// (`predict`) and differentiation (`loss_and_grad`) along that route —
/// the latter is what makes filter-aware (FAdeML) attacks possible.
class InferencePipeline {
 public:
  /// `acquisition_blur_sigma` models the optical/sensor blur that Threat
  /// Model II's perturbation passes through before the filter.
  InferencePipeline(std::shared_ptr<nn::Module> model,
                    filters::FilterPtr filter,
                    float acquisition_blur_sigma = 0.6f);

  [[nodiscard]] nn::Module& model() const { return *model_; }
  [[nodiscard]] const std::shared_ptr<nn::Module>& model_ptr() const {
    return model_;
  }
  [[nodiscard]] const filters::Filter& filter() const { return *filter_; }
  [[nodiscard]] const filters::FilterPtr& filter_ptr() const {
    return filter_;
  }

  /// Replace the pre-processing filter (used by the experiment sweeps).
  /// Invalidates every cached inference plan — they baked in the old
  /// routing prologue.
  void set_filter(filters::FilterPtr filter);

  /// Fetch (or compile on first use) the inference plan for an
  /// [N, C, H, W] batch shape under `tm`. Returns nullptr when the
  /// model/shape combination is not plannable; results — including the
  /// negative ones — are cached per (tm, shape) and invalidated by
  /// set_filter and by model hot swaps (plan::bump_swap_generation).
  [[nodiscard]] std::shared_ptr<const plan::InferencePlan> compile_plan(
      const Shape& batch_shape, ThreatModel tm) const;

  /// Per-instance override of the process-wide plan switch
  /// (plan::plans_enabled, i.e. the FADEML_DISABLE_PLAN escape hatch).
  /// Lets tests force the plan path on under a disabled environment and
  /// vice versa.
  void set_plan_enabled(bool enabled) {
    plan_override_.store(enabled ? 1 : 0, std::memory_order_relaxed);
  }
  [[nodiscard]] bool plan_enabled() const {
    const int o = plan_override_.load(std::memory_order_relaxed);
    return o < 0 ? plan::plans_enabled() : o == 1;
  }

  /// Which path served the most recent predict_probs_batch on this
  /// pipeline (readable from other threads; serve's stats collector polls
  /// it right after each batch).
  [[nodiscard]] plan::ExecPath last_exec_path() const {
    return static_cast<plan::ExecPath>(
        last_exec_path_.load(std::memory_order_relaxed));
  }

  /// Cumulative plan-vs-tape counters for this pipeline.
  [[nodiscard]] plan::PlanStats plan_stats() const;

  /// The image that actually reaches the DNN input buffer when the
  /// attacker supplies `image` under threat model `tm`.
  [[nodiscard]] Tensor route(const Tensor& image, ThreatModel tm) const;

  /// Batched routing: every image of an [N, C, H, W] batch routed under
  /// `tm`. Row i is bitwise identical to `route` on image i alone.
  [[nodiscard]] Tensor route_batch(const Tensor& batch, ThreatModel tm) const;

  /// Full prediction for one [C, H, W] image under `tm`.
  [[nodiscard]] Prediction predict(const Tensor& image, ThreatModel tm) const;

  /// Softmax probabilities only.
  [[nodiscard]] Tensor predict_probs(const Tensor& image,
                                     ThreatModel tm) const;

  /// Batched softmax probabilities: [N, C, H, W] in, [N, num_classes] out.
  /// Row i is bitwise identical to `predict_probs` on image i alone — the
  /// model's forward and the filters touch each batch row independently.
  [[nodiscard]] Tensor predict_probs_batch(const Tensor& batch,
                                           ThreatModel tm) const;

  /// Full predictions for every image of an [N, C, H, W] batch; entry i is
  /// bitwise identical to `predict` on image i alone.
  [[nodiscard]] std::vector<Prediction> predict_batch(const Tensor& batch,
                                                      ThreatModel tm) const;

  /// Evaluate `objective` on the routed image and differentiate it back to
  /// the attacker-controlled pixels. For TM-I the gradient is the plain
  /// input gradient; for TM-II/III it is chained through the filter's
  /// vector–Jacobian product (and the acquisition blur for TM-II).
  /// Implemented as the N = 1 case of `loss_and_grad_batch`.
  [[nodiscard]] LossGrad loss_and_grad(const Tensor& image,
                                       const Objective& objective,
                                       ThreatModel tm) const;

  /// Batched objective evaluation + differentiation: one forward and one
  /// backward for the whole [N, C, H, W] cohort. `objective` maps the
  /// [N, num_classes] logits to [N] per-image losses; the backward pass
  /// seeds every row with 1 (the sum of the per-image losses), so
  /// `grads` row i and `losses[i]` are bitwise identical to
  /// `loss_and_grad` on image i with the matching scalar objective.
  [[nodiscard]] BatchLossGrad loss_and_grad_batch(
      const Tensor& batch, const BatchObjective& objective,
      ThreatModel tm) const;

  /// Top-1/top-5 accuracy of the pipeline over a labelled set under `tm`
  /// (every image routed like attacker data; for clean data TM-III simply
  /// means "the deployed pipeline with its filter").
  struct Accuracy {
    double top1 = 0.0;
    double top5 = 0.0;
  };
  [[nodiscard]] Accuracy accuracy(const std::vector<Tensor>& images,
                                  const std::vector<int64_t>& labels,
                                  ThreatModel tm) const;

 private:
  std::shared_ptr<nn::Module> model_;
  filters::FilterPtr filter_;
  filters::FilterPtr acquisition_blur_;
  // Plan machinery is an implementation detail of const inference entry
  // points, hence mutable. -1 = inherit the process default.
  mutable plan::PlanCache plan_cache_;
  std::atomic<int> plan_override_{-1};
  mutable std::atomic<std::uint64_t> plan_batches_{0};
  mutable std::atomic<std::uint64_t> tape_batches_{0};
  mutable std::atomic<int> last_exec_path_{
      static_cast<int>(plan::ExecPath::kTape)};
};

/// Build a Prediction from a probability vector.
Prediction summarize_probs(const Tensor& probs);

}  // namespace fademl::core
