#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace fademl::core {

/// One targeted-misclassification payload: force `source_class` to be
/// classified as `target_class`.
struct Scenario {
  std::string name;
  int64_t source_class;
  int64_t target_class;
};

/// The paper's five payload scenarios (Section III-A):
///   1. stop sign        -> speed limit 60 km/h
///   2. 30 km/h          -> 80 km/h
///   3. turn left ahead  -> turn right ahead
///   4. turn right ahead -> turn left ahead
///   5. no entry         -> speed limit 60 km/h
const std::vector<Scenario>& paper_scenarios();

}  // namespace fademl::core
