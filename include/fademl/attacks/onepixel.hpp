#pragma once

#include "fademl/attacks/attack.hpp"
#include "fademl/tensor/random.hpp"

namespace fademl::attacks {

/// Options specific to the one-pixel attack.
struct OnePixelOptions {
  int pixels = 3;          ///< how many pixels the attacker may change
  int population = 32;     ///< differential-evolution population size
  int generations = 25;    ///< DE generations
  float de_f = 0.5f;       ///< DE differential weight
  uint64_t seed = 1234;
};

/// One-pixel attack (Su et al. 2017), cited in the paper's attack survey.
///
/// A *black-box* attack: no gradients, only queries. Differential
/// evolution searches over candidate perturbations of a handful of pixels
/// (position + RGB), maximizing the target-class probability of the
/// *deployed* pipeline route (`config.grad_tm`). Because it only ever
/// queries the real pipeline, it is automatically filter-aware under
/// TM-II/III — a point the paper's white-box/black-box discussion (§II-B)
/// sets up and this implementation makes concrete.
class OnePixelAttack final : public Attack {
 public:
  explicit OnePixelAttack(AttackConfig config = {},
                          OnePixelOptions options = {});

  [[nodiscard]] std::string name() const override;
  [[nodiscard]] AttackResult run(const core::InferencePipeline& pipeline,
                                 const Tensor& source,
                                 int64_t target_class) const override;

 private:
  OnePixelOptions options_;
};

}  // namespace fademl::attacks
