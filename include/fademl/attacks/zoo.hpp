#pragma once

#include "fademl/attacks/attack.hpp"
#include "fademl/tensor/random.hpp"

namespace fademl::attacks {

/// Options specific to the ZOO attack.
struct ZooOptions {
  int coords_per_step = 64;  ///< random coordinates estimated per step
  float fd_eps = 1e-2f;      ///< finite-difference probe size
  float adam_lr = 2e-2f;
  uint64_t seed = 99;
};

/// Zeroth-Order Optimization attack (Chen et al., AISec 2017), cited in
/// the paper's attack survey.
///
/// Black-box C&W: the same margin loss, but its gradient is *estimated*
/// with symmetric finite differences on randomly chosen coordinates, so
/// only prediction queries are needed. Like the one-pixel attack, ZOO
/// queries the deployed route (`config.grad_tm`), making it filter-aware
/// for free under TM-II/III. `AttackResult::iterations` counts pipeline
/// queries (the black-box cost metric).
class ZooAttack final : public Attack {
 public:
  explicit ZooAttack(AttackConfig config = {}, ZooOptions options = {});

  [[nodiscard]] std::string name() const override;
  [[nodiscard]] AttackResult run(const core::InferencePipeline& pipeline,
                                 const Tensor& source,
                                 int64_t target_class) const override;

 private:
  ZooOptions options_;
};

}  // namespace fademl::attacks
