#pragma once

#include "fademl/attacks/attack.hpp"

namespace fademl::attacks {

/// Basic Iterative Method (Kurakin et al. 2016), the iterated, clipped
/// refinement of FGSM:
///
///   x_{k+1} = clip_{x,ε}( x_k − α · sign(∇_x J(x_k, target)) )
///
/// Each iterate is clipped both to the ε-ball around the source and to the
/// valid pixel range, keeping per-pixel changes small as the paper
/// describes.
class BimAttack final : public Attack {
 public:
  explicit BimAttack(AttackConfig config = {});

  [[nodiscard]] std::string name() const override;
  [[nodiscard]] AttackResult run(const core::InferencePipeline& pipeline,
                                 const Tensor& source,
                                 int64_t target_class) const override;
};

}  // namespace fademl::attacks
