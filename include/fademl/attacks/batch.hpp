#pragma once

#include <string>
#include <vector>

#include "fademl/attacks/attack.hpp"
#include "fademl/attacks/fademl_attack.hpp"
#include "fademl/attacks/lbfgs.hpp"

namespace fademl::attacks {

/// Cohort driver for the attack library: runs N (source, target) pairs
/// through one attack with **one batched gradient evaluation per
/// optimizer iteration** instead of N independent single-image runs.
///
/// The contract is strict: the i-th AttackResult — adversarial image,
/// noise, norms, iteration count, and loss history — is bitwise identical
/// to `Attack::run` on pair i alone. This works because every batched
/// pipeline primitive (`predict_probs_batch`, `loss_and_grad_batch`) is
/// row-wise bitwise identical to its single-image form, and per-image
/// early stopping is handled by masking images out of subsequent batches
/// rather than by changing their arithmetic.
///
/// FGSM, BIM and L-BFGS have native batched drivers (L-BFGS runs its
/// per-image two-loop recursions locally and lock-steps the cohort through
/// shared batched gradient and line-search probe evaluations). C&W falls
/// back to per-image runs with the same result contract.
class BatchAttack {
 public:
  /// `filter_aware` wraps the base kind the way FAdeMLAttack does: the
  /// gradient route is forced to TM-III when `config.grad_tm` is left at
  /// TM-I, and the Eq.-2 consistency cost of every final adversarial is
  /// recorded in `eq2_costs()`.
  explicit BatchAttack(AttackKind kind, AttackConfig config = {},
                       bool filter_aware = false, LbfgsOptions lbfgs = {});

  /// "FGSM" / "BIM" / ... or "FAdeML-..." when gradients route through
  /// the filter — matching the single-image Attack::name().
  [[nodiscard]] std::string name() const;

  [[nodiscard]] const AttackConfig& config() const { return config_; }

  /// Attack pair (sources[i], targets[i]) for every i. Typed errors on an
  /// empty cohort, a source/target count mismatch, or non-[C, H, W] /
  /// mixed-shape sources.
  [[nodiscard]] std::vector<AttackResult> run(
      const core::InferencePipeline& pipeline,
      const std::vector<Tensor>& sources,
      const std::vector<int64_t>& targets) const;

  /// Filter-aware runs only: Eq.-2 cost between the TM-I and filtered
  /// predictions of each final adversarial (one entry per cohort image,
  /// the batched form of FAdeMLAttack::eq2_history).
  [[nodiscard]] const std::vector<float>& eq2_costs() const {
    return eq2_costs_;
  }

 private:
  [[nodiscard]] std::vector<AttackResult> run_fgsm(
      const core::InferencePipeline& pipeline,
      const std::vector<Tensor>& sources,
      const std::vector<int64_t>& targets) const;
  [[nodiscard]] std::vector<AttackResult> run_bim(
      const core::InferencePipeline& pipeline,
      const std::vector<Tensor>& sources,
      const std::vector<int64_t>& targets) const;
  [[nodiscard]] std::vector<AttackResult> run_lbfgs(
      const core::InferencePipeline& pipeline,
      const std::vector<Tensor>& sources,
      const std::vector<int64_t>& targets) const;

  AttackKind kind_;
  AttackConfig config_;
  bool filter_aware_;
  LbfgsOptions lbfgs_options_;
  mutable std::vector<float> eq2_costs_;
};

}  // namespace fademl::attacks
