#pragma once

#include "fademl/attacks/attack.hpp"
#include "fademl/tensor/random.hpp"

namespace fademl::attacks {

/// Options for expectation-over-transformation crafting.
struct EotOptions {
  int samples = 4;            ///< transformations averaged per gradient
  float jitter_pixels = 1.0f; ///< max random sub-pixel translation
  float noise_std = 0.02f;    ///< random sensor noise per sample
  uint64_t seed = 5;
};

/// Expectation over Transformation (Athalye et al. 2018): a BIM loop whose
/// gradient is averaged over random input transformations (sub-pixel
/// jitter + sensor noise), producing perturbations robust to the
/// acquisition variability of Threat Model II.
///
/// Where FAdeML differentiates through the *deterministic* pre-processing
/// filter exactly, EOT handles the *stochastic* parts of the pipeline by
/// sampling. The two compose: with `config.grad_tm = kIII`, each sampled
/// gradient is also routed through the filter adjoint — the strongest
/// attacker in this library's taxonomy.
class EotAttack final : public Attack {
 public:
  explicit EotAttack(AttackConfig config = {}, EotOptions options = {});

  [[nodiscard]] std::string name() const override;
  [[nodiscard]] AttackResult run(const core::InferencePipeline& pipeline,
                                 const Tensor& source,
                                 int64_t target_class) const override;

 private:
  EotOptions options_;
};

}  // namespace fademl::attacks
