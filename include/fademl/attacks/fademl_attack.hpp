#pragma once

#include "fademl/attacks/attack.hpp"

namespace fademl::attacks {

/// Which classic attack a filter-aware FAdeML attack is built on. The
/// paper's "Library of Adversarial Attacks" (Figs. 3 and 8) lists
/// L-BFGS, FGSM and CWI; BIM is the third attack its evaluation uses.
enum class AttackKind {
  kLbfgs,
  kFgsm,
  kBim,
  kCw,
};

/// Name of the base attack ("L-BFGS", "FGSM", "BIM", "C&W").
const std::string& attack_kind_name(AttackKind kind);

/// Construct a classic (filter-blind, Threat-Model-I gradient) attack.
AttackPtr make_attack(AttackKind kind, AttackConfig config = {});

/// The paper's contribution (Section IV, Fig. 8): the pre-processing
/// noise-Filter-aware Adversarial ML attack.
///
/// FAdeML wraps a base attack's optimization loop but evaluates every
/// objective and gradient along the *deployed* route — through the
/// acquisition stage and the pre-processing noise filter (Threat Models
/// II/III) — using the filter's vector–Jacobian product. Following the
/// methodology's steps:
///
///  1/2. pick reference sample x and a target-class sample y; measure the
///       top-5 probability gap between them (fademl_cost);
///  3.   craft noise n and form x* = η·n + x;
///  4/5. re-measure x* along TM-II/III and compare to TM-I via Eq. 2;
///  6.   iterate the base attack's optimizer with the filter folded into
///       the gradient (Eq. 3).
///
/// The recorded `eq2_history` exposes step 5's consistency cost per
/// iteration for analysis.
class FAdeMLAttack final : public Attack {
 public:
  /// `grad_tm` must be kII or kIII (the filtered routes); defaults to kIII.
  FAdeMLAttack(AttackKind base, AttackConfig config = {});

  [[nodiscard]] std::string name() const override;
  [[nodiscard]] AttackResult run(const core::InferencePipeline& pipeline,
                                 const Tensor& source,
                                 int64_t target_class) const override;

  /// Eq.-2 cost between the TM-I and TM-II/III predictions of the final
  /// adversarial example from the most recent `run` (step 5 of Fig. 8).
  /// One entry per optimization iteration.
  [[nodiscard]] const std::vector<float>& eq2_history() const {
    return eq2_history_;
  }

 private:
  AttackKind base_;
  AttackPtr inner_;
  mutable std::vector<float> eq2_history_;
};

/// Convenience: FAdeML variant of `kind` with the same budget as `config`
/// (forces the gradient route to TM-III).
AttackPtr make_fademl(AttackKind kind, AttackConfig config = {});

}  // namespace fademl::attacks
