#pragma once

#include <vector>

#include "fademl/attacks/attack.hpp"

namespace fademl::attacks {

/// Options for universal-perturbation crafting.
struct UniversalOptions {
  int epochs = 3;               ///< passes over the sample set
  int steps_per_sample = 3;     ///< BIM steps taken when a sample resists
  float step_size = 0.01f;
  /// Stop once this fraction of the samples is fooled.
  float target_fooling_rate = 0.8f;
};

/// Result of a universal-perturbation run.
struct UniversalResult {
  Tensor perturbation;          ///< [C, H, W], ‖·‖∞ <= epsilon
  double fooling_rate = 0.0;    ///< fraction of samples misclassified
  int gradient_evaluations = 0;
};

/// Universal adversarial perturbations (Moosavi-Dezfooli et al., CVPR
/// 2017): a single image-agnostic noise vector v such that
/// prediction(x + v) != prediction(x) for most x.
///
/// This formalizes the universal-noise protocol used by the paper's
/// accuracy panels (Figs. 6/7/9; see DESIGN.md §4): instead of
/// transplanting one scenario's noise, v is *optimized* over a sample set.
/// The crafting loop visits each still-correctly-classified sample, takes
/// a few untargeted BIM steps from x+v, accumulates the step into v, and
/// projects v back onto the ε-ball. `config.grad_tm` routes gradients
/// exactly as for the per-image attacks, so a TM-III universal
/// perturbation is filter-aware ("universal FAdeML").
class UniversalPerturbation {
 public:
  explicit UniversalPerturbation(AttackConfig config = {},
                                 UniversalOptions options = {});

  [[nodiscard]] UniversalResult craft(
      const core::InferencePipeline& pipeline,
      const std::vector<Tensor>& images,
      const std::vector<int64_t>& labels) const;

  /// Fraction of samples whose routed prediction changes under `v`.
  [[nodiscard]] static double fooling_rate(
      const core::InferencePipeline& pipeline,
      const std::vector<Tensor>& images, const Tensor& v,
      core::ThreatModel tm);

 private:
  AttackConfig config_;
  UniversalOptions options_;
};

}  // namespace fademl::attacks
