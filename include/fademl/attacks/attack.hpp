#pragma once

#include <memory>
#include <string>
#include <vector>

#include "fademl/core/pipeline.hpp"
#include "fademl/core/threat_model.hpp"
#include "fademl/tensor/tensor.hpp"

namespace fademl::attacks {

/// Shared knobs of the adversarial attack library.
///
/// `grad_tm` selects the route along which input gradients are computed:
/// TM-I yields the classic attacks (gradients on the bare DNN), TM-II/III
/// yields the *filter-aware* FAdeML variants (gradients chained through the
/// pre-processing noise filter). Everything else is the usual budget.
struct AttackConfig {
  float epsilon = 0.10f;      ///< L∞ perturbation budget (pixels in [0, 1])
  float step_size = 0.012f;   ///< per-iteration step (BIM / L-BFGS scale)
  int max_iterations = 20;    ///< iteration cap for iterative attacks
  core::ThreatModel grad_tm = core::ThreatModel::kI;
  /// Stop early once the routed prediction hits the target with at least
  /// this confidence (0 disables early stopping).
  float target_confidence = 0.0f;
  /// FGSM only: instead of a single full-ε step, search the ε grid
  /// {ε/8, 2ε/8, ..., ε} and keep the smallest step that lands the target
  /// (the standard reporting protocol for single-step attacks — a too-large
  /// step overshoots past the target's decision region). One gradient
  /// evaluation either way.
  bool fgsm_epsilon_search = false;
};

/// Outcome of one attack run on one image.
struct AttackResult {
  Tensor adversarial;        ///< [C, H, W], clamped to [0, 1]
  Tensor noise;              ///< adversarial − source
  int iterations = 0;        ///< gradient evaluations spent
  float linf = 0.0f;         ///< ‖noise‖∞
  float l2 = 0.0f;           ///< ‖noise‖₂
  std::vector<float> loss_history;  ///< objective per iteration
};

/// Interface of the adversarial attack library (Fig. 3's "Library of
/// Adversarial Attacks"). All attacks are *targeted*: they drive
/// `source` toward `target_class`.
class Attack {
 public:
  virtual ~Attack() = default;

  /// Attack identifier as it appears in the paper's figures
  /// ("FGSM", "BIM", "L-BFGS", "FAdeML-FGSM", ...).
  [[nodiscard]] virtual std::string name() const = 0;

  /// Generate an adversarial example from `source` against `pipeline`.
  [[nodiscard]] virtual AttackResult run(
      const core::InferencePipeline& pipeline, const Tensor& source,
      int64_t target_class) const = 0;

  [[nodiscard]] const AttackConfig& config() const { return config_; }

 protected:
  explicit Attack(AttackConfig config) : config_(config) {}

  /// Fill the derived metrics (noise, norms) of a result.
  static void finalize(AttackResult& result, const Tensor& source);

  AttackConfig config_;
};

using AttackPtr = std::shared_ptr<const Attack>;

/// Fill the derived metrics (noise, norms) of a result — the free-function
/// form of Attack::finalize, shared with the batched cohort driver.
void finalize_attack_result(AttackResult& result, const Tensor& source);

// ---- objective builders -----------------------------------------------------

/// Targeted cross-entropy: minimize − log p(target | x).
core::Objective targeted_cross_entropy(int64_t target_class);

/// Eq.-2-style differentiable objective: dot(softmax(logits), weights).
core::Objective weighted_probability(const Tensor& weights);

/// Raw-logit objective: dot(logits, weights). The C&W margin loss and the
/// JSMA/DeepFool per-class gradients are built from these.
core::Objective weighted_logits(const Tensor& weights);

// ---- batched objective builders ---------------------------------------------
//
// Row-wise counterparts for cohort attacks: each maps [N, num_classes]
// logits to [N] per-image losses, and row i's value and gradient are
// bitwise identical to the matching scalar builder on image i alone.

/// Per-image targeted cross-entropy: row i is − log p(targets[i] | x_i).
core::BatchObjective batch_targeted_cross_entropy(
    std::vector<int64_t> targets);

/// Row-wise Eq.-2-style objective: row i is dot(softmax(logits_i), w_i)
/// for an [N, num_classes] weight matrix.
core::BatchObjective batch_weighted_probability(const Tensor& weights);

/// Row-wise raw-logit objective: row i is dot(logits_i, w_i).
core::BatchObjective batch_weighted_logits(const Tensor& weights);

}  // namespace fademl::attacks
