#pragma once

#include "fademl/attacks/attack.hpp"
#include "fademl/tensor/random.hpp"

namespace fademl::attacks {

/// Options specific to the filter-crafting attack.
struct FilterCraftOptions {
  int population = 12;      ///< candidate kernels evolved per generation
  int generations = 25;     ///< search generations (queries = pop x gens)
  float de_f = 0.5f;        ///< differential-evolution mutation weight
  float coeff_span = 0.6f;  ///< initial coefficient spread around identity
  uint64_t seed = 131;
};

/// "Adversarial Preprocessing"-style filter-crafted attack (after
/// Warnecke et al.'s gradient-free image-filter attacks, PAPERS.md): the
/// adversarial example is produced by an ordinary small convolutional
/// image filter whose 3x3 kernel coefficients are *searched*, not by
/// per-pixel gradient noise. Each candidate kernel K yields
///
///   x' = clamp(x + clamp(K * x - x, -eps, eps), 0, 1)
///
/// i.e. the filtered image projected into the L-inf eps-ball around the
/// source, and the kernel population is evolved (DE/rand/1, greedy
/// selection — the same loop as OnePixelAttack) to maximize the
/// target-class probability of the *deployed route*: the attack queries
/// `config.grad_tm`, so under TM-II/III every probe already includes the
/// defense filter chain and the attack is filter-aware with zero gradient
/// access. Because the perturbation comes from a convolution of the image
/// itself, it concentrates on edges — exactly the structure low-pass
/// defenses are worst at removing.
///
/// `AttackResult::iterations` counts pipeline queries (the black-box cost
/// metric), `loss_history` the per-generation best target probability.
class FilterCraftAttack final : public Attack {
 public:
  explicit FilterCraftAttack(AttackConfig config = {},
                             FilterCraftOptions options = {});

  [[nodiscard]] std::string name() const override;
  [[nodiscard]] AttackResult run(const core::InferencePipeline& pipeline,
                                 const Tensor& source,
                                 int64_t target_class) const override;

 private:
  FilterCraftOptions options_;
};

}  // namespace fademl::attacks
