#pragma once

#include "fademl/attacks/attack.hpp"

namespace fademl::attacks {

/// Options specific to DeepFool.
struct DeepFoolOptions {
  int candidate_classes = 10;  ///< closest boundaries examined per step
  float overshoot = 0.02f;     ///< step past the boundary (paper's eta)
};

/// DeepFool (Moosavi-Dezfooli et al., CVPR 2016), cited in the paper's
/// attack survey: the minimal-perturbation *untargeted* attack.
///
/// Per iteration the classifier is linearized around the current iterate;
/// the closest class boundary among the top `candidate_classes` is
/// computed in closed form (|f_k| / ‖w_k‖²) and the iterate is projected
/// just past it, with a final overshoot. Because it is untargeted,
/// `target_class` is interpreted as the class to *escape toward anything
/// else*: the attack succeeds when the prediction leaves the source class.
class DeepFoolAttack final : public Attack {
 public:
  explicit DeepFoolAttack(AttackConfig config = {},
                          DeepFoolOptions options = {});

  [[nodiscard]] std::string name() const override;
  /// `target_class` is ignored (untargeted); pass the source class.
  [[nodiscard]] AttackResult run(const core::InferencePipeline& pipeline,
                                 const Tensor& source,
                                 int64_t target_class) const override;

 private:
  DeepFoolOptions options_;
};

}  // namespace fademl::attacks
