#pragma once

#include "fademl/attacks/attack.hpp"

namespace fademl::attacks {

/// Options specific to the Jacobian-based Saliency Map Attack.
struct JsmaOptions {
  float theta = 0.4f;       ///< per-feature perturbation magnitude per step
  float gamma = 0.15f;      ///< max fraction of features allowed to change
  bool pairs = true;        ///< perturb the classic feature *pairs*
};

/// Jacobian-based Saliency Map Attack (Papernot et al., EuroS&P 2016),
/// cited as [1] in the paper's survey of attack methods.
///
/// A targeted L0 attack: per step it computes the forward Jacobian's two
/// directional components — ∂Z_t/∂x (target logit up) and Σ_{i≠t} ∂Z_i/∂x
/// (everything else down) — forms the saliency map
///   S(x, t)[p] = (∂Z_t/∂x_p) · |Σ_{i≠t} ∂Z_i/∂x_p|
///                when ∂Z_t/∂x_p > 0 and Σ ∂Z_i/∂x_p < 0, else 0,
/// and bumps the most salient feature (or classic feature pair) by theta.
/// Stops when the target class wins or the gamma L0 budget is exhausted.
class JsmaAttack final : public Attack {
 public:
  explicit JsmaAttack(AttackConfig config = {}, JsmaOptions options = {});

  [[nodiscard]] std::string name() const override;
  [[nodiscard]] AttackResult run(const core::InferencePipeline& pipeline,
                                 const Tensor& source,
                                 int64_t target_class) const override;

 private:
  JsmaOptions options_;
};

}  // namespace fademl::attacks
