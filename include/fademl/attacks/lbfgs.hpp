#pragma once

#include "fademl/attacks/attack.hpp"

namespace fademl::attacks {

/// The L-BFGS attack (Szegedy et al. 2013): minimize over the perturbation
/// δ the box-constrained objective
///
///   J(δ) = c · ‖δ‖₂²  +  CE( clip(x + δ), target )
///
/// using limited-memory BFGS (two-loop recursion, Armijo backtracking line
/// search) — the curvature-aware optimizer that distinguishes this attack
/// from the sign-based family. The ‖δ‖₂ penalty is the paper's Eq. 1
/// imperceptibility term.
struct LbfgsOptions {
  float l2_weight = 0.05f;  ///< c, weight of the imperceptibility penalty
  int history = 5;          ///< L-BFGS memory
  float armijo_c1 = 1e-4f;  ///< sufficient-decrease constant
  int max_line_search = 12;
};

class LbfgsAttack final : public Attack {
 public:
  explicit LbfgsAttack(AttackConfig config = {}, LbfgsOptions options = {});

  [[nodiscard]] std::string name() const override;
  [[nodiscard]] AttackResult run(const core::InferencePipeline& pipeline,
                                 const Tensor& source,
                                 int64_t target_class) const override;

 private:
  LbfgsOptions options_;
};

}  // namespace fademl::attacks
