#pragma once

#include "fademl/attacks/attack.hpp"

namespace fademl::attacks {

/// Options specific to the C&W attack.
struct CwOptions {
  float confidence_margin = 0.0f;  ///< kappa: required logit margin
  float initial_c = 1.0f;          ///< trade-off constant c
  int binary_search_steps = 4;     ///< outer search over c
  float adam_lr = 5e-2f;
  float adam_beta1 = 0.9f;
  float adam_beta2 = 0.999f;
};

/// Carlini & Wagner L2 attack (S&P 2017) — the "CWI" entry of the paper's
/// adversarial attack library (Figs. 3 and 8).
///
/// Minimizes   ‖x' − x‖₂² + c · f(x')   with
///   f(x') = max( max_{i≠t} Z(x')_i − Z(x')_t, −κ )
/// over the tanh-reparameterized image x' = (tanh(w)+1)/2, using Adam.
/// The outer loop binary-searches the smallest constant c that still finds
/// an adversarial example, yielding the smallest-L2 attacks of the family.
/// `config.grad_tm` routes gradients through the filter exactly as for the
/// other attacks (giving FAdeML-C&W for TM-II/III).
class CwAttack final : public Attack {
 public:
  explicit CwAttack(AttackConfig config = {}, CwOptions options = {});

  [[nodiscard]] std::string name() const override;
  [[nodiscard]] AttackResult run(const core::InferencePipeline& pipeline,
                                 const Tensor& source,
                                 int64_t target_class) const override;

 private:
  CwOptions options_;
};

}  // namespace fademl::attacks
