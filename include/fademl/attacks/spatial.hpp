#pragma once

#include "fademl/attacks/attack.hpp"

namespace fademl::attacks {

/// Options for the spatial attack's search grid.
struct SpatialOptions {
  float max_rotation_deg = 20.0f;
  float max_translation = 3.0f;  ///< pixels, each axis
  int rotation_steps = 9;       ///< grid resolution per dimension
  int translation_steps = 5;
};

/// Spatial transformation attack (Engstrom et al. 2019, "a rotation and a
/// translation suffice"): grid-search over small rotations and
/// translations of the *unmodified* image, picking the pose that minimizes
/// the true-class probability (untargeted) along the deployed route.
///
/// No additive noise at all — which is exactly why the paper's smoothing
/// filters cannot defend against it: there is no high-frequency component
/// to remove. `target_class` is used the way DeepFool uses it (pass the
/// source class); success means the prediction leaves that class.
class SpatialAttack final : public Attack {
 public:
  explicit SpatialAttack(AttackConfig config = {}, SpatialOptions options = {});

  [[nodiscard]] std::string name() const override { return "Spatial"; }
  [[nodiscard]] AttackResult run(const core::InferencePipeline& pipeline,
                                 const Tensor& source,
                                 int64_t target_class) const override;

 private:
  SpatialOptions options_;
};

}  // namespace fademl::attacks
