#pragma once

#include "fademl/attacks/attack.hpp"

namespace fademl::attacks {

/// Fast Gradient Sign Method (Goodfellow et al. 2015), targeted form:
///
///   x* = clip( x − ε · sign(∇_x J(x, target)) )
///
/// A single gradient evaluation; `config.grad_tm` decides whether that
/// gradient sees the pre-processing filter.
class FgsmAttack final : public Attack {
 public:
  explicit FgsmAttack(AttackConfig config = {});

  [[nodiscard]] std::string name() const override;
  [[nodiscard]] AttackResult run(const core::InferencePipeline& pipeline,
                                 const Tensor& source,
                                 int64_t target_class) const override;
};

}  // namespace fademl::attacks
