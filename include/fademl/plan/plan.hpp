#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "fademl/core/threat_model.hpp"
#include "fademl/filters/filter.hpp"
#include "fademl/nn/module.hpp"
#include "fademl/simd/arena.hpp"
#include "fademl/tensor/error.hpp"
#include "fademl/tensor/ops.hpp"

namespace fademl::plan {

/// The model/shape combination cannot be compiled into a plan (unknown
/// module kind, training-mode Dropout/BatchNorm, a shape the chain
/// rejects). Callers fall back to the autograd tape, which reproduces the
/// canonical error surface for genuinely invalid inputs.
class PlanCompileError : public Error {
 public:
  explicit PlanCompileError(const std::string& what) : Error(what) {}
};

/// Which execution path served a batch.
enum class ExecPath {
  kPlan,  ///< compiled-plan replay
  kTape,  ///< autograd tape forward
};

/// "plan" / "tape".
const char* exec_path_name(ExecPath path);

/// Cumulative per-pipeline plan counters (see
/// core::InferencePipeline::plan_stats).
struct PlanStats {
  std::uint64_t plan_batches = 0;   ///< batches served by plan replay
  std::uint64_t tape_batches = 0;   ///< batches served by the tape
  std::uint64_t cache_hits = 0;     ///< PlanCache lookups that hit
  std::uint64_t cache_misses = 0;   ///< lookups that had to (re)compile
  std::uint64_t compiles = 0;       ///< successful plan compilations
};

/// Process default for the plan path: false when the FADEML_DISABLE_PLAN
/// environment variable is set to anything but "" or "0" (the escape
/// hatch), true otherwise. Read once at first use.
bool plans_enabled();

/// Monotonic model-swap generation. net::ModelRegistry bumps it on every
/// hot swap; PlanCache instances compare it lazily on lookup and drop all
/// entries when it moved, so a plan compiled against pre-swap modules can
/// never serve a post-swap request even if a pipeline object were reused
/// across the swap.
std::uint64_t swap_generation();
void bump_swap_generation();

/// An inference chain compiled once for a fixed (threat model, [N, C, H, W]
/// input shape): the prologue (acquisition blur + noise filter routing,
/// minus the tape path's defensive clones) followed by a flat post-order op
/// list over the model's layers, ending in the row softmax.
///
/// Memory comes from a one-shot liveness plan: every intermediate
/// activation is an offset into a single arena slab sized at compile time
/// (first-fit over live intervals, so non-overlapping lifetimes share
/// storage). Replay therefore does zero graph construction and — once the
/// thread-local scratch/buffer pools are warm — zero heap allocation.
///
/// Weights are held as shallow Tensor handles sharing the module's
/// parameter storage. Checkpoint loads and optimizers mutate parameters in
/// place (`copy_from`), so weight updates flow into an existing plan
/// automatically; nothing derived from weight *values* is cached (the
/// Linear weight transpose and BatchNorm scale/shift are recomputed into
/// scratch on every replay, exactly like the tape path).
///
/// Kernel dispatch deliberately stays behind the same `simd::kernels()`
/// table the tape path uses rather than freezing pointers at compile time:
/// a FADEML_CPU_LEVEL override between compile and replay must keep the
/// two paths bitwise identical. The tier active at compile time is
/// recorded for diagnostics only.
class InferencePlan {
 public:
  /// Compile the chain for `batch_shape` ([N, C, H, W]). The model must be
  /// an inference-mode nn::Sequential of known layer kinds; throws
  /// PlanCompileError otherwise. `filter`/`blur` are the routing stages
  /// for `tm` (blur is only consulted under TM-II).
  static std::shared_ptr<const InferencePlan> compile(
      nn::Module& model, filters::FilterPtr filter, filters::FilterPtr blur,
      core::ThreatModel tm, const Shape& batch_shape);

  /// Replay: [N, C, H, W] in (must match the compiled shape bit for bit),
  /// [N, num_classes] softmax probabilities out. Bitwise identical to the
  /// tape path by construction — both run the same fademl::raw kernels in
  /// the same order. Replay on one plan is serialized internally (the slab
  /// is shared state); distinct plans replay concurrently.
  [[nodiscard]] Tensor run(const Tensor& batch) const;

  [[nodiscard]] const Shape& input_shape() const { return input_shape_; }
  [[nodiscard]] core::ThreatModel threat_model() const { return tm_; }
  [[nodiscard]] int64_t batch_size() const { return n_; }
  [[nodiscard]] int64_t num_classes() const { return classes_; }
  [[nodiscard]] size_t op_count() const { return ops_.size(); }
  /// Slab floats carved for intermediate activations.
  [[nodiscard]] int64_t slab_floats() const { return slab_floats_; }
  /// Dispatch tier name observed at compile time (diagnostic only).
  [[nodiscard]] const std::string& compiled_tier() const { return tier_; }
  /// One line per op: "conv2d [8, 6, 16, 16] @+0" — for tests and logs.
  [[nodiscard]] std::string describe() const;

 private:
  struct Op {
    enum class Kind : uint8_t {
      kConv2d,
      kBatchNorm,
      kReLU,
      kMaxPool,
      kAvgPool,
      kFeatureBlur,
      kLinear,
      kSoftmax,
    };
    Kind kind = Kind::kReLU;
    int in_buf = 0;    ///< index into buffer table (kExternalIn for input)
    int out_buf = 0;   ///< kExternalOut for the result tensor
    // Input geometry as seen by this op (n is the plan's batch size).
    int64_t c = 0, h = 0, w = 0;
    int64_t out_c = 0, out_h = 0, out_w = 0;
    int64_t in_numel = 0, out_numel = 0;
    Conv2dSpec spec;   ///< conv only
    int64_t k = 0;     ///< pool window
    float eps = 0.0f;  ///< batch norm
    // Shallow handles into module storage (see class comment).
    Tensor weight, bias;              // conv / linear
    Tensor gamma, beta, mean, var;    // batch norm
    /// conv only: precompiled im2col copy table (raw::im2col_runs) —
    /// shape-derived, so hot swaps can never stale it.
    std::vector<raw::Im2colRun> runs;
  };

  static constexpr int kExternalIn = -1;
  static constexpr int kExternalOut = -2;

  InferencePlan() = default;

  void plan_memory();

  Shape input_shape_;
  core::ThreatModel tm_ = core::ThreatModel::kI;
  int64_t n_ = 0, c_ = 0, h_ = 0, w_ = 0;
  int64_t classes_ = 0;
  filters::FilterPtr filter_;
  filters::FilterPtr blur_;
  std::vector<Op> ops_;
  std::vector<int64_t> buffer_numel_;   ///< intermediate buffers, def order
  std::vector<int64_t> buffer_offset_;  ///< slab offsets (floats)
  int64_t slab_floats_ = 0;
  std::unique_ptr<simd::Arena> arena_;
  float* slab_ = nullptr;
  std::string tier_;
  mutable std::mutex replay_mutex_;
};

/// Per-pipeline plan cache keyed by (threat model, batch shape), capped at
/// `max_entries` (oldest evicted first). A key that failed to compile is
/// cached as nullptr so unplannable shapes don't trigger a recompile storm.
/// Lookups lazily compare the global swap_generation() and drop every
/// entry when a hot swap happened; set_filter invalidates explicitly.
class PlanCache {
 public:
  explicit PlanCache(size_t max_entries = 16);

  /// Fetch the plan for (tm, shape), compiling on miss. Returns nullptr
  /// when the combination is not plannable. `compile` is only invoked on
  /// a miss and must return nullptr (not throw) for unplannable inputs.
  using CompileFn =
      std::function<std::shared_ptr<const InferencePlan>(core::ThreatModel,
                                                         const Shape&)>;
  std::shared_ptr<const InferencePlan> get_or_compile(core::ThreatModel tm,
                                                      const Shape& shape,
                                                      const CompileFn& compile);

  /// Drop all entries (filter swap, explicit model surgery).
  void invalidate();

  [[nodiscard]] std::uint64_t hits() const { return hits_.load(); }
  [[nodiscard]] std::uint64_t misses() const { return misses_.load(); }
  [[nodiscard]] std::uint64_t compiles() const { return compiles_.load(); }
  [[nodiscard]] size_t size() const;

 private:
  struct Key {
    int tm = 0;
    std::vector<int64_t> dims;
    bool operator==(const Key& o) const { return tm == o.tm && dims == o.dims; }
  };
  struct Entry {
    Key key;
    std::shared_ptr<const InferencePlan> plan;  // nullptr: negative entry
  };

  const size_t max_entries_;
  mutable std::mutex mutex_;
  std::vector<Entry> entries_;
  std::uint64_t seen_generation_ = 0;
  std::atomic<std::uint64_t> hits_{0};
  std::atomic<std::uint64_t> misses_{0};
  std::atomic<std::uint64_t> compiles_{0};
};

}  // namespace fademl::plan
