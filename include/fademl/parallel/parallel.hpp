#pragma once

#include <cstdint>
#include <functional>

namespace fademl::parallel {

/// Shared intra-op thread pool behind every parallelized tensor kernel.
///
/// Determinism contract: the decomposition of a loop into chunks is a pure
/// function of (range, grain) and NEVER of the thread count or of runtime
/// scheduling. Each chunk writes disjoint output (or a private partial that
/// the caller reduces in chunk order), so every kernel routed through this
/// pool produces bitwise-identical results at 1, 2, or N threads, run to
/// run. That is what pins the paper's Fig. 5-7 numbers against the thread
/// count (see docs/performance.md).
///
/// Scheduling rules:
///  - `num_threads() == 1` runs every loop inline on the caller — no worker
///    thread is ever touched, which keeps sanitizer runs simple.
///  - A `parallel_for` issued from inside another `parallel_for` body runs
///    inline on that worker (no nested fan-out, no deadlock).
///  - Concurrent top-level loops (e.g. two serve workers both hitting
///    matmul) do not fight over the pool: the loser of the race simply runs
///    inline, which naturally bounds oversubscription.
///  - An exception thrown by a chunk is captured, the remaining chunks are
///    skipped, and the first exception is rethrown on the calling thread.

/// Body of a parallel loop: processes the half-open index range [lo, hi).
using RangeBody = std::function<void(int64_t lo, int64_t hi)>;

/// Chunk-aware body: additionally receives the deterministic chunk index,
/// for callers that reduce per-chunk partials in chunk order.
using ChunkBody = std::function<void(int64_t chunk, int64_t lo, int64_t hi)>;

/// Threads `parallel_for` will use (>= 1). Resolution order:
/// `set_num_threads()` override, then the `FADEML_NUM_THREADS` environment
/// variable, then `std::thread::hardware_concurrency()`.
int num_threads();

/// Programmatic override of the thread count (clamped to [1, 256]);
/// `set_num_threads(0)` removes the override and returns to the
/// environment/hardware default. Used by tests, the benchmark scaling
/// probe, and the serving layer's oversubscription guard.
void set_num_threads(int n);

/// True while the calling thread is executing a chunk of some
/// `parallel_for` (such nested calls run inline).
bool in_parallel_region();

/// Number of chunks `parallel_for` will split `range` items into for the
/// given grain — a pure function of (range, grain). grain <= 0 counts as 1.
int64_t chunk_count(int64_t range, int64_t grain);

/// Grain for pure-gather loops: chunks write disjoint outputs and no
/// chunk-ordered reduction exists, so (unlike reduction kernels, whose
/// grain is part of the determinism contract) the grain may depend on the
/// machine. Returns the full `range` (one chunk → runs inline, no pool
/// wake-up) when fanning out cannot pay: effective parallelism is 1
/// (num_threads() or hardware_concurrency is 1 — the BENCH_tensor
/// `lap32_batch8` 0.71× regression was 2 pool threads time-slicing one
/// core) or the total work is below the fan-out threshold. Otherwise the
/// grain targets chunks of >= ~32k scalar ops and at most 4 chunks per
/// usable thread. `ops_per_item` estimates the scalar work per index.
int64_t gather_grain(int64_t range, int64_t ops_per_item);

/// Run `body` over [begin, end) split into chunks of at most `grain`
/// items. Empty ranges return immediately without invoking the body.
void parallel_for(int64_t begin, int64_t end, int64_t grain,
                  const RangeBody& body);

/// Same, with the chunk index passed to the body. Chunk `c` covers
/// [begin + c*grain, min(end, begin + (c+1)*grain)).
void parallel_for_chunks(int64_t begin, int64_t end, int64_t grain,
                         const ChunkBody& body);

namespace detail {

/// Parse a FADEML_NUM_THREADS-style spec: nullptr/empty/non-numeric/
/// non-positive mean "unset" (returns 0); values above the pool's hard cap
/// clamp to it. Exposed for unit tests.
int parse_thread_spec(const char* spec);

}  // namespace detail

}  // namespace fademl::parallel
