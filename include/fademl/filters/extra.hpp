#pragma once

#include <array>
#include <cstdint>

#include "fademl/filters/filter.hpp"
#include "fademl/tensor/random.hpp"

namespace fademl::filters {

/// Luma grayscale conversion replicated to three channels
/// (the "gray scaling" pre-processing element of the paper's §I-C).
/// Linear: y_c = Σ_k w_k x_k for every channel c, with the Rec.601 weights.
class GrayscaleFilter final : public Filter {
 public:
  [[nodiscard]] Tensor apply(const Tensor& image) const override;
  [[nodiscard]] Tensor vjp(const Tensor& image,
                           const Tensor& grad_output) const override;
  [[nodiscard]] std::string name() const override { return "Grayscale"; }
  [[nodiscard]] bool is_linear() const override { return true; }
};

/// Per-channel affine normalization x -> (x - mean) * scale + offset,
/// the "normalization" pre-processing element of §I-C. With the default
/// arguments it standardizes around 0.5 and is exactly invertible, so the
/// DNN input stays in a sane range. Linear with trivial exact adjoint.
class NormalizeFilter final : public Filter {
 public:
  NormalizeFilter(float mean = 0.5f, float scale = 1.0f, float offset = 0.5f);

  [[nodiscard]] Tensor apply(const Tensor& image) const override;
  [[nodiscard]] Tensor vjp(const Tensor& image,
                           const Tensor& grad_output) const override;
  [[nodiscard]] std::string name() const override;
  [[nodiscard]] bool is_linear() const override { return true; }

 private:
  float mean_;
  float scale_;
  float offset_;
};

/// Per-channel histogram equalization over 256 bins — the paper's "local
/// histogram utilization". Non-linear and non-differentiable: inherits the
/// BPDA straight-through vjp.
class HistogramEqualizationFilter final : public Filter {
 public:
  [[nodiscard]] Tensor apply(const Tensor& image) const override;
  [[nodiscard]] std::string name() const override { return "HistEq"; }
};

/// Bit-depth reduction ("feature squeezing", Xu et al. 2017 — the paper's
/// reference [10]): quantize every channel to `bits` bits. Gradient is
/// zero almost everywhere, so the BPDA straight-through vjp applies.
class BitDepthFilter final : public Filter {
 public:
  explicit BitDepthFilter(int bits);

  [[nodiscard]] Tensor apply(const Tensor& image) const override;
  [[nodiscard]] std::string name() const override;

  [[nodiscard]] int bits() const { return bits_; }

 private:
  int bits_;
};

/// JPEG-lite defense: 8x8 blockwise forward DCT -> quantize with the
/// standard JPEG luminance table scaled by `quality` (1..100) -> inverse
/// DCT. Captures the "JPEG compression destroys adversarial noise"
/// defense family (Dziugaite et al. 2016; Xu et al. 2017) without an
/// entropy coder — the quantization step is the whole defense. Edge
/// blocks are edge-replicated to a full 8x8 tile before transforming and
/// only the valid region is written back, so any H x W works.
///
/// The rounding step has zero gradient almost everywhere, so the filter
/// overrides `vjp`/`vjp_batch` with the BPDA straight-through estimator
/// explicitly — FAdeMLAttack and BatchAttack compose through it like any
/// other filter.
class DctQuantFilter final : public Filter {
 public:
  /// JPEG-style quality in [1, 100]; lower = coarser quantization.
  explicit DctQuantFilter(int quality);

  [[nodiscard]] Tensor apply(const Tensor& image) const override;
  [[nodiscard]] Tensor vjp(const Tensor& image,
                           const Tensor& grad_output) const override;
  [[nodiscard]] Tensor vjp_batch(const Tensor& images,
                                 const Tensor& grad_outputs) const override;
  [[nodiscard]] std::string name() const override;

  [[nodiscard]] int quality() const { return quality_; }

 private:
  int quality_;
  std::array<float, 64> quant_;  // scaled quantization table, >= 1 everywhere
};

/// Edge-preserving bilateral filter: spatial Gaussian x range Gaussian.
/// Smooths noise while keeping sign edges — the strongest "accuracy-
/// preserving" defense in the ablation family. Non-linear (BPDA vjp).
class BilateralFilter final : public Filter {
 public:
  BilateralFilter(float sigma_space, float sigma_range);

  [[nodiscard]] Tensor apply(const Tensor& image) const override;
  [[nodiscard]] std::string name() const override;

 private:
  float sigma_space_;
  float sigma_range_;
  int radius_;
};

/// Fixed pseudo-random pixel permutation (the "shuffling" element of
/// §I-C, used by permutation-based privacy schemes). A pure permutation
/// matrix: exactly linear, with the inverse permutation as adjoint. The
/// DNN must have been trained behind the same shuffle for accuracy to
/// survive — the tests use it to validate exact-adjoint plumbing on a
/// maximally structure-destroying preprocessing stage.
class ShuffleFilter final : public Filter {
 public:
  /// The permutation is generated deterministically from `seed` for a
  /// given image geometry on first use.
  explicit ShuffleFilter(uint64_t seed = 7);

  [[nodiscard]] Tensor apply(const Tensor& image) const override;
  [[nodiscard]] Tensor vjp(const Tensor& image,
                           const Tensor& grad_output) const override;
  [[nodiscard]] std::string name() const override { return "Shuffle"; }
  [[nodiscard]] bool is_linear() const override { return true; }

 private:
  std::vector<int64_t> permutation_for(int64_t pixels) const;
  uint64_t seed_;
};

FilterPtr make_grayscale();
FilterPtr make_normalize(float mean = 0.5f, float scale = 1.0f,
                         float offset = 0.5f);
FilterPtr make_histeq();
FilterPtr make_bit_depth(int bits);
FilterPtr make_dct_quant(int quality);
/// Feature Squeezing as deployed in Xu et al. 2017: bit-depth reduction
/// followed by a median smooth, composed via FilterChain (spec
/// "bits<b>+median<r>").
FilterPtr make_feature_squeeze(int bits = 5, int median_radius = 1);
FilterPtr make_bilateral(float sigma_space, float sigma_range);
FilterPtr make_shuffle(uint64_t seed = 7);

}  // namespace fademl::filters
