#pragma once

#include <cstdint>

#include "fademl/filters/filter.hpp"
#include "fademl/tensor/random.hpp"

namespace fademl::filters {

/// Luma grayscale conversion replicated to three channels
/// (the "gray scaling" pre-processing element of the paper's §I-C).
/// Linear: y_c = Σ_k w_k x_k for every channel c, with the Rec.601 weights.
class GrayscaleFilter final : public Filter {
 public:
  [[nodiscard]] Tensor apply(const Tensor& image) const override;
  [[nodiscard]] Tensor vjp(const Tensor& image,
                           const Tensor& grad_output) const override;
  [[nodiscard]] std::string name() const override { return "Grayscale"; }
  [[nodiscard]] bool is_linear() const override { return true; }
};

/// Per-channel affine normalization x -> (x - mean) * scale + offset,
/// the "normalization" pre-processing element of §I-C. With the default
/// arguments it standardizes around 0.5 and is exactly invertible, so the
/// DNN input stays in a sane range. Linear with trivial exact adjoint.
class NormalizeFilter final : public Filter {
 public:
  NormalizeFilter(float mean = 0.5f, float scale = 1.0f, float offset = 0.5f);

  [[nodiscard]] Tensor apply(const Tensor& image) const override;
  [[nodiscard]] Tensor vjp(const Tensor& image,
                           const Tensor& grad_output) const override;
  [[nodiscard]] std::string name() const override;
  [[nodiscard]] bool is_linear() const override { return true; }

 private:
  float mean_;
  float scale_;
  float offset_;
};

/// Per-channel histogram equalization over 256 bins — the paper's "local
/// histogram utilization". Non-linear and non-differentiable: inherits the
/// BPDA straight-through vjp.
class HistogramEqualizationFilter final : public Filter {
 public:
  [[nodiscard]] Tensor apply(const Tensor& image) const override;
  [[nodiscard]] std::string name() const override { return "HistEq"; }
};

/// Bit-depth reduction ("feature squeezing", Xu et al. 2017 — the paper's
/// reference [10]): quantize every channel to `bits` bits. Gradient is
/// zero almost everywhere, so the BPDA straight-through vjp applies.
class BitDepthFilter final : public Filter {
 public:
  explicit BitDepthFilter(int bits);

  [[nodiscard]] Tensor apply(const Tensor& image) const override;
  [[nodiscard]] std::string name() const override;

  [[nodiscard]] int bits() const { return bits_; }

 private:
  int bits_;
};

/// Edge-preserving bilateral filter: spatial Gaussian x range Gaussian.
/// Smooths noise while keeping sign edges — the strongest "accuracy-
/// preserving" defense in the ablation family. Non-linear (BPDA vjp).
class BilateralFilter final : public Filter {
 public:
  BilateralFilter(float sigma_space, float sigma_range);

  [[nodiscard]] Tensor apply(const Tensor& image) const override;
  [[nodiscard]] std::string name() const override;

 private:
  float sigma_space_;
  float sigma_range_;
  int radius_;
};

/// Fixed pseudo-random pixel permutation (the "shuffling" element of
/// §I-C, used by permutation-based privacy schemes). A pure permutation
/// matrix: exactly linear, with the inverse permutation as adjoint. The
/// DNN must have been trained behind the same shuffle for accuracy to
/// survive — the tests use it to validate exact-adjoint plumbing on a
/// maximally structure-destroying preprocessing stage.
class ShuffleFilter final : public Filter {
 public:
  /// The permutation is generated deterministically from `seed` for a
  /// given image geometry on first use.
  explicit ShuffleFilter(uint64_t seed = 7);

  [[nodiscard]] Tensor apply(const Tensor& image) const override;
  [[nodiscard]] Tensor vjp(const Tensor& image,
                           const Tensor& grad_output) const override;
  [[nodiscard]] std::string name() const override { return "Shuffle"; }
  [[nodiscard]] bool is_linear() const override { return true; }

 private:
  std::vector<int64_t> permutation_for(int64_t pixels) const;
  uint64_t seed_;
};

FilterPtr make_grayscale();
FilterPtr make_normalize(float mean = 0.5f, float scale = 1.0f,
                         float offset = 0.5f);
FilterPtr make_histeq();
FilterPtr make_bit_depth(int bits);
FilterPtr make_bilateral(float sigma_space, float sigma_range);
FilterPtr make_shuffle(uint64_t seed = 7);

}  // namespace fademl::filters
