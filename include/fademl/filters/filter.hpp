#pragma once

#include <memory>
#include <string>
#include <vector>

#include "fademl/tensor/tensor.hpp"

namespace fademl::filters {

/// A pre-processing noise filter sitting between data acquisition and the
/// DNN input buffer (Fig. 2 of the paper).
///
/// Filters operate on CHW images in [0, 1]. Besides the forward `apply`,
/// every filter exposes a vector–Jacobian product `vjp` so attacks can
/// differentiate *through* the pre-processing stage — the mechanism behind
/// the FAdeML attack (Fig. 8). Linear filters implement the exact adjoint;
/// non-differentiable filters (median) fall back to the straight-through
/// BPDA approximation (Athalye et al. 2018), which the base class provides.
class Filter {
 public:
  virtual ~Filter() = default;

  /// Filter a [C, H, W] image.
  [[nodiscard]] virtual Tensor apply(const Tensor& image) const = 0;

  /// Vector–Jacobian product: gradient of a scalar loss w.r.t. the filter
  /// *input*, given the gradient w.r.t. the filter *output* and the input
  /// image at which the filter was applied. Default: straight-through
  /// (returns grad_output unchanged).
  [[nodiscard]] virtual Tensor vjp(const Tensor& image,
                                   const Tensor& grad_output) const;

  /// Short identifier used in experiment tables, e.g. "LAP(32)".
  [[nodiscard]] virtual std::string name() const = 0;

  /// True when `apply` is a linear map of the image (LAP/LAR/Gaussian);
  /// linear filters have exact vjp implementations.
  [[nodiscard]] virtual bool is_linear() const { return false; }

  /// Apply to every image of an [N, C, H, W] batch. Image i of the result
  /// is bitwise identical to `apply` on that image alone; an empty batch
  /// (N == 0) is a typed error. Virtual so filters whose kernel is a pure
  /// row gather (LAP/LAR) can flatten the whole batch into one row range
  /// instead of copying per-image tensors.
  [[nodiscard]] virtual Tensor apply_batch(const Tensor& batch) const;

  /// Batched vector–Jacobian product: per-image `vjp` over an
  /// [N, C, H, W] batch of input images and matching output gradients.
  /// Row i of the result is bitwise identical to `vjp` on image i alone —
  /// the adjoint half of the batched TM-II/III gradient chain.
  [[nodiscard]] virtual Tensor vjp_batch(const Tensor& images,
                                         const Tensor& grad_outputs) const;
};

using FilterPtr = std::shared_ptr<const Filter>;

/// No-op filter (the "No Filter" rows of the paper's figures).
class IdentityFilter final : public Filter {
 public:
  [[nodiscard]] Tensor apply(const Tensor& image) const override;
  [[nodiscard]] Tensor vjp(const Tensor& image,
                           const Tensor& grad_output) const override;
  [[nodiscard]] std::string name() const override { return "NoFilter"; }
  [[nodiscard]] bool is_linear() const override { return true; }
};

/// Local Average with neighborhood Pixels — LAP(np) in the paper.
///
/// Each output pixel is the mean of the input pixel and its `np` nearest
/// neighbors (Euclidean distance, deterministic tie-break). At image
/// borders out-of-range neighbors are dropped and the mean renormalized,
/// so the filter is an exact (row-stochastic) linear operator.
class LapFilter final : public Filter {
 public:
  /// The paper sweeps np in {4, 8, 16, 32, 64}; any np >= 1 is accepted.
  explicit LapFilter(int np);

  [[nodiscard]] Tensor apply(const Tensor& image) const override;
  [[nodiscard]] Tensor vjp(const Tensor& image,
                           const Tensor& grad_output) const override;
  [[nodiscard]] std::string name() const override;
  [[nodiscard]] bool is_linear() const override { return true; }

  /// Copy-free batch paths: the [N, C, H, W] batch is one flat run of
  /// N*C planes, so the row loop fans out across the whole batch with no
  /// per-image tensor staging. Bitwise identical to the per-image base
  /// implementation.
  [[nodiscard]] Tensor apply_batch(const Tensor& batch) const override;
  [[nodiscard]] Tensor vjp_batch(const Tensor& images,
                                 const Tensor& grad_outputs) const override;

  [[nodiscard]] int np() const { return np_; }
  /// The neighbor offsets (dy, dx) actually averaged (excludes the center).
  [[nodiscard]] const std::vector<std::pair<int, int>>& offsets() const {
    return offsets_;
  }

 private:
  int np_;
  std::vector<std::pair<int, int>> offsets_;
};

/// Local Average with Radius — LAR(r) in the paper.
///
/// Each output pixel is the mean over the disc of Euclidean radius `r`
/// centered on it (center included), with border renormalization.
class LarFilter final : public Filter {
 public:
  /// The paper sweeps r in {1, 2, 3, 4, 5}; any r >= 1 is accepted.
  explicit LarFilter(int radius);

  [[nodiscard]] Tensor apply(const Tensor& image) const override;
  [[nodiscard]] Tensor vjp(const Tensor& image,
                           const Tensor& grad_output) const override;
  [[nodiscard]] std::string name() const override;
  [[nodiscard]] bool is_linear() const override { return true; }

  /// See LapFilter::apply_batch — same flattening, same bitwise contract.
  [[nodiscard]] Tensor apply_batch(const Tensor& batch) const override;
  [[nodiscard]] Tensor vjp_batch(const Tensor& images,
                                 const Tensor& grad_outputs) const override;

  [[nodiscard]] int radius() const { return radius_; }
  [[nodiscard]] const std::vector<std::pair<int, int>>& offsets() const {
    return offsets_;
  }

 private:
  int radius_;
  std::vector<std::pair<int, int>> offsets_;  // includes (0, 0)
};

/// Separable Gaussian blur (ablation filter; not in the paper's sweep).
class GaussianFilter final : public Filter {
 public:
  explicit GaussianFilter(float sigma);

  [[nodiscard]] Tensor apply(const Tensor& image) const override;
  [[nodiscard]] Tensor vjp(const Tensor& image,
                           const Tensor& grad_output) const override;
  [[nodiscard]] std::string name() const override;
  [[nodiscard]] bool is_linear() const override { return true; }

  [[nodiscard]] const std::vector<float>& kernel() const { return kernel_; }

 private:
  float sigma_;
  std::vector<float> kernel_;  // odd-length, normalized
};

/// Median filter over a (2r+1)^2 window (ablation filter). Non-linear:
/// inherits the straight-through BPDA vjp from the base class.
class MedianFilter final : public Filter {
 public:
  explicit MedianFilter(int radius);

  [[nodiscard]] Tensor apply(const Tensor& image) const override;
  [[nodiscard]] std::string name() const override;

 private:
  int radius_;
};

/// Sequential composition of filters (applied left to right). The vjp
/// chains the member vjps right to left.
class FilterChain final : public Filter {
 public:
  explicit FilterChain(std::vector<FilterPtr> filters);

  [[nodiscard]] Tensor apply(const Tensor& image) const override;
  [[nodiscard]] Tensor vjp(const Tensor& image,
                           const Tensor& grad_output) const override;
  [[nodiscard]] std::string name() const override;
  [[nodiscard]] bool is_linear() const override;

  /// Batch paths chain the members' own batch paths, so a chain of filters
  /// with flattened batch kernels (LAP/LAR) keeps that speed instead of
  /// degrading to the per-image base loop. Each member's batch path is
  /// bitwise identical to its per-image path, so the composition is too.
  [[nodiscard]] Tensor apply_batch(const Tensor& batch) const override;
  [[nodiscard]] Tensor vjp_batch(const Tensor& images,
                                 const Tensor& grad_outputs) const override;

  [[nodiscard]] const std::vector<FilterPtr>& filters() const {
    return filters_;
  }

 private:
  std::vector<FilterPtr> filters_;
};

// ---- factories -------------------------------------------------------------

FilterPtr make_identity();
FilterPtr make_lap(int np);
FilterPtr make_lar(int radius);
FilterPtr make_gaussian(float sigma);
FilterPtr make_median(int radius);

/// The paper's full sweep: NoFilter, LAP(4..64), LAR(1..5) — 11 configs in
/// the order they appear in Figs. 7 and 9.
std::vector<FilterPtr> paper_filter_sweep();

/// Build a filter from a compact textual spec (the CLI / config syntax):
/// "none", "lap<np>", "lar<r>", "gauss<sigma>", "median<r>", "grayscale",
/// "histeq", "bits<b>", "dct<q>" (JPEG-lite DCT quantization, quality
/// 1..100), "normalize", "bilateral" (default sigmas 1.5/0.2), "shuffle"
/// or "shuffle<seed>", or a '+'-separated chain of those — e.g.
/// "grayscale+lap8" or the feature-squeezing chain "bits5+median1".
/// Numeric suffixes are parsed strictly: the suffix must be present,
/// consume the whole remainder, be non-negative, and fit the target type
/// ("gauss", "gaussinf", "lap-3", and overflowing digits are all typed
/// errors, never a silently clamped filter). Throws fademl::Error on
/// anything else.
FilterPtr parse_filter(const std::string& spec);

}  // namespace fademl::filters
