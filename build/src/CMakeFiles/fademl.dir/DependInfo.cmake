
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/attacks/attack.cpp" "src/CMakeFiles/fademl.dir/attacks/attack.cpp.o" "gcc" "src/CMakeFiles/fademl.dir/attacks/attack.cpp.o.d"
  "/root/repo/src/attacks/bim.cpp" "src/CMakeFiles/fademl.dir/attacks/bim.cpp.o" "gcc" "src/CMakeFiles/fademl.dir/attacks/bim.cpp.o.d"
  "/root/repo/src/attacks/cw.cpp" "src/CMakeFiles/fademl.dir/attacks/cw.cpp.o" "gcc" "src/CMakeFiles/fademl.dir/attacks/cw.cpp.o.d"
  "/root/repo/src/attacks/deepfool.cpp" "src/CMakeFiles/fademl.dir/attacks/deepfool.cpp.o" "gcc" "src/CMakeFiles/fademl.dir/attacks/deepfool.cpp.o.d"
  "/root/repo/src/attacks/eot.cpp" "src/CMakeFiles/fademl.dir/attacks/eot.cpp.o" "gcc" "src/CMakeFiles/fademl.dir/attacks/eot.cpp.o.d"
  "/root/repo/src/attacks/fademl_attack.cpp" "src/CMakeFiles/fademl.dir/attacks/fademl_attack.cpp.o" "gcc" "src/CMakeFiles/fademl.dir/attacks/fademl_attack.cpp.o.d"
  "/root/repo/src/attacks/fgsm.cpp" "src/CMakeFiles/fademl.dir/attacks/fgsm.cpp.o" "gcc" "src/CMakeFiles/fademl.dir/attacks/fgsm.cpp.o.d"
  "/root/repo/src/attacks/jsma.cpp" "src/CMakeFiles/fademl.dir/attacks/jsma.cpp.o" "gcc" "src/CMakeFiles/fademl.dir/attacks/jsma.cpp.o.d"
  "/root/repo/src/attacks/lbfgs.cpp" "src/CMakeFiles/fademl.dir/attacks/lbfgs.cpp.o" "gcc" "src/CMakeFiles/fademl.dir/attacks/lbfgs.cpp.o.d"
  "/root/repo/src/attacks/onepixel.cpp" "src/CMakeFiles/fademl.dir/attacks/onepixel.cpp.o" "gcc" "src/CMakeFiles/fademl.dir/attacks/onepixel.cpp.o.d"
  "/root/repo/src/attacks/spatial.cpp" "src/CMakeFiles/fademl.dir/attacks/spatial.cpp.o" "gcc" "src/CMakeFiles/fademl.dir/attacks/spatial.cpp.o.d"
  "/root/repo/src/attacks/universal.cpp" "src/CMakeFiles/fademl.dir/attacks/universal.cpp.o" "gcc" "src/CMakeFiles/fademl.dir/attacks/universal.cpp.o.d"
  "/root/repo/src/attacks/zoo.cpp" "src/CMakeFiles/fademl.dir/attacks/zoo.cpp.o" "gcc" "src/CMakeFiles/fademl.dir/attacks/zoo.cpp.o.d"
  "/root/repo/src/autograd/ops.cpp" "src/CMakeFiles/fademl.dir/autograd/ops.cpp.o" "gcc" "src/CMakeFiles/fademl.dir/autograd/ops.cpp.o.d"
  "/root/repo/src/autograd/variable.cpp" "src/CMakeFiles/fademl.dir/autograd/variable.cpp.o" "gcc" "src/CMakeFiles/fademl.dir/autograd/variable.cpp.o.d"
  "/root/repo/src/core/analysis.cpp" "src/CMakeFiles/fademl.dir/core/analysis.cpp.o" "gcc" "src/CMakeFiles/fademl.dir/core/analysis.cpp.o.d"
  "/root/repo/src/core/cost.cpp" "src/CMakeFiles/fademl.dir/core/cost.cpp.o" "gcc" "src/CMakeFiles/fademl.dir/core/cost.cpp.o.d"
  "/root/repo/src/core/experiment.cpp" "src/CMakeFiles/fademl.dir/core/experiment.cpp.o" "gcc" "src/CMakeFiles/fademl.dir/core/experiment.cpp.o.d"
  "/root/repo/src/core/methodology.cpp" "src/CMakeFiles/fademl.dir/core/methodology.cpp.o" "gcc" "src/CMakeFiles/fademl.dir/core/methodology.cpp.o.d"
  "/root/repo/src/core/metrics.cpp" "src/CMakeFiles/fademl.dir/core/metrics.cpp.o" "gcc" "src/CMakeFiles/fademl.dir/core/metrics.cpp.o.d"
  "/root/repo/src/core/pipeline.cpp" "src/CMakeFiles/fademl.dir/core/pipeline.cpp.o" "gcc" "src/CMakeFiles/fademl.dir/core/pipeline.cpp.o.d"
  "/root/repo/src/core/scenarios.cpp" "src/CMakeFiles/fademl.dir/core/scenarios.cpp.o" "gcc" "src/CMakeFiles/fademl.dir/core/scenarios.cpp.o.d"
  "/root/repo/src/core/threat_model.cpp" "src/CMakeFiles/fademl.dir/core/threat_model.cpp.o" "gcc" "src/CMakeFiles/fademl.dir/core/threat_model.cpp.o.d"
  "/root/repo/src/data/canvas.cpp" "src/CMakeFiles/fademl.dir/data/canvas.cpp.o" "gcc" "src/CMakeFiles/fademl.dir/data/canvas.cpp.o.d"
  "/root/repo/src/data/dataset.cpp" "src/CMakeFiles/fademl.dir/data/dataset.cpp.o" "gcc" "src/CMakeFiles/fademl.dir/data/dataset.cpp.o.d"
  "/root/repo/src/data/gtsrb.cpp" "src/CMakeFiles/fademl.dir/data/gtsrb.cpp.o" "gcc" "src/CMakeFiles/fademl.dir/data/gtsrb.cpp.o.d"
  "/root/repo/src/data/transforms.cpp" "src/CMakeFiles/fademl.dir/data/transforms.cpp.o" "gcc" "src/CMakeFiles/fademl.dir/data/transforms.cpp.o.d"
  "/root/repo/src/defense/adversarial_training.cpp" "src/CMakeFiles/fademl.dir/defense/adversarial_training.cpp.o" "gcc" "src/CMakeFiles/fademl.dir/defense/adversarial_training.cpp.o.d"
  "/root/repo/src/defense/detector.cpp" "src/CMakeFiles/fademl.dir/defense/detector.cpp.o" "gcc" "src/CMakeFiles/fademl.dir/defense/detector.cpp.o.d"
  "/root/repo/src/filters/extra.cpp" "src/CMakeFiles/fademl.dir/filters/extra.cpp.o" "gcc" "src/CMakeFiles/fademl.dir/filters/extra.cpp.o.d"
  "/root/repo/src/filters/filter.cpp" "src/CMakeFiles/fademl.dir/filters/filter.cpp.o" "gcc" "src/CMakeFiles/fademl.dir/filters/filter.cpp.o.d"
  "/root/repo/src/io/args.cpp" "src/CMakeFiles/fademl.dir/io/args.cpp.o" "gcc" "src/CMakeFiles/fademl.dir/io/args.cpp.o.d"
  "/root/repo/src/io/image_io.cpp" "src/CMakeFiles/fademl.dir/io/image_io.cpp.o" "gcc" "src/CMakeFiles/fademl.dir/io/image_io.cpp.o.d"
  "/root/repo/src/io/table.cpp" "src/CMakeFiles/fademl.dir/io/table.cpp.o" "gcc" "src/CMakeFiles/fademl.dir/io/table.cpp.o.d"
  "/root/repo/src/io/visualize.cpp" "src/CMakeFiles/fademl.dir/io/visualize.cpp.o" "gcc" "src/CMakeFiles/fademl.dir/io/visualize.cpp.o.d"
  "/root/repo/src/nn/checkpoint.cpp" "src/CMakeFiles/fademl.dir/nn/checkpoint.cpp.o" "gcc" "src/CMakeFiles/fademl.dir/nn/checkpoint.cpp.o.d"
  "/root/repo/src/nn/layers.cpp" "src/CMakeFiles/fademl.dir/nn/layers.cpp.o" "gcc" "src/CMakeFiles/fademl.dir/nn/layers.cpp.o.d"
  "/root/repo/src/nn/module.cpp" "src/CMakeFiles/fademl.dir/nn/module.cpp.o" "gcc" "src/CMakeFiles/fademl.dir/nn/module.cpp.o.d"
  "/root/repo/src/nn/optimizer.cpp" "src/CMakeFiles/fademl.dir/nn/optimizer.cpp.o" "gcc" "src/CMakeFiles/fademl.dir/nn/optimizer.cpp.o.d"
  "/root/repo/src/nn/trainer.cpp" "src/CMakeFiles/fademl.dir/nn/trainer.cpp.o" "gcc" "src/CMakeFiles/fademl.dir/nn/trainer.cpp.o.d"
  "/root/repo/src/nn/vggnet.cpp" "src/CMakeFiles/fademl.dir/nn/vggnet.cpp.o" "gcc" "src/CMakeFiles/fademl.dir/nn/vggnet.cpp.o.d"
  "/root/repo/src/poison/poison.cpp" "src/CMakeFiles/fademl.dir/poison/poison.cpp.o" "gcc" "src/CMakeFiles/fademl.dir/poison/poison.cpp.o.d"
  "/root/repo/src/tensor/ops.cpp" "src/CMakeFiles/fademl.dir/tensor/ops.cpp.o" "gcc" "src/CMakeFiles/fademl.dir/tensor/ops.cpp.o.d"
  "/root/repo/src/tensor/random.cpp" "src/CMakeFiles/fademl.dir/tensor/random.cpp.o" "gcc" "src/CMakeFiles/fademl.dir/tensor/random.cpp.o.d"
  "/root/repo/src/tensor/serialize.cpp" "src/CMakeFiles/fademl.dir/tensor/serialize.cpp.o" "gcc" "src/CMakeFiles/fademl.dir/tensor/serialize.cpp.o.d"
  "/root/repo/src/tensor/shape.cpp" "src/CMakeFiles/fademl.dir/tensor/shape.cpp.o" "gcc" "src/CMakeFiles/fademl.dir/tensor/shape.cpp.o.d"
  "/root/repo/src/tensor/tensor.cpp" "src/CMakeFiles/fademl.dir/tensor/tensor.cpp.o" "gcc" "src/CMakeFiles/fademl.dir/tensor/tensor.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
