# Empty compiler generated dependencies file for fademl.
# This may be replaced when dependencies are built.
