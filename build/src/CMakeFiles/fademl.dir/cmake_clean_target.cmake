file(REMOVE_RECURSE
  "libfademl.a"
)
