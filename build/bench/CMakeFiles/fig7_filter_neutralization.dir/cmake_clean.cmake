file(REMOVE_RECURSE
  "CMakeFiles/fig7_filter_neutralization.dir/fig7_filter_neutralization.cpp.o"
  "CMakeFiles/fig7_filter_neutralization.dir/fig7_filter_neutralization.cpp.o.d"
  "fig7_filter_neutralization"
  "fig7_filter_neutralization.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_filter_neutralization.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
