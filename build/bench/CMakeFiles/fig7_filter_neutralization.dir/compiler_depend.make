# Empty compiler generated dependencies file for fig7_filter_neutralization.
# This may be replaced when dependencies are built.
