file(REMOVE_RECURSE
  "CMakeFiles/ext_blackbox.dir/ext_blackbox.cpp.o"
  "CMakeFiles/ext_blackbox.dir/ext_blackbox.cpp.o.d"
  "ext_blackbox"
  "ext_blackbox.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_blackbox.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
