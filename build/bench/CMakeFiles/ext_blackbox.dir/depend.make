# Empty dependencies file for ext_blackbox.
# This may be replaced when dependencies are built.
