file(REMOVE_RECURSE
  "CMakeFiles/fig9_fademl.dir/fig9_fademl.cpp.o"
  "CMakeFiles/fig9_fademl.dir/fig9_fademl.cpp.o.d"
  "fig9_fademl"
  "fig9_fademl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig9_fademl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
