# Empty dependencies file for fig9_fademl.
# This may be replaced when dependencies are built.
