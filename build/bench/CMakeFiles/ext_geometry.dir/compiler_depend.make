# Empty compiler generated dependencies file for ext_geometry.
# This may be replaced when dependencies are built.
