file(REMOVE_RECURSE
  "CMakeFiles/ext_geometry.dir/ext_geometry.cpp.o"
  "CMakeFiles/ext_geometry.dir/ext_geometry.cpp.o.d"
  "ext_geometry"
  "ext_geometry.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_geometry.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
