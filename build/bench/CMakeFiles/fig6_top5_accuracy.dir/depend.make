# Empty dependencies file for fig6_top5_accuracy.
# This may be replaced when dependencies are built.
