file(REMOVE_RECURSE
  "CMakeFiles/ext_transfer.dir/ext_transfer.cpp.o"
  "CMakeFiles/ext_transfer.dir/ext_transfer.cpp.o.d"
  "ext_transfer"
  "ext_transfer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_transfer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
