file(REMOVE_RECURSE
  "CMakeFiles/ext_poisoning.dir/ext_poisoning.cpp.o"
  "CMakeFiles/ext_poisoning.dir/ext_poisoning.cpp.o.d"
  "ext_poisoning"
  "ext_poisoning.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_poisoning.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
