# Empty compiler generated dependencies file for ext_poisoning.
# This may be replaced when dependencies are built.
