file(REMOVE_RECURSE
  "CMakeFiles/fig5_attacks_tm1.dir/fig5_attacks_tm1.cpp.o"
  "CMakeFiles/fig5_attacks_tm1.dir/fig5_attacks_tm1.cpp.o.d"
  "fig5_attacks_tm1"
  "fig5_attacks_tm1.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_attacks_tm1.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
