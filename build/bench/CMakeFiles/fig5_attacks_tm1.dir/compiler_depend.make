# Empty compiler generated dependencies file for fig5_attacks_tm1.
# This may be replaced when dependencies are built.
