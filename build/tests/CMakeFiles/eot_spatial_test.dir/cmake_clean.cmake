file(REMOVE_RECURSE
  "CMakeFiles/eot_spatial_test.dir/eot_spatial_test.cpp.o"
  "CMakeFiles/eot_spatial_test.dir/eot_spatial_test.cpp.o.d"
  "eot_spatial_test"
  "eot_spatial_test.pdb"
  "eot_spatial_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/eot_spatial_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
