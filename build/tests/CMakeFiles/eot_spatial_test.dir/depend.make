# Empty dependencies file for eot_spatial_test.
# This may be replaced when dependencies are built.
