file(REMOVE_RECURSE
  "CMakeFiles/transforms_poison_test.dir/transforms_poison_test.cpp.o"
  "CMakeFiles/transforms_poison_test.dir/transforms_poison_test.cpp.o.d"
  "transforms_poison_test"
  "transforms_poison_test.pdb"
  "transforms_poison_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/transforms_poison_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
