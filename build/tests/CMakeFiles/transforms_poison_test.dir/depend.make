# Empty dependencies file for transforms_poison_test.
# This may be replaced when dependencies are built.
