file(REMOVE_RECURSE
  "CMakeFiles/extended_attacks_test.dir/extended_attacks_test.cpp.o"
  "CMakeFiles/extended_attacks_test.dir/extended_attacks_test.cpp.o.d"
  "extended_attacks_test"
  "extended_attacks_test.pdb"
  "extended_attacks_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/extended_attacks_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
