# Empty compiler generated dependencies file for extended_attacks_test.
# This may be replaced when dependencies are built.
