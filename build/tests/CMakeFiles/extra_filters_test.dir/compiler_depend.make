# Empty compiler generated dependencies file for extra_filters_test.
# This may be replaced when dependencies are built.
