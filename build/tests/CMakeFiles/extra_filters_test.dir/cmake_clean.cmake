file(REMOVE_RECURSE
  "CMakeFiles/extra_filters_test.dir/extra_filters_test.cpp.o"
  "CMakeFiles/extra_filters_test.dir/extra_filters_test.cpp.o.d"
  "extra_filters_test"
  "extra_filters_test.pdb"
  "extra_filters_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/extra_filters_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
