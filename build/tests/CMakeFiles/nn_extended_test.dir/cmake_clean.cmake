file(REMOVE_RECURSE
  "CMakeFiles/nn_extended_test.dir/nn_extended_test.cpp.o"
  "CMakeFiles/nn_extended_test.dir/nn_extended_test.cpp.o.d"
  "nn_extended_test"
  "nn_extended_test.pdb"
  "nn_extended_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nn_extended_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
