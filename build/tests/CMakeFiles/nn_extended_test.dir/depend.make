# Empty dependencies file for nn_extended_test.
# This may be replaced when dependencies are built.
