# Empty compiler generated dependencies file for cli_utils_test.
# This may be replaced when dependencies are built.
