file(REMOVE_RECURSE
  "CMakeFiles/cli_utils_test.dir/cli_utils_test.cpp.o"
  "CMakeFiles/cli_utils_test.dir/cli_utils_test.cpp.o.d"
  "cli_utils_test"
  "cli_utils_test.pdb"
  "cli_utils_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cli_utils_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
