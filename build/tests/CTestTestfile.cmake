# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/analysis_test[1]_include.cmake")
include("/root/repo/build/tests/attacks_test[1]_include.cmake")
include("/root/repo/build/tests/autograd_test[1]_include.cmake")
include("/root/repo/build/tests/cli_utils_test[1]_include.cmake")
include("/root/repo/build/tests/cost_test[1]_include.cmake")
include("/root/repo/build/tests/data_test[1]_include.cmake")
include("/root/repo/build/tests/defense_test[1]_include.cmake")
include("/root/repo/build/tests/eot_spatial_test[1]_include.cmake")
include("/root/repo/build/tests/experiment_test[1]_include.cmake")
include("/root/repo/build/tests/extended_attacks_test[1]_include.cmake")
include("/root/repo/build/tests/extra_filters_test[1]_include.cmake")
include("/root/repo/build/tests/filters_test[1]_include.cmake")
include("/root/repo/build/tests/integration_test[1]_include.cmake")
include("/root/repo/build/tests/io_test[1]_include.cmake")
include("/root/repo/build/tests/methodology_test[1]_include.cmake")
include("/root/repo/build/tests/nn_extended_test[1]_include.cmake")
include("/root/repo/build/tests/nn_test[1]_include.cmake")
include("/root/repo/build/tests/ops_test[1]_include.cmake")
include("/root/repo/build/tests/pipeline_test[1]_include.cmake")
include("/root/repo/build/tests/property_test[1]_include.cmake")
include("/root/repo/build/tests/random_test[1]_include.cmake")
include("/root/repo/build/tests/serialize_test[1]_include.cmake")
include("/root/repo/build/tests/shape_test[1]_include.cmake")
include("/root/repo/build/tests/tensor_test[1]_include.cmake")
include("/root/repo/build/tests/transforms_poison_test[1]_include.cmake")
include("/root/repo/build/tests/universal_test[1]_include.cmake")
