# Empty compiler generated dependencies file for fademl_cli.
# This may be replaced when dependencies are built.
