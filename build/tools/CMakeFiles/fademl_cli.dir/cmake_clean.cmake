file(REMOVE_RECURSE
  "CMakeFiles/fademl_cli.dir/fademl_cli.cpp.o"
  "CMakeFiles/fademl_cli.dir/fademl_cli.cpp.o.d"
  "fademl"
  "fademl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fademl_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
