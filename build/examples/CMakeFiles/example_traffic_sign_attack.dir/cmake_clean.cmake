file(REMOVE_RECURSE
  "CMakeFiles/example_traffic_sign_attack.dir/traffic_sign_attack.cpp.o"
  "CMakeFiles/example_traffic_sign_attack.dir/traffic_sign_attack.cpp.o.d"
  "example_traffic_sign_attack"
  "example_traffic_sign_attack.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_traffic_sign_attack.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
