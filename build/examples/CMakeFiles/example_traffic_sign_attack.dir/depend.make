# Empty dependencies file for example_traffic_sign_attack.
# This may be replaced when dependencies are built.
