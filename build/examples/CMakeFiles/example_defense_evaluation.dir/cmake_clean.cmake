file(REMOVE_RECURSE
  "CMakeFiles/example_defense_evaluation.dir/defense_evaluation.cpp.o"
  "CMakeFiles/example_defense_evaluation.dir/defense_evaluation.cpp.o.d"
  "example_defense_evaluation"
  "example_defense_evaluation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_defense_evaluation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
