# Empty compiler generated dependencies file for example_defense_evaluation.
# This may be replaced when dependencies are built.
