# Empty compiler generated dependencies file for example_blackbox_attack.
# This may be replaced when dependencies are built.
