file(REMOVE_RECURSE
  "CMakeFiles/example_blackbox_attack.dir/blackbox_attack.cpp.o"
  "CMakeFiles/example_blackbox_attack.dir/blackbox_attack.cpp.o.d"
  "example_blackbox_attack"
  "example_blackbox_attack.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_blackbox_attack.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
