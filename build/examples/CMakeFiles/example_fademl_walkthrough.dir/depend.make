# Empty dependencies file for example_fademl_walkthrough.
# This may be replaced when dependencies are built.
