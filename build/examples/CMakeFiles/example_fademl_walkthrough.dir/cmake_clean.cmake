file(REMOVE_RECURSE
  "CMakeFiles/example_fademl_walkthrough.dir/fademl_walkthrough.cpp.o"
  "CMakeFiles/example_fademl_walkthrough.dir/fademl_walkthrough.cpp.o.d"
  "example_fademl_walkthrough"
  "example_fademl_walkthrough.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_fademl_walkthrough.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
