# Empty dependencies file for example_filter_defense.
# This may be replaced when dependencies are built.
