file(REMOVE_RECURSE
  "CMakeFiles/example_filter_defense.dir/filter_defense.cpp.o"
  "CMakeFiles/example_filter_defense.dir/filter_defense.cpp.o.d"
  "example_filter_defense"
  "example_filter_defense.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_filter_defense.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
