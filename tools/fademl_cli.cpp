// The fademl command-line tool: run the paper's pipeline pieces without
// writing C++.
//
//   fademl classes                      list the 43 GTSRB classes
//   fademl render  --cls 14 --out s.ppm render a synthetic sign
//   fademl train                        train/cache the experiment model
//   fademl eval    --filter lap8        accuracy + top confusions
//   fademl attack  --source 14 --target 3 --attack bim --filter lap32
//                  [--fademl] [--eps 0.15] [--out panel.ppm]
//   fademl verify  --ckpt model.fdml    validate a checkpoint bundle
//   fademl serve   [--port 7433] [--host 127.0.0.1] [--model gtsrb]
//                  [--filter lap32] [--workers 2] [--queue 64]
//                  [--max-conn 32] [--no-swap] [--metrics-out metrics.json]
//                  [--supervise] [--stall-timeout-ms 2000]
//                  [--max-restarts 16] [--quarantine-strikes 0]
//                  serve the experiment model over the FNET wire protocol
//                  (length-prefixed CRC-checked frames, see
//                  docs/serving.md) until SIGINT/SIGTERM; hot checkpoint
//                  swap stays enabled unless --no-swap. --supervise turns
//                  on worker heartbeat supervision (stall abandon +
//                  respawn), --quarantine-strikes N bans inputs after N
//                  worker failures, and --metrics-out writes the merged
//                  net.* + serve.* fademl.metrics.v1 dump at shutdown
//   fademl client  --image x.ppm [--model gtsrb] [--host ...] [--port ...]
//                  [--retries 4] [--hedge-delay-ms 0]
//                  classify one PPM against a running `fademl serve`;
//                  --hedge-delay-ms > 0 races a second attempt against a
//                  slow first one (first success wins)
//   fademl client  --status [--model gtsrb] [--host ...] [--port ...]
//                  print the server's ServiceStats + supervisor snapshot
//                  for one model over the wire (kStatusRequest)
//   fademl swap    --ckpt new.fdml [--model gtsrb] [--host ...] [--port ...]
//                  hot-swap a running server to a new checkpoint; on
//                  failure the server keeps serving the old model
//   fademl serve-batch --dir imgs      classify every PPM in a directory
//                  [--filter lap32] [--workers 2] [--deadline-ms 0]
//                  [--queue 64] [--policy block|shed]
//                  [--max-batch 8] [--batch-window-ms 2]
//                  [--metrics-out metrics.json] [--trace-out trace.json]
//                  through the hardened concurrent inference service,
//                  with micro-batched workers and per-image failure
//                  isolation; --metrics-out exports the merged
//                  fademl.metrics.v1 registry dump, --trace-out enables
//                  span collection and writes a Chrome-trace timeline
//                  (see docs/observability.md)
//
// Exit codes (documented in README "Exit codes"):
//   0  success
//   1  runtime error (bad input, attack failure, corrupt/missing checkpoint)
//   2  usage error (no/unknown command, bad flags)
//   3  partial failure (serve-batch completed but some images failed)
//
// Every command honors FADEML_FAST / FADEML_CACHE_DIR like the benches.

#include <algorithm>
#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <future>
#include <iostream>
#include <memory>
#include <thread>
#include <utility>
#include <vector>

#include "bench/bench_common.hpp"
#include "fademl/core/metrics.hpp"
#include "fademl/fademl.hpp"
#include "fademl/io/args.hpp"
#include "fademl/io/visualize.hpp"
#include "fademl/net/client.hpp"
#include "fademl/net/registry.hpp"
#include "fademl/net/server.hpp"
#include "fademl/nn/checkpoint.hpp"

namespace {

using namespace fademl;

/// Bad flags are a usage error (exit 2), not a runtime failure (exit 1).
struct UsageError : Error {
  using Error::Error;
};

attacks::AttackKind parse_attack(const std::string& spec) {
  if (spec == "lbfgs") {
    return attacks::AttackKind::kLbfgs;
  }
  if (spec == "fgsm") {
    return attacks::AttackKind::kFgsm;
  }
  if (spec == "bim") {
    return attacks::AttackKind::kBim;
  }
  if (spec == "cw") {
    return attacks::AttackKind::kCw;
  }
  throw Error("unknown attack '" + spec + "' (expected lbfgs|fgsm|bim|cw)");
}

int cmd_classes() {
  io::Table table({"id", "class"});
  for (int64_t c = 0; c < data::kGtsrbNumClasses; ++c) {
    table.add_row({std::to_string(c), data::gtsrb_class_name(c)});
  }
  table.print(std::cout);
  return 0;
}

int cmd_render(const io::ArgParser& args) {
  const int64_t cls = args.get_int("cls", 14);
  const int64_t size = args.get_int("size", 32);
  const std::string out = args.get("out", "sign.ppm");
  Tensor image;
  if (args.has("seed")) {
    Rng rng(static_cast<uint64_t>(args.get_int("seed", 1)));
    image = data::render_sign(
        cls, data::RenderParams::randomize(rng, 0.02f), size);
  } else {
    image = data::canonical_sample(cls, size);
  }
  io::write_ppm(out, image);
  std::printf("rendered %s (%lld x %lld) -> %s\n",
              data::gtsrb_class_name(cls).c_str(),
              static_cast<long long>(size), static_cast<long long>(size),
              out.c_str());
  return 0;
}

int cmd_train() {
  core::Experiment exp =
      core::make_experiment(core::ExperimentConfig::from_env());
  std::printf("model ready: %lld parameters, checkpoint %s\n",
              static_cast<long long>(exp.model->parameter_count()),
              exp.config.checkpoint_path().c_str());
  return 0;
}

int cmd_eval(const io::ArgParser& args) {
  core::Experiment exp =
      core::make_experiment(core::ExperimentConfig::from_env());
  core::InferencePipeline pipeline(exp.model,
                                   filters::parse_filter(args.get("filter", "none")));
  const auto acc = pipeline.accuracy(exp.dataset.test.images,
                                     exp.dataset.test.labels,
                                     core::ThreatModel::kIII);
  std::printf("pipeline [%s]: top-1 %.1f%%, top-5 %.1f%% on %lld samples\n",
              pipeline.filter().name().c_str(), acc.top1 * 100.0,
              acc.top5 * 100.0,
              static_cast<long long>(exp.dataset.test.size()));
  const core::ConfusionMatrix cm = core::confusion_matrix(
      pipeline, exp.dataset.test.images, exp.dataset.test.labels,
      core::ThreatModel::kIII);
  io::Table table({"true class", "predicted as", "count"});
  for (const auto& conf : cm.top_confusions(8)) {
    table.add_row({data::gtsrb_class_name(conf.truth),
                   data::gtsrb_class_name(conf.predicted),
                   std::to_string(conf.count)});
  }
  std::printf("\ntop confusions:\n");
  table.print(std::cout);
  return 0;
}

int cmd_attack(const io::ArgParser& args) {
  core::Experiment exp =
      core::make_experiment(core::ExperimentConfig::from_env());
  core::InferencePipeline pipeline(exp.model,
                                   filters::parse_filter(args.get("filter", "lap32")));

  const int64_t source_cls = args.get_int("source", 14);
  const int64_t target_cls = args.get_int("target", 3);
  attacks::AttackConfig config;
  config.epsilon = static_cast<float>(args.get_double("eps", 0.15));
  config.max_iterations = static_cast<int>(args.get_int("iters", 40));
  config.target_confidence = 0.9f;
  config.fgsm_epsilon_search = true;
  const attacks::AttackKind kind = parse_attack(args.get("attack", "bim"));
  const attacks::AttackPtr attack = args.has("fademl")
                                        ? attacks::make_fademl(kind, config)
                                        : attacks::make_attack(kind, config);

  const Tensor source = core::well_classified_sample(
      pipeline, source_cls, exp.config.image_size);
  const attacks::AttackResult r =
      attack->run(pipeline, source, target_cls);

  const auto show = [&](const char* tag, core::ThreatModel tm) {
    const core::Prediction p = pipeline.predict(r.adversarial, tm);
    std::printf("  %-8s %-28s %.1f%%\n", tag,
                data::gtsrb_class_name(p.label).c_str(),
                p.confidence * 100.0);
  };
  std::printf("%s: %s -> %s  (|n|_inf %.3f, |n|_2 %.2f, %d iterations)\n",
              attack->name().c_str(),
              data::gtsrb_class_name(source_cls).c_str(),
              data::gtsrb_class_name(target_cls).c_str(),
              static_cast<double>(r.linf), static_cast<double>(r.l2),
              r.iterations);
  show("TM-I", core::ThreatModel::kI);
  show("TM-II", core::ThreatModel::kII);
  show("TM-III", core::ThreatModel::kIII);

  if (args.has("out")) {
    const std::string out = args.get("out", "attack_panel.ppm");
    io::save_attack_panel(out, source, r.adversarial);
    std::printf("panel [clean | adversarial | noise heatmap] -> %s\n",
                out.c_str());
  }
  return 0;
}

/// Build `count` independent pipeline replicas over the cached experiment
/// model: replica 0 reuses the in-memory model, the rest are fresh module
/// instances loaded from the checkpoint (workers must never share one).
std::vector<std::unique_ptr<core::InferencePipeline>> make_replicas(
    const core::Experiment& exp, const filters::FilterPtr& filter,
    int64_t count) {
  std::vector<std::unique_ptr<core::InferencePipeline>> replicas;
  replicas.push_back(
      std::make_unique<core::InferencePipeline>(exp.model, filter));
  for (int64_t i = 1; i < count; ++i) {
    Rng rng(exp.config.seed ^ 0xA5A5A5A5ull);
    nn::VggConfig vgg = nn::VggConfig::scaled(exp.config.width_divisor);
    vgg.input_size = exp.config.image_size;
    std::shared_ptr<nn::Sequential> model = nn::make_vggnet(vgg, rng);
    nn::load_checkpoint(*model, exp.config.checkpoint_path());
    replicas.push_back(
        std::make_unique<core::InferencePipeline>(std::move(model), filter));
  }
  return replicas;
}

int cmd_serve_batch(const io::ArgParser& args) {
  const std::string dir = args.get("dir", "");
  if (dir.empty()) {
    throw UsageError("serve-batch requires --dir <directory of .ppm images>");
  }
  const std::string metrics_out = args.get("metrics-out", "");
  const std::string trace_out = args.get("trace-out", "");
  if (!trace_out.empty()) {
    // Asking for a trace file implies asking for tracing.
    obs::set_trace_enabled(true);
  }
  std::vector<std::string> files;
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    if (entry.is_regular_file() && entry.path().extension() == ".ppm") {
      files.push_back(entry.path().string());
    }
  }
  std::sort(files.begin(), files.end());
  if (files.empty()) {
    throw Error("serve-batch: no .ppm files in '" + dir + "'");
  }

  const std::string policy = args.get("policy", "block");
  if (policy != "block" && policy != "shed") {
    throw UsageError("serve-batch: --policy must be block or shed, got '" +
                     policy + "'");
  }
  core::Experiment exp =
      core::make_experiment(core::ExperimentConfig::from_env());
  const filters::FilterPtr filter =
      filters::parse_filter(args.get("filter", "lap32"));
  const int64_t workers = args.get_int("workers", 2);
  if (workers < 1) {
    throw UsageError("serve-batch: --workers must be >= 1");
  }

  serve::ServiceConfig config;
  config.queue_capacity = static_cast<size_t>(args.get_int("queue", 64));
  config.overload_policy = policy == "shed" ? serve::OverloadPolicy::kShed
                                            : serve::OverloadPolicy::kBlock;
  config.default_deadline =
      std::chrono::milliseconds(args.get_int("deadline-ms", 0));
  const int64_t max_batch = args.get_int("max-batch", 8);
  if (max_batch < 1) {
    throw UsageError("serve-batch: --max-batch must be >= 1");
  }
  config.max_batch = static_cast<size_t>(max_batch);
  config.batch_window =
      std::chrono::milliseconds(args.get_int("batch-window-ms", 2));
  config.admission.expected_height = exp.config.image_size;
  config.admission.expected_width = exp.config.image_size;
  serve::InferenceService service(make_replicas(exp, filter, workers),
                                  std::move(config));

  bench::FailureLog failures;
  std::vector<std::pair<std::string, std::future<serve::InferenceResult>>>
      pending;
  const auto serve_start = std::chrono::steady_clock::now();
  for (const std::string& file : files) {
    // Per-image isolation: one unreadable/malformed/shed image is logged
    // and the batch continues.
    failures.run(file, [&] {
      Tensor image = io::read_ppm(file);
      pending.emplace_back(file, service.submit(std::move(image)));
    });
  }
  io::Table table({"image", "prediction", "confidence", "filter", "path",
                   "ms"});
  for (auto& [file, future] : pending) {
    failures.run(file, [&] {
      const serve::InferenceResult r = future.get();
      table.add_row({std::filesystem::path(file).filename().string(),
                     data::gtsrb_class_name(r.prediction.label),
                     io::Table::pct(r.prediction.confidence, 1),
                     r.filter + (r.degraded ? " [degraded]" : ""),
                     r.via_plan ? "plan" : "tape",
                     io::Table::fmt(r.total_ms, 1)});
    });
  }
  table.print(std::cout);
  const double serve_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    serve_start)
          .count();

  const serve::ServiceStats stats = service.stats();
  service.shutdown();
  std::printf(
      "\nserved %lld/%zu image(s) on %lld worker(s): %lld degraded, "
      "%lld shed, %lld timed out, %lld invalid, %lld worker failure(s); "
      "latency p50 %.1f ms, p95 %.1f ms, p99 %.1f ms\n",
      static_cast<long long>(stats.completed), files.size(),
      static_cast<long long>(workers),
      static_cast<long long>(stats.degraded),
      static_cast<long long>(stats.shed),
      static_cast<long long>(stats.timed_out),
      static_cast<long long>(stats.rejected_input),
      static_cast<long long>(stats.worker_failures), stats.p50_ms,
      stats.p95_ms, stats.p99_ms);
  std::printf(
      "micro-batching: max_batch %lld, %lld round(s), mean occupancy %.2f, "
      "throughput %.1f img/s\n",
      static_cast<long long>(max_batch),
      static_cast<long long>(stats.batches), stats.mean_batch_occupancy,
      serve_seconds > 0.0
          ? static_cast<double>(stats.completed) / serve_seconds
          : 0.0);
  const int64_t plan_lookups = stats.plan_cache_hits + stats.plan_cache_misses;
  std::printf(
      "execution path: %lld plan round(s), %lld tape round(s); plan cache "
      "%lld hit(s) / %lld miss(es) (%.1f%% hit rate)%s\n",
      static_cast<long long>(stats.plan_batches),
      static_cast<long long>(stats.tape_batches),
      static_cast<long long>(stats.plan_cache_hits),
      static_cast<long long>(stats.plan_cache_misses),
      plan_lookups > 0 ? 100.0 * static_cast<double>(stats.plan_cache_hits) /
                             static_cast<double>(plan_lookups)
                       : 0.0,
      plan::plans_enabled() ? "" : " [plans disabled: FADEML_DISABLE_PLAN]");
  if (!stats.batch_occupancy.empty()) {
    std::printf("occupancy histogram:");
    for (size_t i = 0; i < stats.batch_occupancy.size(); ++i) {
      if (stats.batch_occupancy[i] > 0) {
        std::printf(" %zux%lld", i + 1,
                    static_cast<long long>(stats.batch_occupancy[i]));
      }
    }
    std::printf("\n");
  }
  if (!metrics_out.empty()) {
    // One fademl.metrics.v1 document over the library-level registry
    // (pipeline/pool stages) and the service's private one (serve.*
    // counters + queue/gather/infer histograms).
    std::ofstream os(metrics_out);
    if (!os) {
      throw Error("serve-batch: cannot write metrics to '" + metrics_out +
                  "'");
    }
    obs::write_metrics_json(
        os, {&obs::MetricsRegistry::global(), &service.metrics()});
    std::printf("metrics: %s\n", metrics_out.c_str());
  }
  if (!trace_out.empty()) {
    obs::TraceCollector::instance().write_chrome_trace_file(trace_out);
    std::printf("trace: %s (%zu span(s), %lld dropped)\n", trace_out.c_str(),
                obs::TraceCollector::instance().size(),
                static_cast<long long>(
                    obs::TraceCollector::instance().dropped()));
  }
  return failures.finish();
}

/// Default FNET port for `serve`/`client`/`swap` (spells "SIE" on a
/// phone pad — nothing reserved, just stable across the three commands).
constexpr int64_t kDefaultPort = 7433;

volatile std::sig_atomic_t g_stop_signal = 0;
void handle_stop_signal(int sig) { g_stop_signal = sig; }

uint16_t parse_port(const io::ArgParser& args) {
  const int64_t port = args.get_int("port", kDefaultPort);
  if (port < 0 || port > 65535) {
    throw UsageError("--port must be in [0, 65535], got " +
                     std::to_string(port));
  }
  return static_cast<uint16_t>(port);
}

net::Client make_net_client(const io::ArgParser& args) {
  net::ClientConfig config;
  config.host = args.get("host", "127.0.0.1");
  config.port = parse_port(args);
  const int64_t retries = args.get_int("retries", 4);
  if (retries < 1) {
    throw UsageError("--retries must be >= 1 (it counts total attempts)");
  }
  config.retry.max_attempts = static_cast<int>(retries);
  const int64_t hedge_delay = args.get_int("hedge-delay-ms", 0);
  if (hedge_delay < 0) {
    throw UsageError("--hedge-delay-ms must be >= 0 (0 disables hedging)");
  }
  if (hedge_delay > 0) {
    config.hedge.enabled = true;
    config.hedge.initial_delay_ms = static_cast<int>(hedge_delay);
    config.hedge.min_delay_ms = static_cast<int>(hedge_delay);
  }
  return net::Client(std::move(config));
}

int cmd_serve(const io::ArgParser& args) {
  core::Experiment exp =
      core::make_experiment(core::ExperimentConfig::from_env());
  const std::string filter_spec = args.get("filter", "lap32");
  // Validate the spec eagerly so a typo fails at startup, not inside the
  // replica factory on the first hot swap.
  static_cast<void>(filters::parse_filter(filter_spec));
  const int64_t workers = args.get_int("workers", 2);
  if (workers < 1) {
    throw UsageError("serve: --workers must be >= 1");
  }

  net::ModelSpec spec;
  spec.name = args.get("model", "gtsrb");
  spec.checkpoint_path = exp.config.checkpoint_path();
  // The factory builds fresh *un-loaded* replicas — the registry verifies
  // and loads whichever checkpoint is current, so hot swap reuses the
  // exact same construction path as the initial install.
  const uint64_t seed = exp.config.seed;
  const int64_t divisor = exp.config.width_divisor;
  const int64_t image_size = exp.config.image_size;
  spec.factory = [seed, divisor, image_size, filter_spec, workers] {
    std::vector<std::unique_ptr<core::InferencePipeline>> replicas;
    for (int64_t i = 0; i < workers; ++i) {
      Rng rng(seed ^ 0xA5A5A5A5ull);
      nn::VggConfig vgg = nn::VggConfig::scaled(divisor);
      vgg.input_size = image_size;
      replicas.push_back(std::make_unique<core::InferencePipeline>(
          nn::make_vggnet(vgg, rng), filters::parse_filter(filter_spec)));
    }
    return replicas;
  };
  spec.service.queue_capacity = static_cast<size_t>(args.get_int("queue", 64));
  const int64_t max_batch = args.get_int("max-batch", 8);
  if (max_batch < 1) {
    throw UsageError("serve: --max-batch must be >= 1");
  }
  spec.service.max_batch = static_cast<size_t>(max_batch);
  spec.service.batch_window =
      std::chrono::milliseconds(args.get_int("batch-window-ms", 2));
  spec.service.admission.expected_height = image_size;
  spec.service.admission.expected_width = image_size;
  if (args.has("supervise")) {
    // The registry wires the replacement-replica factory itself (one
    // factory replica, loaded from the served checkpoint).
    spec.service.supervisor.enabled = true;
    spec.service.supervisor.stall_timeout =
        std::chrono::milliseconds(args.get_int("stall-timeout-ms", 2000));
    spec.service.supervisor.max_restarts =
        static_cast<int>(args.get_int("max-restarts", 16));
  }
  const int64_t strikes = args.get_int("quarantine-strikes", 0);
  if (strikes < 0) {
    throw UsageError("serve: --quarantine-strikes must be >= 0");
  }
  spec.service.quarantine.strikes = static_cast<int>(strikes);

  net::ModelRegistry registry;
  registry.install(std::move(spec));
  const std::string model_name = registry.names().front();

  net::ServerConfig server_config;
  server_config.host = args.get("host", "127.0.0.1");
  server_config.port = parse_port(args);
  server_config.max_connections =
      static_cast<int>(args.get_int("max-conn", 32));
  server_config.allow_swap = !args.has("no-swap");
  net::Server server(registry, server_config);
  server.start();
  std::printf(
      "serving model '%s' (%s) on %s:%u — %lld worker(s), filter %s, "
      "swap %s; Ctrl-C to drain and exit\n",
      model_name.c_str(), registry.checkpoint_path(model_name).c_str(),
      server_config.host.c_str(), server.port(),
      static_cast<long long>(workers), filter_spec.c_str(),
      server_config.allow_swap ? "enabled" : "disabled");
  std::fflush(stdout);

  g_stop_signal = 0;
  std::signal(SIGINT, handle_stop_signal);
  std::signal(SIGTERM, handle_stop_signal);
  while (g_stop_signal == 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
  }
  std::printf("\nsignal %d: draining connections...\n",
              static_cast<int>(g_stop_signal));
  server.stop();
  const net::ServerStats stats = server.stats();
  const std::string metrics_out = args.get("metrics-out", "");
  if (!metrics_out.empty()) {
    // One fademl.metrics.v1 document over the server's connection
    // counters ("net.") and every service's registry ("serve." counters
    // + stage histograms) — names are disjoint by construction.
    std::ofstream os(metrics_out);
    if (!os) {
      throw Error("serve: cannot write metrics to '" + metrics_out + "'");
    }
    std::vector<std::shared_ptr<serve::InferenceService>> held;
    std::vector<const obs::MetricsRegistry*> registries{&server.metrics()};
    for (const std::string& name : registry.names()) {
      if (auto service = registry.lookup(name)) {
        registries.push_back(&service->metrics());
        held.push_back(std::move(service));  // keep alive across the write
      }
    }
    obs::write_metrics_json(os, registries);
    std::printf("metrics: %s\n", metrics_out.c_str());
  }
  registry.clear();
  std::printf(
      "served %lld frame(s) over %lld connection(s): %lld error frame(s), "
      "%lld refused, %lld protocol error(s), %lld reset(s)\n",
      static_cast<long long>(stats.frames_served),
      static_cast<long long>(stats.connections_accepted),
      static_cast<long long>(stats.error_frames),
      static_cast<long long>(stats.connections_refused),
      static_cast<long long>(stats.protocol_errors),
      static_cast<long long>(stats.resets_seen));
  return 0;
}

int cmd_net_client(const io::ArgParser& args) {
  if (args.has("status")) {
    net::Client client = make_net_client(args);
    const std::string model = args.get("model", "gtsrb");
    const net::StatusResponse s = client.status(model);
    std::printf("model '%s': generation %lld, checkpoint %s\n",
                model.c_str(), static_cast<long long>(s.generation),
                s.checkpoint_path.c_str());
    std::printf("  breaker %s, queue depth %lld, p50 %.2f ms, p99 %.2f ms\n",
                s.breaker_state.c_str(),
                static_cast<long long>(s.queue_depth), s.p50_ms, s.p99_ms);
    std::printf("  requests: %lld submitted, %lld completed, %lld shed, "
                "%lld timed out, %lld worker failure(s)\n",
                static_cast<long long>(s.submitted),
                static_cast<long long>(s.completed),
                static_cast<long long>(s.shed),
                static_cast<long long>(s.timed_out),
                static_cast<long long>(s.worker_failures));
    std::printf("  workers: %lld/%lld live, %lld lost, %lld crashed, "
                "%lld restarted\n",
                static_cast<long long>(s.workers_live),
                static_cast<long long>(s.workers),
                static_cast<long long>(s.workers_lost),
                static_cast<long long>(s.worker_crashes),
                static_cast<long long>(s.workers_restarted));
    std::printf("  quarantine: %lld input(s) banned, %lld strike(s), "
                "%lld hit(s)\n",
                static_cast<long long>(s.quarantined_inputs),
                static_cast<long long>(s.quarantine_strikes),
                static_cast<long long>(s.quarantine_hits));
    const long long lookups =
        static_cast<long long>(s.plan_cache_hits + s.plan_cache_misses);
    std::printf("  plans: %lld plan round(s), %lld tape round(s), cache "
                "%lld/%lld hit(s) (%.1f%%)\n",
                static_cast<long long>(s.plan_batches),
                static_cast<long long>(s.tape_batches),
                static_cast<long long>(s.plan_cache_hits), lookups,
                lookups > 0
                    ? 100.0 * static_cast<double>(s.plan_cache_hits) /
                          static_cast<double>(lookups)
                    : 0.0);
    return 0;
  }
  const std::string image_path = args.get("image", "");
  if (image_path.empty()) {
    throw UsageError("client requires --image <file.ppm> (or --status)");
  }
  Tensor image = io::read_ppm(image_path);
  net::Client client = make_net_client(args);
  const net::PredictResult r =
      client.predict(args.get("model", "gtsrb"), image);
  std::printf("%s: %s  %.1f%%  (filter %s%s, %.2f ms server inference, "
              "%d attempt(s))\n",
              image_path.c_str(),
              data::gtsrb_class_name(r.prediction.label).c_str(),
              r.prediction.confidence * 100.0, r.filter.c_str(),
              r.degraded ? " [degraded]" : "", r.infer_ms, r.attempts);
  return 0;
}

int cmd_swap(const io::ArgParser& args) {
  const std::string ckpt = args.get("ckpt", "");
  if (ckpt.empty()) {
    throw UsageError("swap requires --ckpt <new checkpoint bundle>");
  }
  net::Client client = make_net_client(args);
  // A rejected swap throws RemoteError (exit 1); the server keeps
  // serving its previous checkpoint in that case.
  const net::SwapResult r = client.swap(args.get("model", "gtsrb"), ckpt);
  std::printf("swap ok: %s (generation %lld)\n", r.detail.c_str(),
              static_cast<long long>(r.generation));
  return 0;
}

int cmd_verify(const io::ArgParser& args) {
  const std::string path = args.get("ckpt", "");
  if (path.empty()) {
    throw UsageError("verify requires --ckpt <path>");
  }
  const nn::CheckpointVerdict verdict = nn::verify_checkpoint(path);
  switch (verdict.status) {
    case nn::CheckpointStatus::kOk:
      std::printf("%s: OK (%lld records, all checksums valid)\n",
                  path.c_str(),
                  static_cast<long long>(verdict.record_count));
      return 0;
    case nn::CheckpointStatus::kMissing:
      std::fprintf(stderr, "%s: MISSING (no such file)\n", path.c_str());
      return 1;
    case nn::CheckpointStatus::kCorrupt:
      std::fprintf(stderr, "%s: CORRUPT (%s)\n", path.c_str(),
                   verdict.detail.c_str());
      return 1;
  }
  return 1;
}

}  // namespace

constexpr const char* kCommands =
    "fademl "
    "<classes|render|train|eval|attack|verify|serve-batch|serve|client|swap>";

int main(int argc, char** argv) {
  io::ArgParser args(
      "fademl — filter-aware adversarial ML toolkit (DATE 2019 reproduction)",
      {"cls", "size", "out", "seed", "filter", "attack", "source", "target",
       "eps", "iters", "fademl!", "ckpt", "dir", "workers", "deadline-ms",
       "queue", "policy", "max-batch", "batch-window-ms", "metrics-out",
       "trace-out", "host", "port", "max-conn", "no-swap!", "model", "image",
       "retries", "hedge-delay-ms", "status!", "supervise!",
       "stall-timeout-ms", "max-restarts", "quarantine-strikes"});
  std::string command;
  try {
    if (argc < 2) {
      std::fputs(args.usage(kCommands).c_str(), stderr);
      return 2;
    }
    command = argv[1];
    try {
      args.parse(argc - 2, argv + 2);
    } catch (const Error& e) {
      throw UsageError(e.what());
    }
    if (command == "classes") {
      return cmd_classes();
    }
    if (command == "render") {
      return cmd_render(args);
    }
    if (command == "train") {
      return cmd_train();
    }
    if (command == "eval") {
      return cmd_eval(args);
    }
    if (command == "attack") {
      return cmd_attack(args);
    }
    if (command == "verify") {
      return cmd_verify(args);
    }
    if (command == "serve-batch") {
      return cmd_serve_batch(args);
    }
    if (command == "serve") {
      return cmd_serve(args);
    }
    if (command == "client") {
      return cmd_net_client(args);
    }
    if (command == "swap") {
      return cmd_swap(args);
    }
    std::fprintf(stderr, "error: unknown command '%s'\n%s", command.c_str(),
                 args.usage(kCommands).c_str());
    return 2;
  } catch (const UsageError& e) {
    std::fprintf(stderr, "error: %s\n%s", e.what(),
                 args.usage(kCommands).c_str());
    return 2;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n%s", e.what(),
                 args.usage(kCommands).c_str());
    return 1;
  }
}
