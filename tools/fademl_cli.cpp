// The fademl command-line tool: run the paper's pipeline pieces without
// writing C++.
//
//   fademl classes                      list the 43 GTSRB classes
//   fademl render  --cls 14 --out s.ppm render a synthetic sign
//   fademl train                        train/cache the experiment model
//   fademl eval    --filter lap8        accuracy + top confusions
//   fademl attack  --source 14 --target 3 --attack bim --filter lap32
//                  [--fademl] [--eps 0.15] [--out panel.ppm]
//   fademl verify  --ckpt model.fdml    validate a checkpoint bundle
//                  (exit 0 = intact, 1 = corrupt/missing; for scripts/CI)
//
// Every command honors FADEML_FAST / FADEML_CACHE_DIR like the benches.

#include <cstdio>
#include <iostream>
#include <memory>

#include "fademl/core/metrics.hpp"
#include "fademl/fademl.hpp"
#include "fademl/io/args.hpp"
#include "fademl/io/visualize.hpp"
#include "fademl/nn/checkpoint.hpp"

namespace {

using namespace fademl;

attacks::AttackKind parse_attack(const std::string& spec) {
  if (spec == "lbfgs") {
    return attacks::AttackKind::kLbfgs;
  }
  if (spec == "fgsm") {
    return attacks::AttackKind::kFgsm;
  }
  if (spec == "bim") {
    return attacks::AttackKind::kBim;
  }
  if (spec == "cw") {
    return attacks::AttackKind::kCw;
  }
  throw Error("unknown attack '" + spec + "' (expected lbfgs|fgsm|bim|cw)");
}

int cmd_classes() {
  io::Table table({"id", "class"});
  for (int64_t c = 0; c < data::kGtsrbNumClasses; ++c) {
    table.add_row({std::to_string(c), data::gtsrb_class_name(c)});
  }
  table.print(std::cout);
  return 0;
}

int cmd_render(const io::ArgParser& args) {
  const int64_t cls = args.get_int("cls", 14);
  const int64_t size = args.get_int("size", 32);
  const std::string out = args.get("out", "sign.ppm");
  Tensor image;
  if (args.has("seed")) {
    Rng rng(static_cast<uint64_t>(args.get_int("seed", 1)));
    image = data::render_sign(
        cls, data::RenderParams::randomize(rng, 0.02f), size);
  } else {
    image = data::canonical_sample(cls, size);
  }
  io::write_ppm(out, image);
  std::printf("rendered %s (%lld x %lld) -> %s\n",
              data::gtsrb_class_name(cls).c_str(),
              static_cast<long long>(size), static_cast<long long>(size),
              out.c_str());
  return 0;
}

int cmd_train() {
  core::Experiment exp =
      core::make_experiment(core::ExperimentConfig::from_env());
  std::printf("model ready: %lld parameters, checkpoint %s\n",
              static_cast<long long>(exp.model->parameter_count()),
              exp.config.checkpoint_path().c_str());
  return 0;
}

int cmd_eval(const io::ArgParser& args) {
  core::Experiment exp =
      core::make_experiment(core::ExperimentConfig::from_env());
  core::InferencePipeline pipeline(exp.model,
                                   filters::parse_filter(args.get("filter", "none")));
  const auto acc = pipeline.accuracy(exp.dataset.test.images,
                                     exp.dataset.test.labels,
                                     core::ThreatModel::kIII);
  std::printf("pipeline [%s]: top-1 %.1f%%, top-5 %.1f%% on %lld samples\n",
              pipeline.filter().name().c_str(), acc.top1 * 100.0,
              acc.top5 * 100.0,
              static_cast<long long>(exp.dataset.test.size()));
  const core::ConfusionMatrix cm = core::confusion_matrix(
      pipeline, exp.dataset.test.images, exp.dataset.test.labels,
      core::ThreatModel::kIII);
  io::Table table({"true class", "predicted as", "count"});
  for (const auto& conf : cm.top_confusions(8)) {
    table.add_row({data::gtsrb_class_name(conf.truth),
                   data::gtsrb_class_name(conf.predicted),
                   std::to_string(conf.count)});
  }
  std::printf("\ntop confusions:\n");
  table.print(std::cout);
  return 0;
}

int cmd_attack(const io::ArgParser& args) {
  core::Experiment exp =
      core::make_experiment(core::ExperimentConfig::from_env());
  core::InferencePipeline pipeline(exp.model,
                                   filters::parse_filter(args.get("filter", "lap32")));

  const int64_t source_cls = args.get_int("source", 14);
  const int64_t target_cls = args.get_int("target", 3);
  attacks::AttackConfig config;
  config.epsilon = static_cast<float>(args.get_double("eps", 0.15));
  config.max_iterations = static_cast<int>(args.get_int("iters", 40));
  config.target_confidence = 0.9f;
  config.fgsm_epsilon_search = true;
  const attacks::AttackKind kind = parse_attack(args.get("attack", "bim"));
  const attacks::AttackPtr attack = args.has("fademl")
                                        ? attacks::make_fademl(kind, config)
                                        : attacks::make_attack(kind, config);

  const Tensor source = core::well_classified_sample(
      pipeline, source_cls, exp.config.image_size);
  const attacks::AttackResult r =
      attack->run(pipeline, source, target_cls);

  const auto show = [&](const char* tag, core::ThreatModel tm) {
    const core::Prediction p = pipeline.predict(r.adversarial, tm);
    std::printf("  %-8s %-28s %.1f%%\n", tag,
                data::gtsrb_class_name(p.label).c_str(),
                p.confidence * 100.0);
  };
  std::printf("%s: %s -> %s  (|n|_inf %.3f, |n|_2 %.2f, %d iterations)\n",
              attack->name().c_str(),
              data::gtsrb_class_name(source_cls).c_str(),
              data::gtsrb_class_name(target_cls).c_str(),
              static_cast<double>(r.linf), static_cast<double>(r.l2),
              r.iterations);
  show("TM-I", core::ThreatModel::kI);
  show("TM-II", core::ThreatModel::kII);
  show("TM-III", core::ThreatModel::kIII);

  if (args.has("out")) {
    const std::string out = args.get("out", "attack_panel.ppm");
    io::save_attack_panel(out, source, r.adversarial);
    std::printf("panel [clean | adversarial | noise heatmap] -> %s\n",
                out.c_str());
  }
  return 0;
}

int cmd_verify(const io::ArgParser& args) {
  const std::string path = args.get("ckpt", "");
  if (path.empty()) {
    throw Error("verify requires --ckpt <path>");
  }
  const nn::CheckpointVerdict verdict = nn::verify_checkpoint(path);
  switch (verdict.status) {
    case nn::CheckpointStatus::kOk:
      std::printf("%s: OK (%lld records, all checksums valid)\n",
                  path.c_str(),
                  static_cast<long long>(verdict.record_count));
      return 0;
    case nn::CheckpointStatus::kMissing:
      std::fprintf(stderr, "%s: MISSING (no such file)\n", path.c_str());
      return 1;
    case nn::CheckpointStatus::kCorrupt:
      std::fprintf(stderr, "%s: CORRUPT (%s)\n", path.c_str(),
                   verdict.detail.c_str());
      return 1;
  }
  return 1;
}

}  // namespace

int main(int argc, char** argv) {
  io::ArgParser args(
      "fademl — filter-aware adversarial ML toolkit (DATE 2019 reproduction)",
      {"cls", "size", "out", "seed", "filter", "attack", "source", "target",
       "eps", "iters", "fademl!", "ckpt"});
  try {
    if (argc < 2) {
      std::fputs(args.usage("fademl <classes|render|train|eval|attack|verify>")
                     .c_str(),
                 stderr);
      return 2;
    }
    const std::string command = argv[1];
    args.parse(argc - 2, argv + 2);
    if (command == "classes") {
      return cmd_classes();
    }
    if (command == "render") {
      return cmd_render(args);
    }
    if (command == "train") {
      return cmd_train();
    }
    if (command == "eval") {
      return cmd_eval(args);
    }
    if (command == "attack") {
      return cmd_attack(args);
    }
    if (command == "verify") {
      return cmd_verify(args);
    }
    throw fademl::Error("unknown command '" + command + "'");
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n%s", e.what(),
                 args.usage("fademl <classes|render|train|eval|attack|verify>")
                     .c_str());
    return 1;
  }
}
