// Deterministic chaos-scenario runner for the self-healing serve fleet.
//
// A scenario is a small text file (scenarios/*.chaos) that composes the
// io::FaultInjector failpoints into a timed, seeded, reproducible script
// against an in-process registry + server + client fleet, then asserts
// end-of-run invariants: no admitted request lost, the worker pool back
// to full strength, the quarantine list exactly the planted poison.
//
//   chaos_runner scenarios/self_healing.chaos [more.chaos ...]
//       [--out-dir artifacts]
//
// One JSON verdict per scenario lands in --out-dir as
// CHAOS_<scenario>.json; the exit code is nonzero iff any expectation
// failed. Everything that varies is derived from the scenario's seed, so
// a red run replays bit-identically from the same file.
//
// Format (strict line-based; '#' starts a comment):
//
//   seed 42                 duration-ms 3000       workers 2
//   queue 128               rate 40                clients 3
//   max-attempts 6          max-batch 1
//   stall-timeout-ms 250    poll-ms 10             max-restarts 8
//   restart-backoff-ms 5    poison-strikes 2       poison-every 25
//   hedge-delay-ms 40       hedge-budget 0.5
//
//   at MS arm SPEC          # arm a failpoint MS after the run starts;
//                           # the token `planted` inside SPEC resolves to
//                           # the planted poison tensor's fingerprint
//   at MS disarm
//
//   expect zero-lost            # no non-poison request unanswered
//   expect pool-full            # workers_live == workers after recovery
//   expect quarantine-exact planted   # deny list == { planted CRC }
//   expect quarantine-empty
//   expect min-restarts N       # supervisor respawned at least N
//   expect min-hedges N         # clients launched at least N hedges

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <memory>
#include <mutex>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "fademl/fademl.hpp"
#include "fademl/io/args.hpp"
#include "fademl/io/failpoint.hpp"
#include "fademl/net/client.hpp"
#include "fademl/net/registry.hpp"
#include "fademl/net/server.hpp"
#include "fademl/nn/checkpoint.hpp"
#include "fademl/obs/json.hpp"
#include "fademl/serve/quarantine.hpp"

namespace {

using namespace fademl;
using Clock = std::chrono::steady_clock;

constexpr int64_t kSide = 8;
constexpr int kClasses = 4;

std::unique_ptr<core::InferencePipeline> make_replica() {
  Rng rng(99);
  auto model = nn::make_vggnet(nn::VggConfig::tiny(kClasses, kSide), rng);
  return std::make_unique<core::InferencePipeline>(std::move(model),
                                                   filters::make_lap(4));
}

struct TimelineEvent {
  int at_ms = 0;
  bool arm = false;     ///< false = disarm
  std::string spec;     ///< failpoint text (may contain `planted`)
};

struct Expectation {
  std::string name;     ///< zero-lost / pool-full / ...
  int64_t arg = 0;      ///< N for the min-* expectations
};

struct Scenario {
  std::string name;     ///< file stem, used in the verdict path
  uint64_t seed = 42;
  int duration_ms = 2000;
  int workers = 2;
  int queue = 128;
  double rate = 40.0;
  int clients = 2;
  int max_attempts = 6;
  int max_batch = 1;
  int stall_timeout_ms = 250;
  int poll_ms = 10;
  int max_restarts = 8;
  int restart_backoff_ms = 5;
  int poison_strikes = 0;
  int poison_every = 0;   ///< every N-th arrival sends the planted tensor
  int hedge_delay_ms = 0; ///< 0 disables hedging
  double hedge_budget = 0.1;
  std::vector<TimelineEvent> timeline;
  std::vector<Expectation> expectations;
};

[[noreturn]] void parse_fail(const std::string& file, int line_no,
                             const std::string& why) {
  throw Error("chaos scenario " + file + ":" + std::to_string(line_no) +
              ": " + why);
}

int64_t parse_int(const std::string& file, int line_no,
                  const std::string& text) {
  try {
    size_t pos = 0;
    const int64_t v = std::stoll(text, &pos);
    if (pos != text.size()) {
      parse_fail(file, line_no, "trailing garbage in integer '" + text + "'");
    }
    return v;
  } catch (const std::logic_error&) {
    parse_fail(file, line_no, "expected an integer, got '" + text + "'");
  }
}

double parse_number(const std::string& file, int line_no,
                    const std::string& text) {
  try {
    size_t pos = 0;
    const double v = std::stod(text, &pos);
    if (pos != text.size()) {
      parse_fail(file, line_no, "trailing garbage in number '" + text + "'");
    }
    return v;
  } catch (const std::logic_error&) {
    parse_fail(file, line_no, "expected a number, got '" + text + "'");
  }
}

/// Strict parse: unknown keys, malformed values, or unordered timelines
/// fail loudly — a typo'd scenario silently running nothing is the worst
/// failure mode a chaos suite can have.
Scenario parse_scenario(const std::string& path) {
  std::ifstream is(path);
  if (!is) {
    throw Error("chaos scenario " + path + ": cannot open");
  }
  Scenario s;
  s.name = std::filesystem::path(path).stem().string();
  std::string line;
  int line_no = 0;
  while (std::getline(is, line)) {
    ++line_no;
    if (const size_t hash = line.find('#'); hash != std::string::npos) {
      line.erase(hash);
    }
    std::istringstream ls(line);
    std::string word;
    if (!(ls >> word)) {
      continue;  // blank / comment-only
    }
    auto next = [&](const char* what) {
      std::string token;
      if (!(ls >> token)) {
        parse_fail(path, line_no, std::string("missing ") + what);
      }
      return token;
    };
    auto expect_eol = [&] {
      std::string extra;
      if (ls >> extra) {
        parse_fail(path, line_no, "trailing garbage '" + extra + "'");
      }
    };
    if (word == "seed") {
      s.seed = static_cast<uint64_t>(parse_int(path, line_no, next("value")));
    } else if (word == "duration-ms") {
      s.duration_ms = static_cast<int>(parse_int(path, line_no, next("value")));
    } else if (word == "workers") {
      s.workers = static_cast<int>(parse_int(path, line_no, next("value")));
    } else if (word == "queue") {
      s.queue = static_cast<int>(parse_int(path, line_no, next("value")));
    } else if (word == "rate") {
      s.rate = parse_number(path, line_no, next("value"));
    } else if (word == "clients") {
      s.clients = static_cast<int>(parse_int(path, line_no, next("value")));
    } else if (word == "max-attempts") {
      s.max_attempts =
          static_cast<int>(parse_int(path, line_no, next("value")));
    } else if (word == "max-batch") {
      s.max_batch = static_cast<int>(parse_int(path, line_no, next("value")));
    } else if (word == "stall-timeout-ms") {
      s.stall_timeout_ms =
          static_cast<int>(parse_int(path, line_no, next("value")));
    } else if (word == "poll-ms") {
      s.poll_ms = static_cast<int>(parse_int(path, line_no, next("value")));
    } else if (word == "max-restarts") {
      s.max_restarts =
          static_cast<int>(parse_int(path, line_no, next("value")));
    } else if (word == "restart-backoff-ms") {
      s.restart_backoff_ms =
          static_cast<int>(parse_int(path, line_no, next("value")));
    } else if (word == "poison-strikes") {
      s.poison_strikes =
          static_cast<int>(parse_int(path, line_no, next("value")));
    } else if (word == "poison-every") {
      s.poison_every =
          static_cast<int>(parse_int(path, line_no, next("value")));
    } else if (word == "hedge-delay-ms") {
      s.hedge_delay_ms =
          static_cast<int>(parse_int(path, line_no, next("value")));
    } else if (word == "hedge-budget") {
      s.hedge_budget = parse_number(path, line_no, next("value"));
    } else if (word == "at") {
      TimelineEvent ev;
      ev.at_ms = static_cast<int>(parse_int(path, line_no, next("time")));
      const std::string action = next("arm/disarm");
      if (action == "arm") {
        ev.arm = true;
        ev.spec = next("failpoint spec");
      } else if (action == "disarm") {
        ev.arm = false;
      } else {
        parse_fail(path, line_no, "expected arm or disarm, got '" + action +
                                      "'");
      }
      if (!s.timeline.empty() && ev.at_ms < s.timeline.back().at_ms) {
        parse_fail(path, line_no, "timeline events must be time-ordered");
      }
      s.timeline.push_back(std::move(ev));
    } else if (word == "expect") {
      Expectation ex;
      ex.name = next("expectation");
      if (ex.name == "min-restarts" || ex.name == "min-hedges") {
        ex.arg = parse_int(path, line_no, next("count"));
      } else if (ex.name == "quarantine-exact") {
        const std::string what = next("planted");
        if (what != "planted") {
          parse_fail(path, line_no,
                     "quarantine-exact only supports 'planted'");
        }
      } else if (ex.name != "zero-lost" && ex.name != "pool-full" &&
                 ex.name != "quarantine-empty") {
        parse_fail(path, line_no, "unknown expectation '" + ex.name + "'");
      }
      s.expectations.push_back(std::move(ex));
    } else {
      parse_fail(path, line_no, "unknown directive '" + word + "'");
    }
    expect_eol();
  }
  if (s.expectations.empty()) {
    throw Error("chaos scenario " + path + ": no expectations — a chaos run "
                "that asserts nothing proves nothing");
  }
  return s;
}

/// Deterministic poison image: the tensor every `poison-every`-th arrival
/// carries, and the CRC that `planted` resolves to in arm specs.
Tensor make_planted_poison(uint64_t seed) {
  Rng rng(seed * 7919u + 13u);
  return rng.uniform_tensor(Shape{3, kSide, kSide}, 0.0f, 1.0f);
}

struct RunResult {
  int64_t requests = 0;
  int64_t completed = 0;
  int64_t lost = 0;              ///< non-poison requests unanswered
  int64_t poison_sent = 0;
  int64_t poison_completed = 0;  ///< served before the quarantine tripped
  int64_t poison_failed = 0;     ///< crashed a worker (strike earned)
  int64_t poison_quarantined = 0;///< rejected with quarantined_input
  int64_t hedges = 0;
  int64_t hedge_wins = 0;
  int64_t retries = 0;
  serve::ServiceStats service;
  net::ServerStats server;
  std::vector<uint32_t> quarantine_list;
};

RunResult run_scenario(const Scenario& s, uint16_t port,
                       const std::string& model_name,
                       const Tensor& planted, uint32_t planted_crc) {
  // Poisson arrival schedule, deterministic from the seed (exponential
  // gaps via inverse CDF — same scheme as bench/loadgen).
  std::vector<double> schedule;
  {
    Rng rng(s.seed);
    const double mean_gap_ms = 1000.0 / s.rate;
    double t = 0.0;
    for (;;) {
      const double u =
          std::max(1e-9, 1.0 - static_cast<double>(rng.uniform()));
      t += -mean_gap_ms * std::log(u);
      if (t >= static_cast<double>(s.duration_ms)) {
        break;
      }
      schedule.push_back(t);
    }
  }

  RunResult result;
  result.requests = static_cast<int64_t>(schedule.size());

  const auto start = Clock::now();

  // Timeline thread: arms/disarms failpoints at their scheduled offsets.
  std::thread timeline([&] {
    for (const TimelineEvent& ev : s.timeline) {
      std::this_thread::sleep_until(start +
                                    std::chrono::milliseconds(ev.at_ms));
      if (ev.arm) {
        std::string spec = ev.spec;
        if (const size_t at = spec.find("planted"); at != std::string::npos) {
          spec.replace(at, 7, std::to_string(planted_crc));
        }
        io::FaultInjector::instance().arm(spec);
      } else {
        io::FaultInjector::instance().disarm();
      }
    }
  });

  std::atomic<size_t> next_arrival{0};
  std::atomic<int64_t> completed{0};
  std::atomic<int64_t> lost{0};
  std::atomic<int64_t> poison_sent{0};
  std::atomic<int64_t> poison_completed{0};
  std::atomic<int64_t> poison_failed{0};
  std::atomic<int64_t> poison_quarantined{0};
  std::atomic<int64_t> hedges{0};
  std::atomic<int64_t> hedge_wins{0};
  std::atomic<int64_t> retries{0};

  std::vector<std::thread> threads;
  threads.reserve(static_cast<size_t>(s.clients));
  for (int t = 0; t < s.clients; ++t) {
    threads.emplace_back([&, t] {
      net::ClientConfig config;
      config.port = port;
      config.retry.max_attempts = s.max_attempts;
      config.retry.initial_backoff_ms = 2;
      config.retry.max_backoff_ms = 200;
      config.retry.jitter_seed = s.seed + static_cast<uint64_t>(t);
      // The stall path only resolves once the supervisor abandons the
      // worker, so the read deadline must comfortably outlive it.
      config.io_timeout_ms = std::max(5000, s.stall_timeout_ms * 8);
      if (s.hedge_delay_ms > 0) {
        config.hedge.enabled = true;
        config.hedge.initial_delay_ms = s.hedge_delay_ms;
        // Flooring the adaptive delay at the configured one keeps healthy
        // traffic from hedging when the observed p99 is tiny.
        config.hedge.min_delay_ms = s.hedge_delay_ms;
        config.hedge.budget = s.hedge_budget;
      }
      net::Client client(config);
      Rng image_rng(s.seed * 31 + static_cast<uint64_t>(t));
      for (;;) {
        const size_t index = next_arrival.fetch_add(1);
        if (index >= schedule.size()) {
          break;
        }
        std::this_thread::sleep_until(
            start + std::chrono::duration_cast<Clock::duration>(
                        std::chrono::duration<double, std::milli>(
                            schedule[index])));
        const bool is_poison =
            s.poison_every > 0 &&
            index % static_cast<size_t>(s.poison_every) == 0;
        const Tensor image =
            is_poison ? planted
                      : image_rng.uniform_tensor(Shape{3, kSide, kSide},
                                                 0.0f, 1.0f);
        if (is_poison) {
          poison_sent.fetch_add(1);
        }
        try {
          (void)client.predict(model_name, image);
          (is_poison ? poison_completed : completed).fetch_add(1);
        } catch (const net::RemoteError& e) {
          if (is_poison) {
            (e.code() == net::WireError::kQuarantinedInput
                 ? poison_quarantined
                 : poison_failed)
                .fetch_add(1);
          } else {
            lost.fetch_add(1);
          }
        } catch (const net::NetError&) {
          (is_poison ? poison_failed : lost).fetch_add(1);
        }
      }
      const net::ClientStats cs = client.stats();
      hedges.fetch_add(cs.hedges);
      hedge_wins.fetch_add(cs.hedge_wins);
      retries.fetch_add(cs.retries);
    });
  }
  for (auto& thread : threads) {
    thread.join();
  }
  timeline.join();
  io::FaultInjector::instance().disarm();

  result.completed = completed.load();
  result.lost = lost.load();
  result.poison_sent = poison_sent.load();
  result.poison_completed = poison_completed.load();
  result.poison_failed = poison_failed.load();
  result.poison_quarantined = poison_quarantined.load();
  result.hedges = hedges.load();
  result.hedge_wins = hedge_wins.load();
  result.retries = retries.load();
  return result;
}

struct Verdict {
  std::string name;
  bool pass = false;
  std::string detail;
};

std::vector<Verdict> evaluate(const Scenario& s, const RunResult& r,
                              uint32_t planted_crc) {
  std::vector<Verdict> verdicts;
  for (const Expectation& ex : s.expectations) {
    Verdict v;
    v.name = ex.name;
    if (ex.name == "zero-lost") {
      v.pass = r.lost == 0;
      v.detail = std::to_string(r.lost) + " non-poison requests lost of " +
                 std::to_string(r.requests);
    } else if (ex.name == "pool-full") {
      v.pass = r.service.workers_live == r.service.workers;
      v.detail = std::to_string(r.service.workers_live) + "/" +
                 std::to_string(r.service.workers) + " workers live";
    } else if (ex.name == "quarantine-exact") {
      v.pass = r.quarantine_list == std::vector<uint32_t>{planted_crc};
      std::string got;
      for (const uint32_t crc : r.quarantine_list) {
        got += (got.empty() ? "" : ",") + std::to_string(crc);
      }
      v.detail = "quarantined [" + got + "], planted " +
                 std::to_string(planted_crc);
    } else if (ex.name == "quarantine-empty") {
      v.pass = r.quarantine_list.empty();
      v.detail = std::to_string(r.quarantine_list.size()) +
                 " fingerprints quarantined";
    } else if (ex.name == "min-restarts") {
      v.pass = r.service.workers_restarted >= ex.arg;
      v.detail = std::to_string(r.service.workers_restarted) +
                 " restarts, wanted >= " + std::to_string(ex.arg);
    } else if (ex.name == "min-hedges") {
      v.pass = r.hedges >= ex.arg;
      v.detail = std::to_string(r.hedges) + " hedges, wanted >= " +
                 std::to_string(ex.arg);
    }
    verdicts.push_back(std::move(v));
  }
  return verdicts;
}

void write_verdict(const std::string& path, const Scenario& s,
                   const RunResult& r, const std::vector<Verdict>& verdicts,
                   bool pass) {
  std::filesystem::create_directories(
      std::filesystem::path(path).parent_path());
  std::ofstream os(path);
  obs::JsonWriter w(os);
  w.begin_object();
  w.key("schema").value("fademl.chaos.v1");
  w.key("scenario").value(s.name);
  w.key("seed").value(static_cast<int64_t>(s.seed));
  w.key("duration_ms").value(s.duration_ms);
  w.key("pass").value(pass);
  w.key("requests").value(r.requests);
  w.key("completed").value(r.completed);
  w.key("lost").value(r.lost);
  w.key("poison_sent").value(r.poison_sent);
  w.key("poison_completed").value(r.poison_completed);
  w.key("poison_failed").value(r.poison_failed);
  w.key("poison_quarantined").value(r.poison_quarantined);
  w.key("hedges").value(r.hedges);
  w.key("hedge_wins").value(r.hedge_wins);
  w.key("retries").value(r.retries);
  w.key("service").begin_object();
  w.key("workers").value(r.service.workers);
  w.key("workers_live").value(r.service.workers_live);
  w.key("workers_lost").value(r.service.workers_lost);
  w.key("worker_crashes").value(r.service.worker_crashes);
  w.key("workers_restarted").value(r.service.workers_restarted);
  w.key("requests_worker_lost").value(r.service.requests_worker_lost);
  w.key("worker_failures").value(r.service.worker_failures);
  w.key("quarantine_hits").value(r.service.quarantine_hits);
  w.key("quarantined_inputs").value(r.service.quarantined_inputs);
  w.key("quarantine_strikes").value(r.service.quarantine_strikes);
  w.key("breaker_state").value(r.service.breaker_state);
  w.end_object();
  w.key("server").begin_object();
  w.key("connections_accepted").value(r.server.connections_accepted);
  w.key("connections_refused").value(r.server.connections_refused);
  w.key("connections_drained").value(r.server.connections_drained);
  w.key("frames_served").value(r.server.frames_served);
  w.key("error_frames").value(r.server.error_frames);
  w.key("resets_seen").value(r.server.resets_seen);
  w.end_object();
  w.key("expectations").begin_array();
  for (const Verdict& v : verdicts) {
    w.begin_object();
    w.key("name").value(v.name);
    w.key("pass").value(v.pass);
    w.key("detail").value(v.detail);
    w.end_object();
  }
  w.end_array();
  w.end_object();
  os << "\n";
}

bool run_one(const std::string& scenario_path, const std::string& out_dir) {
  const Scenario s = parse_scenario(scenario_path);
  const Tensor planted = make_planted_poison(s.seed);
  const uint32_t planted_crc = serve::input_fingerprint(planted);

  // Fresh in-process serving stack per scenario: checkpoint, supervised
  // service, loopback server.
  const std::string model_name = "vgg";
  const std::string checkpoint =
      (std::filesystem::temp_directory_path() / "fademl_chaos_ckpt.fdml")
          .string();
  {
    Rng rng(99);
    auto model = nn::make_vggnet(nn::VggConfig::tiny(kClasses, kSide), rng);
    nn::save_checkpoint(*model, checkpoint);
  }
  net::ModelRegistry registry;
  {
    net::ModelSpec spec;
    spec.name = model_name;
    spec.checkpoint_path = checkpoint;
    const int workers = s.workers;
    spec.factory = [workers] {
      std::vector<std::unique_ptr<core::InferencePipeline>> replicas;
      for (int i = 0; i < workers; ++i) {
        replicas.push_back(make_replica());
      }
      return replicas;
    };
    spec.service.admission.expected_height = kSide;
    spec.service.admission.expected_width = kSide;
    spec.service.queue_capacity = static_cast<size_t>(s.queue);
    spec.service.max_batch = static_cast<size_t>(s.max_batch);
    // A chaos run *wants* every failure surfaced individually; a tripping
    // breaker would turn one wedged worker into a storm of fast-fails.
    spec.service.breaker.failure_threshold = 1 << 20;
    spec.service.supervisor.enabled = true;
    spec.service.supervisor.poll_interval =
        std::chrono::milliseconds(s.poll_ms);
    spec.service.supervisor.stall_timeout =
        std::chrono::milliseconds(s.stall_timeout_ms);
    spec.service.supervisor.max_restarts = s.max_restarts;
    spec.service.supervisor.restart_backoff =
        std::chrono::milliseconds(s.restart_backoff_ms);
    spec.service.quarantine.strikes = s.poison_strikes;
    spec.service.replica_factory = make_replica;
    registry.install(std::move(spec));
  }
  net::Server server(registry, net::ServerConfig{});
  server.start();

  RunResult result =
      run_scenario(s, server.port(), model_name, planted, planted_crc);

  // Give the supervisor room to finish recovering (respawn backoff may
  // still be pending when the last request completes) before the
  // pool-strength invariant is read.
  auto service = registry.lookup(model_name);
  const auto recovery_deadline = Clock::now() + std::chrono::seconds(5);
  while (service->live_workers() < service->workers() &&
         Clock::now() < recovery_deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  result.service = service->stats();
  result.quarantine_list = service->quarantined();
  result.server = server.stats();
  service.reset();

  const std::vector<Verdict> verdicts = evaluate(s, result, planted_crc);
  const bool pass = std::all_of(verdicts.begin(), verdicts.end(),
                                [](const Verdict& v) { return v.pass; });

  const std::string out_path = out_dir + "/CHAOS_" + s.name + ".json";
  write_verdict(out_path, s, result, verdicts, pass);

  std::cout << "scenario " << s.name << ": " << (pass ? "PASS" : "FAIL")
            << " (" << result.completed << "/" << result.requests
            << " ok, " << result.lost << " lost, "
            << result.service.workers_restarted << " restarts, "
            << result.hedges << " hedges, quarantine "
            << result.quarantine_list.size() << ")\n";
  for (const Verdict& v : verdicts) {
    std::cout << "  " << (v.pass ? "ok  " : "FAIL") << " " << v.name << ": "
              << v.detail << "\n";
  }

  server.stop();
  registry.clear();
  return pass;
}

}  // namespace

int main(int argc, char** argv) {
  io::ArgParser args("Deterministic chaos-scenario runner for the serve "
                     "fleet (scenarios/*.chaos)",
                     {"out-dir"});
  try {
    args.parse(argc - 1, argv + 1);
  } catch (const fademl::Error& e) {
    std::cerr << e.what() << "\n"
              << args.usage("chaos_runner") << "\n";
    return 2;
  }
  if (args.positional().empty()) {
    std::cerr << "chaos_runner: no scenario files given\n"
              << args.usage("chaos_runner") << "\n";
    return 2;
  }
  const std::string out_dir = args.get("out-dir", "artifacts");

  int failures = 0;
  for (const std::string& path : args.positional()) {
    try {
      if (!run_one(path, out_dir)) {
        ++failures;
      }
    } catch (const fademl::Error& e) {
      std::cerr << "chaos_runner: " << e.what() << "\n";
      ++failures;
    }
  }
  if (failures > 0) {
    std::cerr << "chaos_runner: " << failures << " scenario(s) failed\n";
    return 1;
  }
  return 0;
}
