// Tests for the extended attack library: C&W, JSMA, DeepFool (white-box)
// and one-pixel / ZOO (black-box). These are the remaining entries of the
// paper's attack survey (§II-B) and of its Fig. 3/8 library box ("CWI").

#include <gtest/gtest.h>

#include "fademl/attacks/cw.hpp"
#include "fademl/attacks/deepfool.hpp"
#include "fademl/attacks/fademl_attack.hpp"
#include "fademl/attacks/jsma.hpp"
#include "fademl/attacks/onepixel.hpp"
#include "fademl/attacks/zoo.hpp"
#include "fademl/tensor/error.hpp"
#include "fademl/tensor/ops.hpp"
#include "test_fixtures.hpp"

namespace fademl::attacks {
namespace {

using core::ThreatModel;
using fademl::testing::tiny_pipeline;

constexpr int64_t kSource = 14;  // stop
constexpr int64_t kTarget = 3;   // 60 km/h

Tensor source_image() { return data::canonical_sample(kSource, 16); }

TEST(CwAttack, ValidatesOptions) {
  CwOptions bad;
  bad.binary_search_steps = 0;
  EXPECT_THROW(CwAttack({}, bad), Error);
  CwOptions bad2;
  bad2.initial_c = 0.0f;
  EXPECT_THROW(CwAttack({}, bad2), Error);
}

TEST(CwAttack, NamesFollowGradientRoute) {
  AttackConfig tm3;
  tm3.grad_tm = ThreatModel::kIII;
  EXPECT_EQ(CwAttack().name(), "C&W");
  EXPECT_EQ(CwAttack(tm3).name(), "FAdeML-C&W");
  EXPECT_EQ(attack_kind_name(AttackKind::kCw), "C&W");
  EXPECT_EQ(make_attack(AttackKind::kCw)->name(), "C&W");
  EXPECT_EQ(make_fademl(AttackKind::kCw)->name(), "FAdeML-C&W");
}

TEST(CwAttack, AchievesTargetWithSmallL2) {
  const auto pipeline = tiny_pipeline(filters::make_identity());
  AttackConfig config;
  config.max_iterations = 40;
  const CwAttack attack(config);
  const AttackResult r = attack.run(pipeline, source_image(), kTarget);
  const core::Prediction p = pipeline.predict(r.adversarial, ThreatModel::kI);
  EXPECT_EQ(p.label, kTarget);
  // C&W's selling point: much smaller L2 than sign-based attacks at equal
  // success. The tiny fixture typically yields |n|_2 < 2.
  EXPECT_LT(r.l2, 4.0f);
  EXPECT_GE(min(r.adversarial), 0.0f);
  EXPECT_LE(max(r.adversarial), 1.0f);
}

TEST(CwAttack, FallsBackToSourceOnImpossibleBudget) {
  // One iteration, one search step, microscopic c: no success recorded, so
  // the result must degrade gracefully to (nearly) the source image.
  const auto pipeline = tiny_pipeline(filters::make_identity());
  AttackConfig config;
  config.max_iterations = 1;
  CwOptions options;
  options.binary_search_steps = 1;
  options.initial_c = 1e-6f;
  options.adam_lr = 1e-6f;
  const CwAttack attack(config, options);
  const AttackResult r = attack.run(pipeline, source_image(), kTarget);
  EXPECT_TRUE(r.adversarial.defined());
  EXPECT_LT(r.l2, 1.0f);
}

TEST(JsmaAttack, ValidatesOptions) {
  JsmaOptions bad;
  bad.theta = 0.0f;
  EXPECT_THROW(JsmaAttack({}, bad), Error);
  JsmaOptions bad2;
  bad2.gamma = 1.5f;
  EXPECT_THROW(JsmaAttack({}, bad2), Error);
}

TEST(JsmaAttack, RespectsL0Budget) {
  const auto pipeline = tiny_pipeline(filters::make_identity());
  JsmaOptions options;
  options.gamma = 0.02f;  // at most 2% of 768 features = 15
  const JsmaAttack attack({}, options);
  const AttackResult r = attack.run(pipeline, source_image(), kTarget);
  int64_t changed = 0;
  for (int64_t i = 0; i < r.noise.numel(); ++i) {
    if (std::abs(r.noise.at(i)) > 1e-6f) {
      ++changed;
    }
  }
  EXPECT_LE(changed, static_cast<int64_t>(0.02 * 768) + 1);
}

TEST(JsmaAttack, MovesTargetProbabilityUp) {
  const auto pipeline = tiny_pipeline(filters::make_identity());
  const JsmaAttack attack;
  const Tensor src = source_image();
  const AttackResult r = attack.run(pipeline, src, kTarget);
  const float before =
      pipeline.predict_probs(src, ThreatModel::kI).at(kTarget);
  const float after =
      pipeline.predict_probs(r.adversarial, ThreatModel::kI).at(kTarget);
  EXPECT_GT(after, before);
}

TEST(DeepFool, FindsSmallUntargetedPerturbation) {
  const auto pipeline = tiny_pipeline(filters::make_identity());
  AttackConfig config;
  config.max_iterations = 30;
  const DeepFoolAttack attack(config);
  const Tensor src = source_image();
  const AttackResult r = attack.run(pipeline, src, kSource);
  const core::Prediction p = pipeline.predict(r.adversarial, ThreatModel::kI);
  EXPECT_NE(p.label, kSource);  // untargeted success: left the class
  // Minimal-perturbation attack: noise smaller than a full-budget BIM.
  EXPECT_LT(r.l2, norm_l2(src) * 0.5f);
}

TEST(DeepFool, ValidatesOptions) {
  DeepFoolOptions bad;
  bad.candidate_classes = 0;
  EXPECT_THROW(DeepFoolAttack({}, bad), Error);
}

TEST(OnePixel, IsTrulyL0Bounded) {
  const auto pipeline = tiny_pipeline(filters::make_identity());
  OnePixelOptions options;
  options.pixels = 2;
  options.population = 8;
  options.generations = 3;
  const OnePixelAttack attack({}, options);
  const AttackResult r = attack.run(pipeline, source_image(), kTarget);
  // At most 2 pixel positions changed = at most 6 channel values.
  int64_t changed = 0;
  for (int64_t i = 0; i < r.noise.numel(); ++i) {
    if (std::abs(r.noise.at(i)) > 1e-6f) {
      ++changed;
    }
  }
  EXPECT_LE(changed, 6);
  EXPECT_EQ(attack.name(), "OnePixel(2)");
}

TEST(OnePixel, CountsQueries) {
  const auto pipeline = tiny_pipeline(filters::make_identity());
  OnePixelOptions options;
  options.population = 8;
  options.generations = 2;
  const OnePixelAttack attack({}, options);
  const AttackResult r = attack.run(pipeline, source_image(), kTarget);
  // population initial evals + population per generation.
  EXPECT_EQ(r.iterations, 8 + 2 * 8);
}

TEST(OnePixel, FitnessNeverDecreasesAcrossGenerations) {
  const auto pipeline = tiny_pipeline(filters::make_identity());
  OnePixelOptions options;
  options.population = 12;
  options.generations = 6;
  const OnePixelAttack attack({}, options);
  const AttackResult r = attack.run(pipeline, source_image(), kTarget);
  for (size_t i = 1; i < r.loss_history.size(); ++i) {
    EXPECT_GE(r.loss_history[i], r.loss_history[i - 1] - 1e-6f);
  }
}

TEST(OnePixel, ValidatesOptions) {
  OnePixelOptions bad;
  bad.population = 2;
  EXPECT_THROW(OnePixelAttack({}, bad), Error);
}

TEST(Zoo, GradientFreeAttackImprovesTargetProbability) {
  const auto pipeline = tiny_pipeline(filters::make_identity());
  AttackConfig config;
  config.epsilon = 0.2f;
  config.max_iterations = 12;
  ZooOptions options;
  options.coords_per_step = 48;
  const ZooAttack attack(config, options);
  const Tensor src = source_image();
  const AttackResult r = attack.run(pipeline, src, kTarget);
  const float before =
      pipeline.predict_probs(src, ThreatModel::kI).at(kTarget);
  const float after =
      pipeline.predict_probs(r.adversarial, ThreatModel::kI).at(kTarget);
  EXPECT_GT(after, before);
  // Query accounting: every margin() call counts.
  EXPECT_GT(r.iterations, 12 * 48);
  EXPECT_LE(r.linf, config.epsilon + 1e-5f);
}

TEST(Zoo, ValidatesOptions) {
  ZooOptions bad;
  bad.coords_per_step = 0;
  EXPECT_THROW(ZooAttack({}, bad), Error);
}

TEST(BlackBoxAttacks, AreFilterAwareByConstruction) {
  // Queried through TM-III, a black-box attack optimizes against the
  // deployed (filtered) pipeline directly — no FAdeML wrapper needed.
  const auto pipeline = tiny_pipeline(filters::make_lap(8));
  AttackConfig config;
  config.grad_tm = ThreatModel::kIII;
  config.epsilon = 0.25f;
  config.max_iterations = 15;
  ZooOptions options;
  options.coords_per_step = 64;
  const ZooAttack attack(config, options);
  const Tensor src = source_image();
  const AttackResult r = attack.run(pipeline, src, kTarget);
  const float before =
      pipeline.predict_probs(src, ThreatModel::kIII).at(kTarget);
  const float after =
      pipeline.predict_probs(r.adversarial, ThreatModel::kIII).at(kTarget);
  EXPECT_GT(after, before);
}

}  // namespace
}  // namespace fademl::attacks
