#include "fademl/core/pipeline.hpp"

#include <algorithm>

#include <gtest/gtest.h>

#include "fademl/attacks/attack.hpp"
#include "fademl/autograd/ops.hpp"
#include "fademl/core/threat_model.hpp"
#include "fademl/tensor/error.hpp"
#include "fademl/tensor/ops.hpp"
#include "test_fixtures.hpp"

namespace fademl::core {
namespace {

using fademl::testing::tiny_pipeline;
using fademl::testing::tiny_world;

TEST(ThreatModelNames, MatchPaper) {
  EXPECT_EQ(threat_model_name(ThreatModel::kI), "TM-I");
  EXPECT_EQ(threat_model_name(ThreatModel::kII), "TM-II");
  EXPECT_EQ(threat_model_name(ThreatModel::kIII), "TM-III");
}

// The predict() input contract the serving layer's admission checks are
// written against (fademl/serve/admission.hpp): empty tensors, wrong
// ranks, and wrong channel counts must all throw — whatever admission
// rejects, the pipeline would also have rejected.
TEST(Pipeline, PredictRejectsMalformedImages) {
  InferencePipeline p = tiny_pipeline(filters::make_identity());
  const int64_t side = tiny_world().image_size;
  // Empty / undefined tensor.
  EXPECT_THROW((void)p.predict(Tensor{}, ThreatModel::kIII), Error);
  // Wrong rank: a batch and a matrix are both refused.
  EXPECT_THROW(
      (void)p.predict(Tensor::ones(Shape{1, 3, side, side}), ThreatModel::kI),
      Error);
  EXPECT_THROW((void)p.predict(Tensor::ones(Shape{side, side}),
                               ThreatModel::kIII),
               Error);
  // Wrong channel count for the 3-plane DNN input.
  EXPECT_THROW(
      (void)p.predict(Tensor::ones(Shape{1, side, side}), ThreatModel::kI),
      Error);
  EXPECT_THROW(
      (void)p.predict(Tensor::ones(Shape{4, side, side}), ThreatModel::kIII),
      Error);
  // A well-formed image still works after all those rejections.
  EXPECT_NO_THROW(
      (void)p.predict(Tensor::full(Shape{3, side, side}, 0.5f),
                      ThreatModel::kIII));
}

TEST(Pipeline, RejectsNullComponents) {
  EXPECT_THROW(InferencePipeline(nullptr, filters::make_identity()), Error);
  EXPECT_THROW(InferencePipeline(tiny_world().model, nullptr), Error);
  InferencePipeline p = tiny_pipeline(filters::make_identity());
  EXPECT_THROW(p.set_filter(nullptr), Error);
}

TEST(Pipeline, RouteSemantics) {
  InferencePipeline p = tiny_pipeline(filters::make_lap(8));
  const Tensor x = data::canonical_sample(14, 16);
  // TM-I: untouched.
  EXPECT_FLOAT_EQ(norm_l2(sub(p.route(x, ThreatModel::kI), x)), 0.0f);
  // TM-III: exactly the filter.
  const Tensor tm3 = p.route(x, ThreatModel::kIII);
  EXPECT_FLOAT_EQ(norm_l2(sub(tm3, filters::LapFilter(8).apply(x))), 0.0f);
  // TM-II: blur + filter — differs from TM-III.
  const Tensor tm2 = p.route(x, ThreatModel::kII);
  EXPECT_GT(norm_l2(sub(tm2, tm3)), 1e-4f);
}

TEST(Pipeline, IdentityFilterMakesRoutesCoincide) {
  InferencePipeline p(tiny_world().model, filters::make_identity(),
                      /*acquisition_blur_sigma=*/0.0f);
  const Tensor x = data::canonical_sample(3, 16);
  const Tensor a = p.route(x, ThreatModel::kI);
  const Tensor b = p.route(x, ThreatModel::kIII);
  EXPECT_FLOAT_EQ(norm_l2(sub(a, b)), 0.0f);
}

TEST(Pipeline, PredictionIsCoherent) {
  InferencePipeline p = tiny_pipeline(filters::make_identity());
  const Tensor x = data::canonical_sample(14, 16);
  const Prediction pred = p.predict(x, ThreatModel::kI);
  EXPECT_EQ(pred.probs.numel(), 43);
  EXPECT_NEAR(sum(pred.probs), 1.0f, 1e-4f);
  EXPECT_EQ(pred.top5.size(), 5u);
  EXPECT_EQ(pred.top5[0], pred.label);
  EXPECT_FLOAT_EQ(pred.top5_probs[0], pred.confidence);
  // Top-5 probabilities are sorted descending.
  for (size_t i = 1; i < pred.top5_probs.size(); ++i) {
    EXPECT_LE(pred.top5_probs[i], pred.top5_probs[i - 1]);
  }
}

TEST(Pipeline, TrainedModelClassifiesItsClasses) {
  InferencePipeline p = tiny_pipeline(filters::make_identity());
  int correct = 0;
  for (int64_t cls : tiny_world().classes) {
    const Tensor x = data::canonical_sample(cls, 16);
    if (p.predict(x, ThreatModel::kI).label == cls) {
      ++correct;
    }
  }
  // The fixture model overfits its 8 classes; allow one miss for the
  // canonical (unaugmented) pose.
  EXPECT_GE(correct, 7);
}

TEST(Pipeline, SummarizeProbsTopKOrdering) {
  const Tensor probs{0.1f, 0.5f, 0.05f, 0.2f, 0.1f, 0.05f};
  const Prediction p = summarize_probs(probs);
  EXPECT_EQ(p.label, 1);
  EXPECT_FLOAT_EQ(p.confidence, 0.5f);
  EXPECT_EQ(p.top5[1], 3);
}

TEST(Pipeline, LossAndGradRequiresScalarObjective) {
  InferencePipeline p = tiny_pipeline(filters::make_identity());
  const Tensor x = data::canonical_sample(14, 16);
  const Objective bad = [](const autograd::Variable& logits) {
    return logits;  // not a scalar
  };
  EXPECT_THROW(p.loss_and_grad(x, bad, ThreatModel::kI), Error);
}

/// Directional-derivative check: g·d must match (f(x+εd) − f(x−εd)) / 2ε
/// for random directions d. Whole-vector probes are robust to the isolated
/// ReLU/maxpool kinks that break per-pixel finite differences on a trained
/// network.
void expect_directional_derivative_matches(const InferencePipeline& p,
                                           const Tensor& x,
                                           const Objective& obj,
                                           ThreatModel tm, uint64_t seed) {
  const LossGrad lg = p.loss_and_grad(x, obj, tm);
  ASSERT_EQ(lg.grad.shape(), x.shape());
  Rng rng(seed);
  int close = 0;
  constexpr int kProbes = 5;
  for (int probe = 0; probe < kProbes; ++probe) {
    Tensor d = rng.normal_tensor(x.shape(), 0.0f, 1.0f);
    d.mul_(1.0f / norm_l2(d));
    const float eps = 5e-3f;
    const float hi = p.loss_and_grad(add(x, mul(d, eps)), obj, tm).loss;
    const float lo = p.loss_and_grad(add(x, mul(d, -eps)), obj, tm).loss;
    const float numeric = (hi - lo) / (2 * eps);
    const float analytic = dot(lg.grad, d);
    if (std::abs(analytic - numeric) <=
        0.15f * std::abs(numeric) + 5e-3f) {
      ++close;
    }
  }
  // Allow at most one probe to straddle a kink.
  EXPECT_GE(close, kProbes - 1);
}

TEST(Pipeline, InputGradientMatchesFiniteDifferences_TM1) {
  InferencePipeline p = tiny_pipeline(filters::make_identity());
  expect_directional_derivative_matches(
      p, data::canonical_sample(14, 16), attacks::targeted_cross_entropy(3),
      ThreatModel::kI, 5);
}

TEST(Pipeline, InputGradientMatchesFiniteDifferences_TM3) {
  // The FAdeML-critical path: gradient through the LAP filter.
  InferencePipeline p = tiny_pipeline(filters::make_lap(8));
  expect_directional_derivative_matches(
      p, data::canonical_sample(14, 16), attacks::targeted_cross_entropy(3),
      ThreatModel::kIII, 6);
}

TEST(Pipeline, InputGradientMatchesFiniteDifferences_TM2) {
  // TM-II chains acquisition blur + filter adjoints.
  InferencePipeline p = tiny_pipeline(filters::make_lar(1));
  expect_directional_derivative_matches(
      p, data::canonical_sample(17, 16), attacks::targeted_cross_entropy(3),
      ThreatModel::kII, 7);
}

TEST(Pipeline, LossAndGradDoesNotLeakParameterGradients) {
  InferencePipeline p = tiny_pipeline(filters::make_identity());
  const Tensor x = data::canonical_sample(14, 16);
  (void)p.loss_and_grad(x, attacks::targeted_cross_entropy(3),
                        ThreatModel::kI);
  for (const nn::NamedParam& param : tiny_world().model->named_parameters()) {
    if (param.param.grad().defined()) {
      EXPECT_FLOAT_EQ(norm_l2(param.param.grad()), 0.0f) << param.name;
    }
  }
}

TEST(Pipeline, AccuracyOnTrainSetIsHigh) {
  InferencePipeline p(tiny_world().model, filters::make_identity());
  const auto acc = p.accuracy(tiny_world().train_images,
                              tiny_world().train_labels, ThreatModel::kI);
  EXPECT_GT(acc.top1, 0.9);
  EXPECT_GT(acc.top5, 0.98);
  EXPECT_GE(acc.top5, acc.top1);
}

TEST(Pipeline, FilterCostsSomeAccuracyButNotAll) {
  InferencePipeline p = tiny_pipeline(filters::make_lap(8));
  const auto clean = tiny_pipeline(filters::make_identity())
                         .accuracy(tiny_world().train_images,
                                   tiny_world().train_labels,
                                   ThreatModel::kIII);
  const auto filtered = p.accuracy(tiny_world().train_images,
                                   tiny_world().train_labels,
                                   ThreatModel::kIII);
  // Smoothing may cost accuracy but must not destroy the classifier
  // (paper: a few points of top-5).
  EXPECT_GT(filtered.top5, clean.top5 - 0.35);
}

}  // namespace
}  // namespace fademl::core
