#include "fademl/core/analysis.hpp"

#include <gtest/gtest.h>

#include "fademl/attacks/bim.hpp"
#include "fademl/attacks/fademl_attack.hpp"
#include "fademl/tensor/error.hpp"
#include "fademl/tensor/ops.hpp"
#include "test_fixtures.hpp"

namespace fademl::core {
namespace {

using fademl::testing::tiny_pipeline;
using fademl::testing::tiny_world;

attacks::AttackConfig strong_config() {
  attacks::AttackConfig config;
  config.epsilon = 0.18f;
  config.step_size = 0.02f;
  config.max_iterations = 25;
  return config;
}

TEST(Scenarios, PaperDefinesExactlyFive) {
  const auto& scenarios = paper_scenarios();
  ASSERT_EQ(scenarios.size(), 5u);
  EXPECT_EQ(scenarios[0].name, "Stop to 60km/h");
  EXPECT_EQ(scenarios[0].source_class, 14);
  EXPECT_EQ(scenarios[0].target_class, 3);
  EXPECT_EQ(scenarios[2].source_class, 34);  // turn left ahead
  EXPECT_EQ(scenarios[2].target_class, 33);  // turn right ahead
  EXPECT_EQ(scenarios[4].source_class, 17);  // no entry
  for (const Scenario& s : scenarios) {
    EXPECT_NE(s.source_class, s.target_class) << s.name;
  }
}

TEST(AnalyzeScenario, OutcomeFieldsAreCoherent) {
  const auto pipeline = tiny_pipeline(filters::make_lap(8));
  const attacks::BimAttack attack(strong_config());
  const ScenarioOutcome out =
      analyze_scenario(pipeline, attack, paper_scenarios()[0], 16);
  EXPECT_EQ(out.scenario.source_class, 14);
  EXPECT_EQ(out.attack.adversarial.shape(), Shape({3, 16, 16}));
  EXPECT_EQ(out.clean.probs.numel(), 43);
  EXPECT_EQ(out.adv_tm1.probs.numel(), 43);
  EXPECT_EQ(out.adv_tm23.probs.numel(), 43);
  // Eq. 2 recomputed from the stored probabilities must match.
  EXPECT_NEAR(out.eq2, eq2_cost(out.adv_tm1.probs, out.adv_tm23.probs),
              1e-6f);
  // success flags mirror the stored predictions.
  EXPECT_EQ(out.success_tm1(), out.adv_tm1.label == 3);
  EXPECT_EQ(out.success_tm23(), out.adv_tm23.label == 3);
  EXPECT_EQ(out.neutralized(), out.adv_tm23.label == 14);
}

TEST(AnalyzeScenario, RejectsTm1AsComparisonView) {
  const auto pipeline = tiny_pipeline(filters::make_lap(8));
  const attacks::BimAttack attack(strong_config());
  EXPECT_THROW(analyze_scenario(pipeline, attack, paper_scenarios()[0], 16,
                                ThreatModel::kI),
               Error);
}

TEST(AnalyzeScenario, ClassicAttackSucceedsUnderTm1) {
  const auto pipeline = tiny_pipeline(filters::make_lap(8));
  const attacks::BimAttack attack(strong_config());
  const ScenarioOutcome out =
      analyze_scenario(pipeline, attack, paper_scenarios()[0], 16);
  EXPECT_TRUE(out.success_tm1());
}

TEST(AnalyzeScenario, FilterWeakensClassicAttack) {
  // The paper's Fig. 7 phenomenon, as a directional property: through the
  // filter, the target-class probability of a filter-blind attack must
  // drop relative to its unfiltered view.
  const auto pipeline = tiny_pipeline(filters::make_lap(16));
  const attacks::BimAttack attack(strong_config());
  const ScenarioOutcome out =
      analyze_scenario(pipeline, attack, paper_scenarios()[0], 16);
  const float target_tm1 = out.adv_tm1.probs.at(3);
  const float target_tm23 = out.adv_tm23.probs.at(3);
  EXPECT_LT(target_tm23, target_tm1);
}

TEST(AnalyzeScenario, FademlSurvivesTheFilter) {
  const auto pipeline = tiny_pipeline(filters::make_lap(8));
  const attacks::FAdeMLAttack attack(attacks::AttackKind::kBim,
                                     strong_config());
  const ScenarioOutcome out =
      analyze_scenario(pipeline, attack, paper_scenarios()[0], 16);
  EXPECT_TRUE(out.success_tm23());
}

TEST(AccuracyWithNoise, UndefinedNoiseMeansCleanEvaluation) {
  const auto pipeline = tiny_pipeline(filters::make_identity());
  const auto& w = tiny_world();
  const auto clean = pipeline.accuracy(w.train_images, w.train_labels,
                                       ThreatModel::kI);
  const auto via_helper = accuracy_with_noise(
      pipeline, w.train_images, w.train_labels, Tensor{}, ThreatModel::kI);
  EXPECT_DOUBLE_EQ(clean.top1, via_helper.top1);
  EXPECT_DOUBLE_EQ(clean.top5, via_helper.top5);
}

TEST(AccuracyWithNoise, ZeroNoiseMatchesClean) {
  const auto pipeline = tiny_pipeline(filters::make_identity());
  const auto& w = tiny_world();
  const Tensor zero = Tensor::zeros(Shape{3, 16, 16});
  const auto a = accuracy_with_noise(pipeline, w.train_images,
                                     w.train_labels, zero, ThreatModel::kI);
  const auto b = pipeline.accuracy(w.train_images, w.train_labels,
                                   ThreatModel::kI);
  EXPECT_DOUBLE_EQ(a.top1, b.top1);
}

TEST(AccuracyWithNoise, AdversarialNoiseHurtsAccuracy) {
  const auto pipeline = tiny_pipeline(filters::make_identity());
  const auto& w = tiny_world();
  // Use the attack noise from the stop->60 scenario as a universal noise.
  const attacks::BimAttack attack(strong_config());
  const attacks::AttackResult r =
      attack.run(pipeline, data::canonical_sample(14, 16), 3);
  const auto clean = pipeline.accuracy(w.train_images, w.train_labels,
                                       ThreatModel::kI);
  const auto attacked = accuracy_with_noise(
      pipeline, w.train_images, w.train_labels, r.noise, ThreatModel::kI);
  EXPECT_LE(attacked.top1, clean.top1 + 1e-9);
}

TEST(AccuracyWithNoise, ValidatesShapes) {
  const auto pipeline = tiny_pipeline(filters::make_identity());
  const auto& w = tiny_world();
  EXPECT_THROW(
      accuracy_with_noise(pipeline, w.train_images, w.train_labels,
                          Tensor::zeros(Shape{3, 8, 8}), ThreatModel::kI),
      Error);
  EXPECT_THROW(accuracy_with_noise(pipeline, {}, {}, Tensor{},
                                   ThreatModel::kI),
               Error);
}

}  // namespace
}  // namespace fademl::core
