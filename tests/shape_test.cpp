#include "fademl/tensor/shape.hpp"

#include <gtest/gtest.h>

#include "fademl/tensor/error.hpp"

namespace fademl {
namespace {

TEST(Shape, DefaultIsScalar) {
  const Shape s;
  EXPECT_EQ(s.rank(), 0);
  EXPECT_EQ(s.numel(), 1);
  EXPECT_EQ(s.str(), "[]");
}

TEST(Shape, InitializerListDims) {
  const Shape s{2, 3, 4};
  EXPECT_EQ(s.rank(), 3);
  EXPECT_EQ(s.dim(0), 2);
  EXPECT_EQ(s.dim(1), 3);
  EXPECT_EQ(s.dim(2), 4);
  EXPECT_EQ(s.numel(), 24);
}

TEST(Shape, NegativeIndexCountsFromBack) {
  const Shape s{2, 3, 4};
  EXPECT_EQ(s.dim(-1), 4);
  EXPECT_EQ(s.dim(-2), 3);
  EXPECT_EQ(s.dim(-3), 2);
}

TEST(Shape, DimOutOfRangeThrows) {
  const Shape s{2, 3};
  EXPECT_THROW(s.dim(2), std::out_of_range);
  EXPECT_THROW(s.dim(-3), std::out_of_range);
}

TEST(Shape, ZeroDimGivesZeroNumel) {
  const Shape s{4, 0, 3};
  EXPECT_EQ(s.numel(), 0);
}

TEST(Shape, NegativeDimRejected) {
  // -1 is the legal inference placeholder, anything below is rejected.
  EXPECT_THROW(Shape({2, -2}), Error);
  EXPECT_NO_THROW(Shape({2, -1}));
  EXPECT_THROW(Shape({2, -1}).numel(), Error);  // unresolved placeholder
}

TEST(Shape, StridesAreRowMajor) {
  const Shape s{2, 3, 4};
  const auto strides = s.strides();
  ASSERT_EQ(strides.size(), 3u);
  EXPECT_EQ(strides[0], 12);
  EXPECT_EQ(strides[1], 4);
  EXPECT_EQ(strides[2], 1);
}

TEST(Shape, Equality) {
  EXPECT_EQ(Shape({2, 3}), Shape({2, 3}));
  EXPECT_NE(Shape({2, 3}), Shape({3, 2}));
  EXPECT_NE(Shape({2, 3}), Shape({2, 3, 1}));
}

TEST(Shape, Str) {
  EXPECT_EQ(Shape({5}).str(), "[5]");
  EXPECT_EQ(Shape({1, 2}).str(), "[1, 2]");
}

}  // namespace
}  // namespace fademl
