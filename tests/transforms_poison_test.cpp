// Tests for the image transforms (rotation, translation, occlusion,
// trigger stamping) and the training-time poisoning subsystem (label
// flipping, BadNets backdoor) — the paper's Fig. 1 "Training Data
// Poisoning" branch.

#include <gtest/gtest.h>

#include "fademl/data/transforms.hpp"
#include "fademl/nn/optimizer.hpp"
#include "fademl/nn/trainer.hpp"
#include "fademl/nn/vggnet.hpp"
#include "fademl/poison/poison.hpp"
#include "fademl/tensor/error.hpp"
#include "fademl/tensor/ops.hpp"
#include "test_fixtures.hpp"

namespace fademl {
namespace {

Tensor checker_image(int64_t size) {
  Tensor img = Tensor::zeros(Shape{3, size, size});
  for (int64_t c = 0; c < 3; ++c) {
    for (int64_t y = 0; y < size; ++y) {
      for (int64_t x = 0; x < size; ++x) {
        img.at({c, y, x}) = static_cast<float>((y / 2 + x / 2) % 2);
      }
    }
  }
  return img;
}

TEST(Transforms, RotateZeroIsIdentity) {
  const Tensor img = checker_image(8);
  const Tensor rotated = data::rotate_image(img, 0.0f);
  EXPECT_LT(norm_linf(sub(rotated, img)), 1e-6f);
}

TEST(Transforms, Rotate360RoundtripsApproximately) {
  const Tensor img = data::canonical_sample(14, 16);
  const Tensor rotated = data::rotate_image(img, 360.0f);
  EXPECT_LT(norm_linf(sub(rotated, img)), 1e-4f);
}

TEST(Transforms, Rotate90MovesKnownPixel) {
  // A single bright pixel right of center must move below center under a
  // +90 degree rotation (y grows down, so x->y).
  Tensor img = Tensor::zeros(Shape{1, 9, 9});
  img.at({0, 4, 7}) = 1.0f;
  const Tensor rotated = data::rotate_image(img, 90.0f);
  EXPECT_GT(rotated.at({0, 7, 4}) + rotated.at({0, 1, 4}), 0.5f);
  EXPECT_LT(rotated.at({0, 4, 7}), 0.5f);
}

TEST(Transforms, SmallRotationKeepsImageClose) {
  const Tensor img = data::canonical_sample(1, 32);
  const Tensor rotated = data::rotate_image(img, 5.0f);
  // Correlated but not identical.
  const float rel = norm_l2(sub(rotated, img)) / norm_l2(img);
  EXPECT_GT(rel, 0.005f);
  EXPECT_LT(rel, 0.35f);
}

TEST(Transforms, TranslateShiftsContent) {
  Tensor img = Tensor::zeros(Shape{1, 8, 8});
  img.at({0, 4, 4}) = 1.0f;
  const Tensor shifted = data::translate_image(img, 2.0f, -1.0f);
  EXPECT_GT(shifted.at({0, 3, 6}), 0.9f);
  EXPECT_LT(shifted.at({0, 4, 4}), 0.1f);
}

TEST(Transforms, OcclusionPaintsExactlyOneBox) {
  Rng rng(3);
  const Tensor img = Tensor::full(Shape{3, 10, 10}, 0.5f);
  const Tensor occluded = data::occlude_image(img, 4, 0.0f, rng);
  int64_t changed = 0;
  for (int64_t i = 0; i < img.numel(); ++i) {
    if (occluded.at(i) != 0.5f) {
      ++changed;
    }
  }
  EXPECT_EQ(changed, 3 * 4 * 4);
  EXPECT_THROW(data::occlude_image(img, 11, 0.0f, rng), Error);
}

TEST(Transforms, StampPatchSetsExactPixels) {
  const Tensor img = Tensor::zeros(Shape{3, 8, 8});
  const Tensor stamped = data::stamp_patch(img, 1, 2, 3, 1.0f, 0.5f, 0.25f);
  EXPECT_FLOAT_EQ(stamped.at({0, 1, 2}), 1.0f);
  EXPECT_FLOAT_EQ(stamped.at({1, 3, 4}), 0.5f);
  EXPECT_FLOAT_EQ(stamped.at({2, 2, 3}), 0.25f);
  EXPECT_FLOAT_EQ(stamped.at({0, 0, 0}), 0.0f);
  EXPECT_THROW(data::stamp_patch(img, 6, 6, 3, 1, 1, 1), Error);
}

data::Dataset small_dataset(int per_class, int64_t image_size) {
  data::Dataset d;
  d.num_classes = 43;
  Rng rng(5);
  for (int64_t cls : {14, 3, 1, 5}) {
    for (int i = 0; i < per_class; ++i) {
      d.images.push_back(data::render_sign(
          cls, data::RenderParams::randomize(rng, 0.02f), image_size));
      d.labels.push_back(cls);
    }
  }
  return d;
}

TEST(LabelFlip, FlipsRoughlyTheRequestedFraction) {
  data::Dataset d = small_dataset(25, 8);
  const std::vector<int64_t> original = d.labels;
  Rng rng(7);
  const poison::PoisonReport report = poison::flip_labels(d, 0.3f, rng);
  EXPECT_EQ(report.total, 100);
  EXPECT_GT(report.poisoned, 15);
  EXPECT_LT(report.poisoned, 45);
  int64_t changed = 0;
  for (size_t i = 0; i < d.labels.size(); ++i) {
    if (d.labels[i] != original[i]) {
      ++changed;
      EXPECT_GE(d.labels[i], 0);
      EXPECT_LT(d.labels[i], 43);
    }
  }
  EXPECT_EQ(changed, report.poisoned);  // every flip is a real change
}

TEST(LabelFlip, ZeroFractionIsNoOp) {
  data::Dataset d = small_dataset(5, 8);
  const std::vector<int64_t> original = d.labels;
  Rng rng(8);
  const poison::PoisonReport report = poison::flip_labels(d, 0.0f, rng);
  EXPECT_EQ(report.poisoned, 0);
  EXPECT_EQ(d.labels, original);
  EXPECT_THROW(poison::flip_labels(d, 1.5f, rng), Error);
}

TEST(Backdoor, ImplantStampsAndRelabels) {
  data::Dataset d = small_dataset(25, 16);
  poison::BackdoorConfig config;
  config.target_class = 3;
  config.fraction = 0.2f;
  Rng rng(9);
  const poison::PoisonReport report = poison::implant_backdoor(d, config, rng);
  EXPECT_GT(report.poisoned, 5);
  EXPECT_LT(report.poisoned, 40);
  // Every poisoned sample carries the trigger color and the target label.
  int64_t with_trigger = 0;
  for (size_t i = 0; i < d.images.size(); ++i) {
    const bool trigger =
        d.images[i].at({0, config.y, config.x}) == config.r &&
        d.images[i].at({2, config.y, config.x}) == config.b;
    if (trigger) {
      ++with_trigger;
      EXPECT_EQ(d.labels[i], config.target_class);
    }
  }
  EXPECT_EQ(with_trigger, report.poisoned);
}

TEST(Backdoor, TrainedModelLearnsTheTrigger) {
  // Train a tiny model on a 4-class backdoored set; the trigger must
  // dominate: triggered inputs of other classes go to the target.
  data::Dataset train = small_dataset(20, 16);
  poison::BackdoorConfig config;
  config.target_class = 3;
  config.fraction = 0.25f;
  config.patch_size = 4;
  Rng rng(11);
  poison::implant_backdoor(train, config, rng);

  Rng model_rng(13);
  nn::VggConfig vgg = nn::VggConfig::tiny(43, 16);
  vgg.channels = {6, 12};
  const auto model = nn::make_vggnet(vgg, model_rng);
  nn::SGD sgd(model->named_parameters(), {.lr = 0.05f});
  nn::Trainer::Config tc;
  tc.epochs = 25;
  nn::Trainer trainer(*model, sgd, tc);
  Rng train_rng(15);
  trainer.fit(train.images, train.labels, train_rng);

  // Clean behaviour mostly intact...
  data::Dataset clean_eval = small_dataset(5, 16);
  const nn::EvalResult clean =
      nn::evaluate(*model, clean_eval.images, clean_eval.labels);
  EXPECT_GT(clean.top1, 0.6);
  // ...but the trigger flips other classes to the target.
  const double asr = poison::backdoor_success_rate(*model, clean_eval, config);
  EXPECT_GT(asr, 0.7);
}

TEST(Backdoor, ValidatesConfig) {
  data::Dataset d = small_dataset(2, 16);
  poison::BackdoorConfig config;
  config.target_class = 99;
  Rng rng(1);
  EXPECT_THROW(poison::implant_backdoor(d, config, rng), Error);
  config.target_class = 3;
  config.fraction = -0.1f;
  EXPECT_THROW(poison::implant_backdoor(d, config, rng), Error);
}

}  // namespace
}  // namespace fademl
