#include "fademl/tensor/ops.hpp"

#include <cmath>

#include <gtest/gtest.h>

#include "fademl/parallel/parallel.hpp"
#include "fademl/tensor/error.hpp"
#include "fademl/tensor/random.hpp"
#include "reference_kernels.hpp"

namespace fademl {
namespace {

TEST(ElementwiseOps, Arithmetic) {
  const Tensor a{1.0f, 2.0f, 3.0f};
  const Tensor b{4.0f, 5.0f, 6.0f};
  EXPECT_FLOAT_EQ(add(a, b).at(0), 5.0f);
  EXPECT_FLOAT_EQ(sub(a, b).at(1), -3.0f);
  EXPECT_FLOAT_EQ(mul(a, b).at(2), 18.0f);
  EXPECT_FLOAT_EQ(div(b, a).at(1), 2.5f);
  EXPECT_FLOAT_EQ(add(a, 1.0f).at(0), 2.0f);
  EXPECT_FLOAT_EQ(mul(a, 2.0f).at(2), 6.0f);
}

TEST(ElementwiseOps, ShapeMismatchThrows) {
  EXPECT_THROW(add(Tensor::ones(Shape{2}), Tensor::ones(Shape{3})), Error);
  EXPECT_THROW(add(Tensor::ones(Shape{2, 3}), Tensor::ones(Shape{3, 2})),
               Error);
}

TEST(ElementwiseOps, Transforms) {
  const Tensor a{-1.0f, 0.0f, 2.0f};
  EXPECT_FLOAT_EQ(neg(a).at(0), 1.0f);
  EXPECT_FLOAT_EQ(abs(a).at(0), 1.0f);
  EXPECT_FLOAT_EQ(relu(a).at(0), 0.0f);
  EXPECT_FLOAT_EQ(relu(a).at(2), 2.0f);
  EXPECT_FLOAT_EQ(sign(a).at(0), -1.0f);
  EXPECT_FLOAT_EQ(sign(a).at(1), 0.0f);
  EXPECT_FLOAT_EQ(sign(a).at(2), 1.0f);
  EXPECT_NEAR(exp(a).at(2), std::exp(2.0f), 1e-5f);
  EXPECT_NEAR(tanh(a).at(2), std::tanh(2.0f), 1e-6f);
  EXPECT_FLOAT_EQ(clamp(a, -0.5f, 1.0f).at(0), -0.5f);
  EXPECT_FLOAT_EQ(clamp(a, -0.5f, 1.0f).at(2), 1.0f);
  EXPECT_FLOAT_EQ(map(a, [](float v) { return v * 10.0f; }).at(2), 20.0f);
}

TEST(Reductions, SumMeanMinMax) {
  const Tensor a{1.0f, -2.0f, 4.0f, 5.0f};
  EXPECT_FLOAT_EQ(sum(a), 8.0f);
  EXPECT_FLOAT_EQ(mean(a), 2.0f);
  EXPECT_FLOAT_EQ(min(a), -2.0f);
  EXPECT_FLOAT_EQ(max(a), 5.0f);
  EXPECT_EQ(argmax(a), 3);
}

TEST(Reductions, KahanSumIsAccurateOnLargeSets) {
  // 10^6 values of 0.1f: naive float accumulation drifts by ~1; Kahan stays
  // within a few ulps of 100000.
  Tensor big = Tensor::full(Shape{1000000}, 0.1f);
  EXPECT_NEAR(sum(big), 100000.0f, 0.5f);
}

TEST(Reductions, Norms) {
  const Tensor a{3.0f, -4.0f};
  EXPECT_FLOAT_EQ(norm_l2(a), 5.0f);
  EXPECT_FLOAT_EQ(norm_linf(a), 4.0f);
  EXPECT_FLOAT_EQ(dot(a, a), 25.0f);
}

TEST(TopK, OrdersByValueThenIndex) {
  const Tensor a{0.1f, 0.9f, 0.3f, 0.9f, 0.0f};
  const auto top = topk_indices(a, 3);
  ASSERT_EQ(top.size(), 3u);
  EXPECT_EQ(top[0], 1);  // ties broken by lower index first
  EXPECT_EQ(top[1], 3);
  EXPECT_EQ(top[2], 2);
}

TEST(TopK, RejectsBadArgs) {
  const Tensor a{1.0f, 2.0f};
  EXPECT_THROW(topk_indices(a, 3), Error);
  EXPECT_THROW(topk_indices(Tensor::ones(Shape{2, 2}), 1), Error);
}

TEST(Softmax, RowsSumToOne) {
  Rng rng(7);
  const Tensor logits = rng.normal_tensor(Shape{4, 10}, 0.0f, 3.0f);
  const Tensor p = softmax_rows(logits);
  for (int64_t r = 0; r < 4; ++r) {
    float s = 0.0f;
    for (int64_t c = 0; c < 10; ++c) {
      const float v = p.at({r, c});
      EXPECT_GT(v, 0.0f);
      s += v;
    }
    EXPECT_NEAR(s, 1.0f, 1e-5f);
  }
}

TEST(Softmax, StableUnderLargeLogits) {
  const Tensor logits{Shape{1, 3}, {1000.0f, 1001.0f, 999.0f}};
  const Tensor p = softmax_rows(logits);
  EXPECT_FALSE(std::isnan(p.at(0)));
  EXPECT_GT(p.at({0, 1}), p.at({0, 0}));
}

TEST(Softmax, LogSoftmaxMatchesLogOfSoftmax) {
  Rng rng(3);
  const Tensor logits = rng.normal_tensor(Shape{2, 5}, 0.0f, 2.0f);
  const Tensor lp = log_softmax_rows(logits);
  const Tensor p = softmax_rows(logits);
  for (int64_t i = 0; i < lp.numel(); ++i) {
    EXPECT_NEAR(lp.at(i), std::log(p.at(i)), 1e-4f);
  }
}

TEST(Matmul, KnownProduct) {
  const Tensor a{Shape{2, 3}, {1, 2, 3, 4, 5, 6}};
  const Tensor b{Shape{3, 2}, {7, 8, 9, 10, 11, 12}};
  const Tensor c = matmul(a, b);
  EXPECT_EQ(c.shape(), Shape({2, 2}));
  EXPECT_FLOAT_EQ(c.at({0, 0}), 58.0f);
  EXPECT_FLOAT_EQ(c.at({0, 1}), 64.0f);
  EXPECT_FLOAT_EQ(c.at({1, 0}), 139.0f);
  EXPECT_FLOAT_EQ(c.at({1, 1}), 154.0f);
}

TEST(Matmul, InnerDimMismatchThrows) {
  EXPECT_THROW(matmul(Tensor::ones(Shape{2, 3}), Tensor::ones(Shape{2, 3})),
               Error);
}

TEST(Matmul, Transpose2d) {
  const Tensor a{Shape{2, 3}, {1, 2, 3, 4, 5, 6}};
  const Tensor t = transpose2d(a);
  EXPECT_EQ(t.shape(), Shape({3, 2}));
  EXPECT_FLOAT_EQ(t.at({2, 1}), 6.0f);
  EXPECT_FLOAT_EQ(t.at({0, 1}), 4.0f);
}

struct ConvCase {
  int64_t n, c, h, w, o, k, stride, pad;
};

class ConvParamTest : public ::testing::TestWithParam<ConvCase> {};

TEST_P(ConvParamTest, MatchesNaiveReferenceAtEveryThreadCount) {
  const ConvCase cc = GetParam();
  Rng rng(11);
  const Tensor input = rng.normal_tensor(Shape{cc.n, cc.c, cc.h, cc.w}, 0, 1);
  const Tensor weight =
      rng.normal_tensor(Shape{cc.o, cc.c, cc.k, cc.k}, 0, 1);
  const Tensor bias = rng.normal_tensor(Shape{cc.o}, 0, 1);
  Conv2dSpec spec;
  spec.kernel_h = cc.k;
  spec.kernel_w = cc.k;
  spec.stride = cc.stride;
  spec.pad = cc.pad;
  const Tensor ref = testing::conv2d_reference(input, weight, bias, spec);
  Tensor single_thread;
  for (int threads : {1, 2, 7}) {
    parallel::set_num_threads(threads);
    const Tensor fast = conv2d(input, weight, bias, spec);
    ASSERT_EQ(fast.shape(), ref.shape());
    for (int64_t i = 0; i < fast.numel(); ++i) {
      // im2col + i-k-j reorders the reduction vs the definition-order
      // reference: accumulation-order tolerance, not exact equality.
      EXPECT_NEAR(fast.at(i), ref.at(i), 1e-3f)
          << "at flat index " << i << " with " << threads << " threads";
    }
    if (threads == 1) {
      single_thread = fast.clone();
    } else {
      // Against the production kernel's own 1-thread run the contract is
      // stricter: chunking is thread-count independent, so bitwise equal.
      EXPECT_TRUE(testing::bitwise_equal(fast, single_thread))
          << "thread count " << threads << " changed conv2d bits";
    }
  }
  parallel::set_num_threads(0);
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, ConvParamTest,
    ::testing::Values(ConvCase{1, 1, 5, 5, 1, 3, 1, 1},
                      ConvCase{2, 3, 8, 8, 4, 3, 1, 1},
                      ConvCase{1, 2, 7, 9, 3, 3, 2, 1},
                      ConvCase{1, 3, 6, 6, 2, 5, 1, 2},
                      ConvCase{2, 1, 4, 4, 2, 1, 1, 0},
                      ConvCase{1, 4, 10, 6, 5, 3, 3, 1}));

// Degenerate geometries: 1x1 images, kernel == image (one output pixel),
// stride > 1 with no padding, and a batch wider than any chunk grain —
// the shapes most likely to expose off-by-one chunking at the borders.
INSTANTIATE_TEST_SUITE_P(
    DegenerateGeometries, ConvParamTest,
    ::testing::Values(ConvCase{1, 1, 1, 1, 1, 1, 1, 0},   // 1x1 image
                      ConvCase{1, 2, 5, 5, 3, 5, 1, 0},   // kernel == image
                      ConvCase{2, 3, 7, 7, 4, 3, 2, 0},   // stride 2, pad 0
                      ConvCase{9, 2, 6, 6, 3, 3, 1, 1},   // batch > grain
                      ConvCase{1, 1, 4, 4, 1, 4, 4, 0})); // window = image

TEST(Im2col, AdjointProperty) {
  // <im2col(x), y> == <x, col2im(y)> — col2im is the exact adjoint.
  Rng rng(5);
  const Tensor x = rng.normal_tensor(Shape{2, 6, 5}, 0, 1);
  Conv2dSpec spec;
  spec.kernel_h = 3;
  spec.kernel_w = 3;
  spec.stride = 1;
  spec.pad = 1;
  const Tensor cols = im2col(x, spec);
  const Tensor y = rng.normal_tensor(cols.shape(), 0, 1);
  const float lhs = dot(cols, y);
  const Tensor back = col2im(y, 2, 6, 5, spec);
  const float rhs = dot(x, back);
  EXPECT_NEAR(lhs, rhs, std::fabs(lhs) * 1e-4f + 1e-3f);
}

TEST(MaxPool, ValuesAndArgmax) {
  const Tensor input{Shape{1, 1, 4, 4},
                     {1, 2, 3, 4,
                      5, 6, 7, 8,
                      9, 10, 11, 12,
                      13, 14, 15, 16}};
  std::vector<int64_t> argmax;
  const Tensor out = maxpool2d(input, 2, &argmax);
  EXPECT_EQ(out.shape(), Shape({1, 1, 2, 2}));
  EXPECT_FLOAT_EQ(out.at({0, 0, 0, 0}), 6.0f);
  EXPECT_FLOAT_EQ(out.at({0, 0, 1, 1}), 16.0f);
  ASSERT_EQ(argmax.size(), 4u);
  EXPECT_EQ(argmax[0], 5);
  EXPECT_EQ(argmax[3], 15);
}

TEST(MaxPool, RequiresDivisibleDims) {
  EXPECT_THROW(maxpool2d(Tensor::ones(Shape{1, 1, 5, 4}), 2), Error);
}

TEST(Conv2dSpec, OutputGeometry) {
  Conv2dSpec spec;
  spec.kernel_h = 3;
  spec.kernel_w = 3;
  spec.stride = 1;
  spec.pad = 1;
  EXPECT_EQ(spec.out_size(32, 3), 32);  // same-padding 3x3
  spec.stride = 2;
  EXPECT_EQ(spec.out_size(32, 3), 16);
}

}  // namespace
}  // namespace fademl
