// Tests for the extended pre-processing stages: grayscale, normalization,
// histogram equalization, shuffling (the paper's §I-C list), plus feature
// squeezing (ref [10]) and the bilateral ablation filter.

#include <cmath>
#include <set>

#include <gtest/gtest.h>

#include "fademl/filters/extra.hpp"
#include "fademl/tensor/error.hpp"
#include "fademl/tensor/ops.hpp"
#include "fademl/tensor/random.hpp"

namespace fademl::filters {
namespace {

Tensor random_image(uint64_t seed, int64_t h = 10, int64_t w = 8) {
  Rng rng(seed);
  return rng.uniform_tensor(Shape{3, h, w}, 0.0f, 1.0f);
}

TEST(Grayscale, ChannelsBecomeEqualAndLumaIsCorrect) {
  const GrayscaleFilter f;
  const Tensor x = random_image(1);
  const Tensor y = f.apply(x);
  const int64_t plane = x.dim(1) * x.dim(2);
  for (int64_t i = 0; i < plane; ++i) {
    EXPECT_FLOAT_EQ(y.at(i), y.at(plane + i));
    EXPECT_FLOAT_EQ(y.at(i), y.at(2 * plane + i));
    const float expected = 0.299f * x.at(i) + 0.587f * x.at(plane + i) +
                           0.114f * x.at(2 * plane + i);
    EXPECT_NEAR(y.at(i), expected, 1e-6f);
  }
}

TEST(Grayscale, VjpIsExactAdjoint) {
  const GrayscaleFilter f;
  const Tensor x = random_image(2);
  const Tensor y = random_image(3);
  EXPECT_NEAR(dot(f.apply(x), y), dot(x, f.vjp(x, y)), 1e-4f);
  EXPECT_TRUE(f.is_linear());
}

TEST(Grayscale, RejectsNonRgb) {
  const GrayscaleFilter f;
  EXPECT_THROW(f.apply(Tensor::ones(Shape{1, 4, 4})), Error);
}

TEST(Normalize, AffineMapAndAdjoint) {
  const NormalizeFilter f(0.5f, 2.0f, 0.1f);
  const Tensor x = random_image(4);
  const Tensor y = f.apply(x);
  EXPECT_NEAR(y.at(5), (x.at(5) - 0.5f) * 2.0f + 0.1f, 1e-6f);
  const Tensor g = random_image(5);
  EXPECT_NEAR(dot(f.apply(x), g), dot(x, f.vjp(x, g)) +
                  // affine part: <offset - mean*scale, g> is constant in x
                  sum(mul(g, 0.1f - 0.5f * 2.0f)),
              1e-3f);
  EXPECT_THROW(NormalizeFilter(0.5f, 0.0f, 0.0f), Error);
}

TEST(Normalize, DefaultIsIdentityAroundHalf) {
  const NormalizeFilter f;
  const Tensor x = random_image(6);
  EXPECT_LT(norm_linf(sub(f.apply(x), x)), 1e-6f);
}

TEST(HistEq, OutputCoversFullRangeOnLowContrastInput) {
  // A low-contrast image (all mass in [0.4, 0.6]) must be stretched.
  Rng rng(7);
  const Tensor x = rng.uniform_tensor(Shape{3, 16, 16}, 0.4f, 0.6f);
  const HistogramEqualizationFilter f;
  const Tensor y = f.apply(x);
  EXPECT_LT(min(y), 0.05f);
  EXPECT_GT(max(y), 0.95f);
  EXPECT_GE(min(y), 0.0f);
  EXPECT_LE(max(y), 1.0f);
}

TEST(HistEq, MonotoneInPixelValues) {
  // Equalization must preserve per-channel ordering.
  Rng rng(8);
  const Tensor x = rng.uniform_tensor(Shape{1, 8, 8}, 0.0f, 1.0f);
  const HistogramEqualizationFilter f;
  const Tensor y = f.apply(x);
  for (int64_t i = 0; i < x.numel(); ++i) {
    for (int64_t j = 0; j < x.numel(); ++j) {
      if (x.at(i) < x.at(j) - 1e-2f) {
        EXPECT_LE(y.at(i), y.at(j) + 1e-6f);
      }
    }
  }
}

TEST(HistEq, ConstantChannelIsLeftAlone) {
  const Tensor x = Tensor::full(Shape{3, 6, 6}, 0.3f);
  const HistogramEqualizationFilter f;
  const Tensor y = f.apply(x);
  EXPECT_LT(norm_linf(sub(y, x)), 1e-6f);
}

TEST(BitDepth, QuantizesToExactLevels) {
  const BitDepthFilter f(2);  // levels {0, 1/3, 2/3, 1}
  const Tensor x{0.0f, 0.1f, 0.4f, 0.6f, 0.9f, 1.0f};
  const Tensor x3 = x.reshape(Shape{1, 2, 3});
  const Tensor y = f.apply(x3);
  const std::set<float> allowed = {0.0f, 1.0f / 3.0f, 2.0f / 3.0f, 1.0f};
  for (int64_t i = 0; i < y.numel(); ++i) {
    bool ok = false;
    for (float lvl : allowed) {
      if (std::fabs(y.at(i) - lvl) < 1e-6f) {
        ok = true;
      }
    }
    EXPECT_TRUE(ok) << y.at(i);
  }
  EXPECT_EQ(f.name(), "BitDepth(2)");
  EXPECT_THROW(BitDepthFilter(0), Error);
  EXPECT_THROW(BitDepthFilter(9), Error);
}

TEST(BitDepth, EightBitsIsNearIdentity) {
  const BitDepthFilter f(8);
  const Tensor x = random_image(9);
  EXPECT_LT(norm_linf(sub(f.apply(x), x)), 1.0f / 255.0f + 1e-6f);
}

TEST(Bilateral, PreservesStepEdgeBetterThanGaussian) {
  // Step image: bilateral must keep the edge sharper than a Gaussian of
  // equal spatial support.
  Tensor step = Tensor::zeros(Shape{1, 12, 12});
  for (int64_t y = 0; y < 12; ++y) {
    for (int64_t x = 6; x < 12; ++x) {
      step.at({0, y, x}) = 1.0f;
    }
  }
  const BilateralFilter bilateral(1.0f, 0.1f);
  const GaussianFilter gaussian(1.0f);
  const Tensor b = bilateral.apply(step);
  const Tensor g = gaussian.apply(step);
  // Edge contrast at the step (columns 5 and 6, middle row).
  const float edge_b = b.at({0, 6, 6}) - b.at({0, 6, 5});
  const float edge_g = g.at({0, 6, 6}) - g.at({0, 6, 5});
  EXPECT_GT(edge_b, edge_g);
  EXPECT_THROW(BilateralFilter(0.0f, 0.1f), Error);
}

TEST(Bilateral, SmoothsFlatNoise) {
  Rng rng(10);
  const Tensor base = Tensor::full(Shape{1, 12, 12}, 0.5f);
  const Tensor noisy = add(base, rng.normal_tensor(base.shape(), 0, 0.03f));
  const BilateralFilter f(1.5f, 0.2f);
  const Tensor y = f.apply(noisy);
  EXPECT_LT(norm_l2(sub(y, base)), norm_l2(sub(noisy, base)));
}

TEST(Shuffle, IsAPermutationWithExactAdjoint) {
  const ShuffleFilter f(123);
  const Tensor x = random_image(11);
  const Tensor y = f.apply(x);
  // Multiset of values preserved per channel.
  const int64_t plane = x.dim(1) * x.dim(2);
  for (int64_t ch = 0; ch < 3; ++ch) {
    std::multiset<float> before;
    std::multiset<float> after;
    for (int64_t i = 0; i < plane; ++i) {
      before.insert(x.at(ch * plane + i));
      after.insert(y.at(ch * plane + i));
    }
    EXPECT_EQ(before, after);
  }
  // Adjoint property <Ax, y> == <x, A^T y>.
  const Tensor g = random_image(12);
  EXPECT_NEAR(dot(f.apply(x), g), dot(x, f.vjp(x, g)), 1e-4f);
  // Deterministic in the seed, different across seeds.
  EXPECT_LT(norm_linf(sub(ShuffleFilter(123).apply(x), y)), 1e-6f);
  EXPECT_GT(norm_l2(sub(ShuffleFilter(124).apply(x), y)), 0.1f);
}

TEST(NonLinearExtras, UseBpdaVjp) {
  const Tensor x = random_image(13);
  const Tensor g = random_image(14);
  for (const FilterPtr& f :
       {make_histeq(), make_bit_depth(4), make_bilateral(1.0f, 0.1f)}) {
    EXPECT_FALSE(f->is_linear()) << f->name();
    EXPECT_LT(norm_linf(sub(f->vjp(x, g), g)), 1e-6f) << f->name();
  }
}

TEST(Factories, ProduceExpectedNames) {
  EXPECT_EQ(make_grayscale()->name(), "Grayscale");
  EXPECT_EQ(make_histeq()->name(), "HistEq");
  EXPECT_EQ(make_bit_depth(3)->name(), "BitDepth(3)");
  EXPECT_EQ(make_shuffle()->name(), "Shuffle");
  EXPECT_EQ(make_normalize()->name(), "Normalize(m0.50,s1.00)");
}

TEST(ExtraFilters, ComposeInChains) {
  const FilterChain chain(
      {make_grayscale(), make_lap(4), make_bit_depth(5)});
  const Tensor x = random_image(15);
  const Tensor y = chain.apply(x);
  EXPECT_EQ(y.shape(), x.shape());
  EXPECT_FALSE(chain.is_linear());  // bit-depth member
  EXPECT_EQ(chain.name(), "Grayscale+LAP(4)+BitDepth(5)");
}

TEST(ParseFilter, BuildsEverySpecForm) {
  EXPECT_EQ(parse_filter("none")->name(), "NoFilter");
  EXPECT_EQ(parse_filter("identity")->name(), "NoFilter");
  EXPECT_EQ(parse_filter("lap32")->name(), "LAP(32)");
  EXPECT_EQ(parse_filter("lar3")->name(), "LAR(3)");
  EXPECT_EQ(parse_filter("gauss1.5")->name(), "Gauss(1.50)");
  EXPECT_EQ(parse_filter("median2")->name(), "Median(2)");
  EXPECT_EQ(parse_filter("grayscale")->name(), "Grayscale");
  EXPECT_EQ(parse_filter("histeq")->name(), "HistEq");
  EXPECT_EQ(parse_filter("bits4")->name(), "BitDepth(4)");
}

TEST(ParseFilter, BuildsChains) {
  EXPECT_EQ(parse_filter("grayscale+lap8")->name(), "Grayscale+LAP(8)");
  EXPECT_EQ(parse_filter("lap4+median1+bits5")->name(),
            "LAP(4)+Median(1)+BitDepth(5)");
}

TEST(ParseFilter, RejectsMalformedSpecs) {
  EXPECT_THROW(parse_filter(""), Error);
  EXPECT_THROW(parse_filter("bogus"), Error);
  EXPECT_THROW(parse_filter("lap"), Error);
  EXPECT_THROW(parse_filter("lapx"), Error);
  EXPECT_THROW(parse_filter("lap8+"), Error);
  EXPECT_THROW(parse_filter("+lap8"), Error);
  EXPECT_THROW(parse_filter("lap0"), Error);  // constructor validation
}

TEST(ParseFilter, BuildsV2SpecForms) {
  EXPECT_EQ(parse_filter("dct50")->name(), "DctQuant(50)");
  EXPECT_EQ(parse_filter("normalize")->name(), "Normalize(m0.50,s1.00)");
  EXPECT_EQ(parse_filter("bilateral")->name(), "Bilateral(1.5,0.20)");
  EXPECT_EQ(parse_filter("shuffle")->name(), "Shuffle");
  EXPECT_EQ(parse_filter("shuffle7")->name(), "Shuffle");
  EXPECT_EQ(parse_filter("dct50+lap8")->name(), "DctQuant(50)+LAP(8)");
}

// Regression: a bare "gauss" used to parse as sigma 0.0 because the strtof
// result was never checked for consumed characters, and "inf"/"nan"
// suffixes sailed through as valid sigmas.
TEST(ParseFilter, RejectsBareAndNonFiniteGauss) {
  EXPECT_THROW(parse_filter("gauss"), Error);
  EXPECT_THROW(parse_filter("gaussinf"), Error);
  EXPECT_THROW(parse_filter("gaussnan"), Error);
  EXPECT_THROW(parse_filter("gauss-1"), Error);
  EXPECT_EQ(parse_filter("gauss0.8")->name(), "Gauss(0.80)");
}

// Regression: integer suffixes ignored strtol's ERANGE (an overflowing
// parameter silently truncated to LONG_MAX) and accepted negatives, which
// individual filter constructors were trusted to reject.
TEST(ParseFilter, RejectsOverflowingAndNegativeIntSuffixes) {
  EXPECT_THROW(parse_filter("lap99999999999999999999"), Error);
  EXPECT_THROW(parse_filter("lap-3"), Error);
  EXPECT_THROW(parse_filter("median99999999999999999999"), Error);
  EXPECT_THROW(parse_filter("dct999999999999999999999"), Error);
  EXPECT_THROW(parse_filter("dct"), Error);
  EXPECT_THROW(parse_filter("dct0"), Error);    // constructor validation
  EXPECT_THROW(parse_filter("dct101"), Error);  // constructor validation
}

// ---- JPEG-lite DCT quantization --------------------------------------------

TEST(DctQuant, RejectsOutOfRangeQuality) {
  EXPECT_THROW(DctQuantFilter(0), Error);
  EXPECT_THROW(DctQuantFilter(101), Error);
}

TEST(DctQuant, OutputStaysInRangeAndPreservesShape) {
  const DctQuantFilter f(50);
  // Extents that are not multiples of the 8x8 block exercise the
  // edge-replicated partial blocks.
  const Tensor x = random_image(21, 12, 10);
  const Tensor y = f.apply(x);
  EXPECT_EQ(y.shape(), x.shape());
  for (int64_t i = 0; i < y.numel(); ++i) {
    EXPECT_GE(y.at(i), 0.0f);
    EXPECT_LE(y.at(i), 1.0f);
  }
}

TEST(DctQuant, HigherQualityDistortsLess) {
  const Tensor x = random_image(22, 16, 16);
  const float d95 = norm_linf(sub(DctQuantFilter(95).apply(x), x));
  const float d10 = norm_linf(sub(DctQuantFilter(10).apply(x), x));
  EXPECT_LT(d95, d10);
}

TEST(DctQuant, NonLinearWithBpdaVjp) {
  const DctQuantFilter f(50);
  EXPECT_FALSE(f.is_linear());
  const Tensor x = random_image(23);
  const Tensor g = random_image(24);
  EXPECT_LT(norm_linf(sub(f.vjp(x, g), g)), 1e-6f);
}

TEST(FeatureSqueeze, IsTheBitDepthMedianChain) {
  const FilterPtr f = make_feature_squeeze();
  EXPECT_EQ(f->name(), "BitDepth(5)+Median(1)");
  EXPECT_EQ(parse_filter("bits5+median1")->name(), f->name());
}

}  // namespace
}  // namespace fademl::filters
