#include "fademl/tensor/tensor.hpp"

#include <gtest/gtest.h>

#include "fademl/tensor/error.hpp"

namespace fademl {
namespace {

TEST(Tensor, DefaultIsUndefined) {
  const Tensor t;
  EXPECT_FALSE(t.defined());
  EXPECT_EQ(t.numel(), 0);
  EXPECT_THROW(t.data(), Error);
}

TEST(Tensor, FillConstructor) {
  const Tensor t{Shape{2, 3}, 1.5f};
  EXPECT_EQ(t.numel(), 6);
  for (int64_t i = 0; i < 6; ++i) {
    EXPECT_FLOAT_EQ(t.at(i), 1.5f);
  }
}

TEST(Tensor, ValueConstructorChecksCount) {
  EXPECT_THROW(Tensor(Shape{2, 2}, std::vector<float>{1.0f, 2.0f}), Error);
}

TEST(Tensor, InitializerList1D) {
  const Tensor t{1.0f, 2.0f, 3.0f};
  EXPECT_EQ(t.shape(), Shape({3}));
  EXPECT_FLOAT_EQ(t.at(1), 2.0f);
}

TEST(Tensor, Factories) {
  EXPECT_FLOAT_EQ(Tensor::zeros(Shape{4}).at(2), 0.0f);
  EXPECT_FLOAT_EQ(Tensor::ones(Shape{4}).at(3), 1.0f);
  EXPECT_FLOAT_EQ(Tensor::full(Shape{2}, 7.0f).at(0), 7.0f);
  EXPECT_FLOAT_EQ(Tensor::scalar(2.5f).item(), 2.5f);
  const Tensor r = Tensor::arange(5);
  EXPECT_FLOAT_EQ(r.at(4), 4.0f);
}

TEST(Tensor, MultiDimIndexing) {
  Tensor t = Tensor::zeros(Shape{2, 3});
  t.at({1, 2}) = 9.0f;
  EXPECT_FLOAT_EQ(t.at(5), 9.0f);
  EXPECT_FLOAT_EQ(t.at({1, 2}), 9.0f);
  EXPECT_THROW(t.at({2, 0}), Error);
  EXPECT_THROW(t.at({0}), Error);
}

TEST(Tensor, ItemRequiresSingleElement) {
  EXPECT_THROW(Tensor::zeros(Shape{2}).item(), Error);
  EXPECT_FLOAT_EQ(Tensor::zeros(Shape{1, 1}).item(), 0.0f);
}

TEST(Tensor, CopyIsShallowCloneIsDeep) {
  Tensor a = Tensor::zeros(Shape{3});
  Tensor b = a;            // shallow
  Tensor c = a.clone();    // deep
  a.at(0) = 5.0f;
  EXPECT_FLOAT_EQ(b.at(0), 5.0f);
  EXPECT_FLOAT_EQ(c.at(0), 0.0f);
  EXPECT_TRUE(a.shares_storage_with(b));
  EXPECT_FALSE(a.shares_storage_with(c));
}

TEST(Tensor, ReshapeSharesStorage) {
  Tensor a = Tensor::arange(6);
  Tensor b = a.reshape(Shape{2, 3});
  EXPECT_TRUE(a.shares_storage_with(b));
  EXPECT_FLOAT_EQ(b.at({1, 0}), 3.0f);
}

TEST(Tensor, ReshapeInfersDimension) {
  const Tensor a = Tensor::arange(12);
  EXPECT_EQ(a.reshape(Shape{3, -1}).shape(), Shape({3, 4}));
  EXPECT_EQ(a.reshape(Shape{-1}).shape(), Shape({12}));
  EXPECT_THROW(a.reshape(Shape{-1, -1}), Error);
  EXPECT_THROW(a.reshape(Shape{5, -1}), Error);
}

TEST(Tensor, ReshapeNumelMismatchThrows) {
  EXPECT_THROW(Tensor::arange(6).reshape(Shape{4}), Error);
}

TEST(Tensor, InPlaceMutators) {
  Tensor t = Tensor::ones(Shape{4});
  t.mul_(3.0f);
  EXPECT_FLOAT_EQ(t.at(0), 3.0f);
  t.add_(Tensor::ones(Shape{4}), 2.0f);
  EXPECT_FLOAT_EQ(t.at(1), 5.0f);
  t.clamp_(0.0f, 4.0f);
  EXPECT_FLOAT_EQ(t.at(2), 4.0f);
  t.apply_([](float v) { return v - 1.0f; });
  EXPECT_FLOAT_EQ(t.at(3), 3.0f);
  t.zero_();
  EXPECT_FLOAT_EQ(t.at(0), 0.0f);
}

TEST(Tensor, ClampRejectsInvertedRange) {
  Tensor t = Tensor::ones(Shape{2});
  EXPECT_THROW(t.clamp_(1.0f, 0.0f), Error);
}

TEST(Tensor, CopyFromAcrossShapes) {
  Tensor dst = Tensor::zeros(Shape{2, 2});
  dst.copy_from(Tensor::arange(4));
  EXPECT_FLOAT_EQ(dst.at({1, 1}), 3.0f);
  EXPECT_THROW(dst.copy_from(Tensor::arange(5)), Error);
}

TEST(Tensor, StrTruncates) {
  const Tensor t = Tensor::arange(100);
  const std::string s = t.str(4);
  EXPECT_NE(s.find("..."), std::string::npos);
}

}  // namespace
}  // namespace fademl
