// Tests for the extended NN stack: AvgPool2d, Dropout, BatchNorm2d
// (including their autograd ops), train/eval mode propagation, and the
// VGG-BN / dropout factory variants.

#include <cmath>

#include <gtest/gtest.h>

#include "fademl/autograd/ops.hpp"
#include "fademl/nn/checkpoint.hpp"
#include "fademl/nn/layers.hpp"
#include "fademl/nn/optimizer.hpp"
#include "fademl/nn/trainer.hpp"
#include "fademl/nn/vggnet.hpp"
#include "fademl/tensor/error.hpp"
#include "fademl/tensor/ops.hpp"

namespace fademl::nn {
namespace {

using autograd::Variable;

TEST(AvgPoolOp, ForwardAveragesWindows) {
  const Tensor input{Shape{1, 1, 2, 4},
                     {1, 2, 3, 4,
                      5, 6, 7, 8}};
  Variable x{input.clone()};
  const Variable y = autograd::avgpool2d(x, 2);
  EXPECT_EQ(y.value().shape(), Shape({1, 1, 1, 2}));
  EXPECT_FLOAT_EQ(y.value().at(0), 3.5f);   // (1+2+5+6)/4
  EXPECT_FLOAT_EQ(y.value().at(1), 5.5f);   // (3+4+7+8)/4
}

TEST(AvgPoolOp, GradientIsUniformShare) {
  Variable x{Tensor::arange(16).reshape(Shape{1, 1, 4, 4}).clone(), true};
  const Variable y = autograd::sum(autograd::avgpool2d(x, 2));
  y.backward();
  for (int64_t i = 0; i < 16; ++i) {
    EXPECT_FLOAT_EQ(x.grad().at(i), 0.25f);
  }
}

TEST(AvgPoolOp, GradCheckAgainstFiniteDifferences) {
  Rng rng(1);
  const Tensor x0 = rng.normal_tensor(Shape{2, 2, 4, 4}, 0, 1);
  Variable x{x0.clone(), true};
  const Variable y = autograd::sum(autograd::avgpool2d(x, 2));
  y.backward();
  const Tensor numeric = autograd::numerical_gradient(
      [](const Tensor& probe) {
        Variable v{probe.clone()};
        return autograd::sum(autograd::avgpool2d(v, 2)).value().item();
      },
      x0);
  for (int64_t i = 0; i < x0.numel(); ++i) {
    EXPECT_NEAR(x.grad().at(i), numeric.at(i), 1e-2f);
  }
}

TEST(MaskMulOp, ForwardAndGradientUseMask) {
  const Tensor mask{0.0f, 2.0f, 0.0f, 2.0f};
  Variable x{Tensor{1.0f, 1.0f, 1.0f, 1.0f}, true};
  const Variable y = autograd::sum(autograd::mask_mul(x, mask));
  EXPECT_FLOAT_EQ(y.value().item(), 4.0f);
  y.backward();
  EXPECT_FLOAT_EQ(x.grad().at(0), 0.0f);
  EXPECT_FLOAT_EQ(x.grad().at(1), 2.0f);
}

TEST(BatchNormOp, NormalizesPerChannel) {
  Rng rng(2);
  const Tensor x0 = rng.normal_tensor(Shape{4, 3, 5, 5}, 2.0f, 3.0f);
  Variable x{x0.clone()};
  Variable gamma{Tensor::ones(Shape{3})};
  Variable beta{Tensor::zeros(Shape{3})};
  Tensor mean;
  Tensor var;
  const Variable y =
      autograd::batchnorm2d(x, gamma, beta, 1e-5f, &mean, &var);
  // Output statistics per channel: ~0 mean, ~1 variance.
  const int64_t hw = 25;
  for (int64_t ch = 0; ch < 3; ++ch) {
    double m = 0.0;
    double v = 0.0;
    for (int64_t b = 0; b < 4; ++b) {
      for (int64_t i = 0; i < hw; ++i) {
        m += y.value().at((b * 3 + ch) * hw + i);
      }
    }
    m /= 4 * hw;
    for (int64_t b = 0; b < 4; ++b) {
      for (int64_t i = 0; i < hw; ++i) {
        const double d = y.value().at((b * 3 + ch) * hw + i) - m;
        v += d * d;
      }
    }
    v /= 4 * hw;
    EXPECT_NEAR(m, 0.0, 1e-4);
    EXPECT_NEAR(v, 1.0, 1e-2);
    // Reported statistics match the input's.
    EXPECT_NEAR(mean.at(ch), 2.0f, 0.6f);
    EXPECT_NEAR(var.at(ch), 9.0f, 2.5f);  // 100-sample variance estimate
  }
}

TEST(BatchNormOp, GradCheckAllInputs) {
  Rng rng(3);
  const Tensor x0 = rng.normal_tensor(Shape{3, 2, 3, 3}, 0, 1);
  const Tensor g0 = rng.uniform_tensor(Shape{2}, 0.5f, 1.5f);
  const Tensor b0 = rng.normal_tensor(Shape{2}, 0, 1);
  const auto loss_with = [&](const Tensor& xv, const Tensor& gv,
                             const Tensor& bv) {
    Variable x{xv.clone()};
    Variable g{gv.clone()};
    Variable b{bv.clone()};
    // Weighted sum (not plain sum: batchnorm's gradient w.r.t. x of a
    // constant-weight sum is ~0 by construction).
    Rng wr(9);
    static const Tensor w = wr.normal_tensor(Shape{3, 2, 3, 3}, 0, 1)
                                .reshape(Shape{3 * 2 * 3 * 3});
    return autograd::dot_const(
        autograd::reshape(autograd::batchnorm2d(x, g, b, 1e-3f),
                          Shape{3 * 2 * 3 * 3}),
        w);
  };

  // x gradient.
  {
    Variable x{x0.clone(), true};
    Variable g{g0.clone()};
    Variable b{b0.clone()};
    Rng wr(9);
    const Tensor w = wr.normal_tensor(Shape{3, 2, 3, 3}, 0, 1)
                         .reshape(Shape{3 * 2 * 3 * 3});
    const Variable y = autograd::dot_const(
        autograd::reshape(autograd::batchnorm2d(x, g, b, 1e-3f),
                          Shape{3 * 2 * 3 * 3}),
        w);
    y.backward();
    const Tensor numeric = autograd::numerical_gradient(
        [&](const Tensor& probe) {
          return loss_with(probe, g0, b0).value().item();
        },
        x0, 1e-2f);
    for (int64_t i = 0; i < x0.numel(); ++i) {
      EXPECT_NEAR(x.grad().at(i), numeric.at(i),
                  2e-2f * std::fabs(numeric.at(i)) + 5e-2f)
          << "x component " << i;
    }
  }
  // gamma / beta gradients.
  {
    Variable x{x0.clone()};
    Variable g{g0.clone(), true};
    Variable b{b0.clone(), true};
    Rng wr(9);
    const Tensor w = wr.normal_tensor(Shape{3, 2, 3, 3}, 0, 1)
                         .reshape(Shape{3 * 2 * 3 * 3});
    const Variable y = autograd::dot_const(
        autograd::reshape(autograd::batchnorm2d(x, g, b, 1e-3f),
                          Shape{3 * 2 * 3 * 3}),
        w);
    y.backward();
    const Tensor num_g = autograd::numerical_gradient(
        [&](const Tensor& probe) {
          return loss_with(x0, probe, b0).value().item();
        },
        g0, 1e-2f);
    const Tensor num_b = autograd::numerical_gradient(
        [&](const Tensor& probe) {
          return loss_with(x0, g0, probe).value().item();
        },
        b0, 1e-2f);
    for (int64_t i = 0; i < 2; ++i) {
      EXPECT_NEAR(g.grad().at(i), num_g.at(i), 5e-2f);
      EXPECT_NEAR(b.grad().at(i), num_b.at(i), 5e-2f);
    }
  }
}

TEST(BatchNormLayer, TrainEvalModesDiffer) {
  Rng rng(4);
  BatchNorm2d bn(2);
  const Tensor x0 = rng.normal_tensor(Shape{4, 2, 3, 3}, 1.0f, 2.0f);
  Variable x{x0.clone()};
  bn.set_training(true);
  const Variable train_out = bn.forward(x);
  // Running statistics moved toward the batch statistics.
  EXPECT_GT(bn.running_mean().at(0), 0.0f);
  bn.set_training(false);
  const Variable eval_out = bn.forward(x);
  // Train output is exactly normalized; eval uses the (partially updated)
  // running stats, so they differ.
  EXPECT_GT(norm_l2(sub(train_out.value(), eval_out.value())), 1e-3f);
}

TEST(BatchNormLayer, ChecksConstruction) {
  EXPECT_THROW(BatchNorm2d(0), Error);
  EXPECT_THROW(BatchNorm2d(2, 0.0f), Error);
  EXPECT_THROW(BatchNorm2d(2, 1e-5f, 0.0f), Error);
}

TEST(BatchNormLayer, RunningStatsSerializeInCheckpoints) {
  Rng rng(5);
  BatchNorm2d bn(3);
  EXPECT_EQ(bn.named_parameters().size(), 4u);  // gamma, beta, 2 buffers
  // Names are stable for the checkpoint format.
  EXPECT_EQ(bn.named_parameters()[2].name, "running_mean");
  EXPECT_EQ(bn.named_parameters()[3].name, "running_var");
}

TEST(DropoutLayer, TrainingZeroesRoughlyPFraction) {
  Dropout drop(0.5f, 42);
  drop.set_training(true);
  Variable x{Tensor::ones(Shape{1, 1, 32, 32})};
  const Variable y = drop.forward(x);
  int64_t zeros = 0;
  for (int64_t i = 0; i < y.value().numel(); ++i) {
    const float v = y.value().at(i);
    EXPECT_TRUE(v == 0.0f || std::fabs(v - 2.0f) < 1e-6f);
    if (v == 0.0f) {
      ++zeros;
    }
  }
  EXPECT_GT(zeros, 400);
  EXPECT_LT(zeros, 624);
}

TEST(DropoutLayer, EvalIsIdentity) {
  Dropout drop(0.5f, 42);
  drop.set_training(false);
  Variable x{Tensor::ones(Shape{4})};
  const Variable y = drop.forward(x);
  EXPECT_LT(norm_linf(sub(y.value(), x.value())), 1e-7f);
  EXPECT_THROW(Dropout(1.0f), Error);
  EXPECT_THROW(Dropout(-0.1f), Error);
}

TEST(SequentialModes, PropagateToChildren) {
  Rng rng(6);
  Sequential net;
  auto dropout = std::make_shared<Dropout>(0.3f);
  auto bn = std::make_shared<BatchNorm2d>(4);
  net.add(dropout).add(bn);
  net.set_training(false);
  EXPECT_FALSE(dropout->training());
  EXPECT_FALSE(bn->training());
  net.set_training(true);
  EXPECT_TRUE(dropout->training());
  EXPECT_TRUE(bn->training());
}

TEST(VggVariants, BatchNormAndDropoutFactories) {
  Rng rng(7);
  VggConfig config = VggConfig::tiny(4, 8);
  config.batch_norm = true;
  config.dropout = 0.5f;
  const auto net = make_vggnet(config, rng);
  // 2 x (Conv, BN, ReLU, Pool) + Flatten + Dropout + Linear = 11.
  EXPECT_EQ(net->size(), 11u);
  Variable x{rng.uniform_tensor(Shape{2, 3, 8, 8}, 0, 1)};
  net->set_training(false);
  const Variable y = net->forward(x);
  EXPECT_EQ(y.value().shape(), Shape({2, 4}));
}

TEST(VggVariants, BnNetworkTrainsOnToyTask) {
  Rng rng(8);
  VggConfig config = VggConfig::tiny(4, 8);
  config.batch_norm = true;
  const auto net = make_vggnet(config, rng);

  // Quadrant toy task (same as nn_test).
  std::vector<Tensor> images;
  std::vector<int64_t> labels;
  Rng data_rng(9);
  for (int64_t cls = 0; cls < 4; ++cls) {
    for (int i = 0; i < 8; ++i) {
      Tensor img = data_rng.normal_tensor(Shape{3, 8, 8}, 0.0f, 0.05f);
      const int64_t oy = (cls / 2) * 4;
      const int64_t ox = (cls % 2) * 4;
      for (int64_t c = 0; c < 3; ++c) {
        for (int64_t y = 0; y < 4; ++y) {
          for (int64_t x = 0; x < 4; ++x) {
            img.at({c, oy + y, ox + x}) += 0.9f;
          }
        }
      }
      img.clamp_(0.0f, 1.0f);
      images.push_back(img);
      labels.push_back(cls);
    }
  }
  SGD sgd(net->named_parameters(), {.lr = 0.05f});
  Trainer::Config tc;
  tc.epochs = 12;
  Trainer trainer(*net, sgd, tc);
  Rng train_rng(10);
  trainer.fit(images, labels, train_rng);
  const EvalResult eval = evaluate(*net, images, labels);
  EXPECT_GT(eval.top1, 0.9);
}

TEST(SimpleCnn, BuildsAndForwardsCorrectShapes) {
  Rng rng(20);
  SimpleCnnConfig config;
  config.input_size = 16;
  config.channels = {4, 8};
  config.hidden = 16;
  config.num_classes = 7;
  const auto net = make_simple_cnn(config, rng);
  // 2 x (Conv, ReLU, AvgPool) + Flatten + Linear + ReLU + Linear = 10.
  EXPECT_EQ(net->size(), 10u);
  Variable x{rng.uniform_tensor(Shape{2, 3, 16, 16}, 0, 1)};
  const Variable y = net->forward(x);
  EXPECT_EQ(y.value().shape(), Shape({2, 7}));
  EXPECT_THROW(make_simple_cnn({.input_size = 15}, rng), Error);
}

TEST(SimpleCnn, ArchitectureDiffersFromVgg) {
  Rng rng(21);
  const auto cnn = make_simple_cnn({.input_size = 16, .channels = {4, 8}},
                                   rng);
  const auto vgg = make_vggnet(VggConfig::tiny(43, 16), rng);
  EXPECT_NE(cnn->parameter_count(), vgg->parameter_count());
  EXPECT_NE(cnn->name(), vgg->name());
  // The simple CNN uses 5x5 kernels and average pooling.
  EXPECT_NE(cnn->name().find("k5"), std::string::npos);
  EXPECT_NE(cnn->name().find("AvgPool"), std::string::npos);
}

}  // namespace
}  // namespace fademl::nn
