// Differential tests for the batch-first evaluation path: every batched
// pipeline primitive and every batched attack must be *bitwise* identical,
// row for row, to the single-image path — at every thread count. This is
// the contract that lets the benches and the serving layer batch freely
// without perturbing any published number.

#include <cstring>
#include <vector>

#include <gtest/gtest.h>

#include "fademl/attacks/batch.hpp"
#include "fademl/attacks/fademl_attack.hpp"
#include "fademl/autograd/ops.hpp"
#include "fademl/core/pipeline.hpp"
#include "fademl/nn/trainer.hpp"
#include "fademl/parallel/parallel.hpp"
#include "fademl/tensor/error.hpp"
#include "fademl/tensor/ops.hpp"
#include "reference_kernels.hpp"
#include "test_fixtures.hpp"

namespace fademl {
namespace {

class ThreadGuard {
 public:
  explicit ThreadGuard(int n) { parallel::set_num_threads(n); }
  ~ThreadGuard() { parallel::set_num_threads(0); }
};

const std::vector<int>& thread_sweep() {
  static const std::vector<int> kThreads = {1, 2, 7};
  return kThreads;
}

const std::vector<int64_t>& batch_sweep() {
  static const std::vector<int64_t> kSizes = {1, 2, 7};
  return kSizes;
}

const std::vector<core::ThreatModel>& all_tms() {
  static const std::vector<core::ThreatModel> kTms = {
      core::ThreatModel::kI, core::ThreatModel::kII, core::ThreatModel::kIII};
  return kTms;
}

/// First `n` training images of the shared tiny world (distinct classes
/// are interleaved, so cohorts are heterogeneous).
std::vector<Tensor> cohort(int64_t n) {
  const auto& world = fademl::testing::tiny_world();
  std::vector<Tensor> images;
  for (int64_t i = 0; i < n; ++i) {
    images.push_back(world.train_images[static_cast<size_t>(i)]);
  }
  return images;
}

std::vector<int64_t> cohort_labels(int64_t n) {
  const auto& world = fademl::testing::tiny_world();
  return {world.train_labels.begin(), world.train_labels.begin() + n};
}

/// A target class different from each image's own label.
std::vector<int64_t> cohort_targets(int64_t n) {
  const auto& world = fademl::testing::tiny_world();
  std::vector<int64_t> targets;
  for (int64_t i = 0; i < n; ++i) {
    const int64_t label = world.train_labels[static_cast<size_t>(i)];
    targets.push_back(label == world.classes[0] ? world.classes[1]
                                                : world.classes[0]);
  }
  return targets;
}

void expect_result_bitwise(const attacks::AttackResult& batched,
                           const attacks::AttackResult& single,
                           const std::string& context) {
  EXPECT_TRUE(testing::bitwise_equal(batched.adversarial, single.adversarial))
      << context << ": adversarial differs";
  EXPECT_TRUE(testing::bitwise_equal(batched.noise, single.noise))
      << context << ": noise differs";
  EXPECT_EQ(batched.iterations, single.iterations) << context;
  ASSERT_EQ(batched.loss_history.size(), single.loss_history.size())
      << context;
  for (size_t k = 0; k < batched.loss_history.size(); ++k) {
    EXPECT_EQ(std::memcmp(&batched.loss_history[k], &single.loss_history[k],
                          sizeof(float)),
              0)
        << context << ": loss_history[" << k << "]";
  }
  EXPECT_EQ(std::memcmp(&batched.linf, &single.linf, sizeof(float)), 0)
      << context;
  EXPECT_EQ(std::memcmp(&batched.l2, &single.l2, sizeof(float)), 0)
      << context;
}

// ---- batched pipeline primitives -------------------------------------------

TEST(BatchPipeline, PredictProbsBatchBitwiseMatchesPerImage) {
  const auto pipeline = fademl::testing::tiny_pipeline(filters::make_lap(8));
  for (int threads : thread_sweep()) {
    ThreadGuard guard(threads);
    for (int64_t n : batch_sweep()) {
      const std::vector<Tensor> images = cohort(n);
      const Tensor batch = nn::stack_images(images);
      for (core::ThreatModel tm : all_tms()) {
        const Tensor probs = pipeline.predict_probs_batch(batch, tm);
        ASSERT_EQ(probs.dim(0), n);
        for (int64_t i = 0; i < n; ++i) {
          const Tensor single = pipeline.predict_probs(images[i], tm);
          ASSERT_EQ(single.numel(), probs.dim(1));
          EXPECT_EQ(std::memcmp(probs.data() + i * probs.dim(1),
                                single.data(),
                                sizeof(float) * single.numel()),
                    0)
              << "threads=" << threads << " n=" << n << " row=" << i;
        }
      }
    }
  }
}

TEST(BatchPipeline, LossAndGradBatchBitwiseMatchesPerImage) {
  const auto pipeline = fademl::testing::tiny_pipeline(filters::make_lar(2));
  for (int threads : thread_sweep()) {
    ThreadGuard guard(threads);
    for (int64_t n : batch_sweep()) {
      const std::vector<Tensor> images = cohort(n);
      const std::vector<int64_t> targets = cohort_targets(n);
      const Tensor batch = nn::stack_images(images);
      for (core::ThreatModel tm : all_tms()) {
        const core::BatchLossGrad lg = pipeline.loss_and_grad_batch(
            batch, attacks::batch_targeted_cross_entropy(targets), tm);
        ASSERT_EQ(lg.losses.size(), static_cast<size_t>(n));
        ASSERT_EQ(lg.grads.dim(0), n);
        const int64_t stride = lg.grads.numel() / n;
        for (int64_t i = 0; i < n; ++i) {
          const core::LossGrad single = pipeline.loss_and_grad(
              images[i], attacks::targeted_cross_entropy(targets[i]), tm);
          EXPECT_EQ(std::memcmp(&lg.losses[static_cast<size_t>(i)],
                                &single.loss, sizeof(float)),
                    0)
              << "threads=" << threads << " n=" << n << " row=" << i;
          EXPECT_EQ(std::memcmp(lg.grads.data() + i * stride,
                                single.grad.data(),
                                sizeof(float) * stride),
                    0)
              << "threads=" << threads << " n=" << n << " row=" << i;
        }
      }
    }
  }
}

TEST(BatchPipeline, PredictBatchMatchesPredictPerImage) {
  const auto pipeline = fademl::testing::tiny_pipeline(filters::make_lap(4));
  const int64_t n = 7;
  const std::vector<Tensor> images = cohort(n);
  const std::vector<core::Prediction> preds = pipeline.predict_batch(
      nn::stack_images(images), core::ThreatModel::kIII);
  ASSERT_EQ(preds.size(), static_cast<size_t>(n));
  for (int64_t i = 0; i < n; ++i) {
    const core::Prediction single =
        pipeline.predict(images[i], core::ThreatModel::kIII);
    EXPECT_EQ(preds[static_cast<size_t>(i)].label, single.label);
    EXPECT_EQ(preds[static_cast<size_t>(i)].confidence, single.confidence);
    EXPECT_EQ(preds[static_cast<size_t>(i)].top5, single.top5);
    EXPECT_TRUE(testing::bitwise_equal(preds[static_cast<size_t>(i)].probs,
                                       single.probs));
  }
}

TEST(BatchPipeline, WeightedObjectivesBitwiseMatchRowwise) {
  const auto pipeline = fademl::testing::tiny_pipeline(filters::make_lap(8));
  const int64_t n = 3;
  const std::vector<Tensor> images = cohort(n);
  const Tensor batch = nn::stack_images(images);
  const Tensor probs = pipeline.predict_probs_batch(batch,
                                                    core::ThreatModel::kI);
  const int64_t classes = probs.dim(1);
  Tensor weights{Shape{n, classes}};
  for (int64_t i = 0; i < weights.numel(); ++i) {
    weights.data()[i] = 0.01f * static_cast<float>(i % 13) - 0.05f;
  }
  const core::BatchLossGrad lg = pipeline.loss_and_grad_batch(
      batch, attacks::batch_weighted_probability(weights),
      core::ThreatModel::kIII);
  const int64_t stride = lg.grads.numel() / n;
  for (int64_t i = 0; i < n; ++i) {
    Tensor row{Shape{1, classes}};
    std::memcpy(row.data(), weights.data() + i * classes,
                sizeof(float) * classes);
    const core::LossGrad single = pipeline.loss_and_grad(
        images[i], attacks::weighted_probability(row),
        core::ThreatModel::kIII);
    EXPECT_EQ(lg.losses[static_cast<size_t>(i)], single.loss) << i;
    EXPECT_EQ(std::memcmp(lg.grads.data() + i * stride, single.grad.data(),
                          sizeof(float) * stride),
              0)
        << i;
  }
}

// ---- typed errors -----------------------------------------------------------

TEST(BatchPipeline, RejectsEmptyAndMalformedBatches) {
  const auto pipeline = fademl::testing::tiny_pipeline(filters::make_lap(8));
  const Tensor empty{Shape{0, 3, 16, 16}};
  EXPECT_THROW(pipeline.route_batch(empty, core::ThreatModel::kIII),
               fademl::Error);
  EXPECT_THROW((void)pipeline.predict_probs_batch(empty,
                                                  core::ThreatModel::kI),
               fademl::Error);
  EXPECT_THROW(
      (void)pipeline.loss_and_grad_batch(
          empty, attacks::batch_targeted_cross_entropy({}),
          core::ThreatModel::kI),
      fademl::Error);
  // Rank mismatch (a single image is not a batch).
  const Tensor image = cohort(1)[0];
  EXPECT_THROW(pipeline.route_batch(image, core::ThreatModel::kI),
               fademl::Error);
  // Objective returning the wrong shape is a typed error, not a crash.
  const Tensor batch = nn::stack_images(cohort(2));
  const core::BatchObjective bad = [](const autograd::Variable& logits) {
    return autograd::sum(logits);  // scalar, not [N]
  };
  EXPECT_THROW(
      (void)pipeline.loss_and_grad_batch(batch, bad, core::ThreatModel::kI),
      fademl::Error);
}

TEST(BatchPipeline, AccuracyFailsLoudlyOnBadInputs) {
  const auto pipeline = fademl::testing::tiny_pipeline(filters::make_lap(8));
  const std::vector<Tensor> images = cohort(3);
  EXPECT_THROW((void)pipeline.accuracy({}, {}, core::ThreatModel::kIII),
               fademl::Error);
  EXPECT_THROW((void)pipeline.accuracy(images, {1, 2},
                                       core::ThreatModel::kIII),
               fademl::Error);
}

TEST(BatchPipeline, AccuracyMatchesPerImageLoop) {
  const auto pipeline = fademl::testing::tiny_pipeline(filters::make_lap(8));
  // 40 images spans two evaluation chunks of the batched path.
  const int64_t n = 40;
  const std::vector<Tensor> images = cohort(n);
  const std::vector<int64_t> labels = cohort_labels(n);
  const auto acc = pipeline.accuracy(images, labels, core::ThreatModel::kIII);
  int64_t top1 = 0;
  int64_t top5 = 0;
  for (int64_t i = 0; i < n; ++i) {
    const core::Prediction p =
        pipeline.predict(images[i], core::ThreatModel::kIII);
    top1 += p.label == labels[i] ? 1 : 0;
    top5 += std::find(p.top5.begin(), p.top5.end(), labels[i]) != p.top5.end()
                ? 1
                : 0;
  }
  EXPECT_EQ(acc.top1, static_cast<double>(top1) / static_cast<double>(n));
  EXPECT_EQ(acc.top5, static_cast<double>(top5) / static_cast<double>(n));
}

// ---- cohort attacks ---------------------------------------------------------

TEST(BatchAttacks, RejectsBadCohorts) {
  const auto pipeline = fademl::testing::tiny_pipeline(filters::make_lap(8));
  const attacks::BatchAttack attack(attacks::AttackKind::kFgsm);
  EXPECT_THROW((void)attack.run(pipeline, {}, {}), fademl::Error);
  EXPECT_THROW((void)attack.run(pipeline, cohort(2), {14}), fademl::Error);
}

TEST(BatchAttacks, FgsmBitwiseMatchesSingleImage) {
  const auto pipeline = fademl::testing::tiny_pipeline(filters::make_lap(8));
  attacks::AttackConfig config;
  config.fgsm_epsilon_search = true;
  const int64_t n = 7;
  const std::vector<Tensor> sources = cohort(n);
  const std::vector<int64_t> targets = cohort_targets(n);
  const auto single = attacks::make_attack(attacks::AttackKind::kFgsm,
                                           config);
  const attacks::BatchAttack batched(attacks::AttackKind::kFgsm, config);
  for (int threads : thread_sweep()) {
    ThreadGuard guard(threads);
    const std::vector<attacks::AttackResult> results =
        batched.run(pipeline, sources, targets);
    ASSERT_EQ(results.size(), static_cast<size_t>(n));
    for (int64_t i = 0; i < n; ++i) {
      const attacks::AttackResult ref =
          single->run(pipeline, sources[i], targets[i]);
      expect_result_bitwise(results[static_cast<size_t>(i)], ref,
                            "fgsm threads=" + std::to_string(threads) +
                                " i=" + std::to_string(i));
    }
  }
}

TEST(BatchAttacks, BimBitwiseMatchesSingleImage) {
  const auto pipeline = fademl::testing::tiny_pipeline(filters::make_lar(1));
  attacks::AttackConfig config;
  config.max_iterations = 8;
  config.target_confidence = 0.6f;  // exercises per-image early stop
  const int64_t n = 7;
  const std::vector<Tensor> sources = cohort(n);
  const std::vector<int64_t> targets = cohort_targets(n);
  const auto single = attacks::make_attack(attacks::AttackKind::kBim, config);
  const attacks::BatchAttack batched(attacks::AttackKind::kBim, config);
  for (int threads : thread_sweep()) {
    ThreadGuard guard(threads);
    const std::vector<attacks::AttackResult> results =
        batched.run(pipeline, sources, targets);
    for (int64_t i = 0; i < n; ++i) {
      const attacks::AttackResult ref =
          single->run(pipeline, sources[i], targets[i]);
      expect_result_bitwise(results[static_cast<size_t>(i)], ref,
                            "bim threads=" + std::to_string(threads) +
                                " i=" + std::to_string(i));
    }
  }
}

TEST(BatchAttacks, LbfgsBitwiseMatchesSingleImage) {
  const auto pipeline = fademl::testing::tiny_pipeline(filters::make_lap(4));
  attacks::AttackConfig config;
  config.max_iterations = 6;
  config.target_confidence = 0.5f;
  const int64_t n = 7;
  const std::vector<Tensor> sources = cohort(n);
  const std::vector<int64_t> targets = cohort_targets(n);
  const attacks::LbfgsAttack single(config);
  const attacks::BatchAttack batched(attacks::AttackKind::kLbfgs, config);
  for (int threads : thread_sweep()) {
    ThreadGuard guard(threads);
    const std::vector<attacks::AttackResult> results =
        batched.run(pipeline, sources, targets);
    for (int64_t i = 0; i < n; ++i) {
      const attacks::AttackResult ref =
          single.run(pipeline, sources[i], targets[i]);
      expect_result_bitwise(results[static_cast<size_t>(i)], ref,
                            "lbfgs threads=" + std::to_string(threads) +
                                " i=" + std::to_string(i));
    }
  }
}

TEST(BatchAttacks, FilterAwareMatchesFademlAttack) {
  const auto pipeline = fademl::testing::tiny_pipeline(filters::make_lap(8));
  attacks::AttackConfig config;
  config.max_iterations = 5;
  const int64_t n = 4;
  const std::vector<Tensor> sources = cohort(n);
  const std::vector<int64_t> targets = cohort_targets(n);
  const attacks::FAdeMLAttack single(attacks::AttackKind::kBim, config);
  const attacks::BatchAttack batched(attacks::AttackKind::kBim, config,
                                     /*filter_aware=*/true);
  EXPECT_EQ(batched.name(), single.name());
  const std::vector<attacks::AttackResult> results =
      batched.run(pipeline, sources, targets);
  ASSERT_EQ(batched.eq2_costs().size(), static_cast<size_t>(n));
  for (int64_t i = 0; i < n; ++i) {
    const attacks::AttackResult ref =
        single.run(pipeline, sources[i], targets[i]);
    expect_result_bitwise(results[static_cast<size_t>(i)], ref,
                          "fademl i=" + std::to_string(i));
    ASSERT_EQ(single.eq2_history().size(), 1u);
    EXPECT_EQ(batched.eq2_costs()[static_cast<size_t>(i)],
              single.eq2_history()[0])
        << i;
  }
}

TEST(BatchAttacks, CwFallbackMatchesSingleImage) {
  const auto pipeline = fademl::testing::tiny_pipeline(filters::make_lap(8));
  attacks::AttackConfig config;
  config.max_iterations = 4;
  const int64_t n = 2;
  const std::vector<Tensor> sources = cohort(n);
  const std::vector<int64_t> targets = cohort_targets(n);
  const auto single = attacks::make_attack(attacks::AttackKind::kCw, config);
  const attacks::BatchAttack batched(attacks::AttackKind::kCw, config);
  const std::vector<attacks::AttackResult> results =
      batched.run(pipeline, sources, targets);
  for (int64_t i = 0; i < n; ++i) {
    const attacks::AttackResult ref =
        single->run(pipeline, sources[i], targets[i]);
    expect_result_bitwise(results[static_cast<size_t>(i)], ref,
                          "cw i=" + std::to_string(i));
  }
}

}  // namespace
}  // namespace fademl
