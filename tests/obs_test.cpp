// Tests for the fademl::obs observability layer: the streaming JSON
// emitter, the metrics registry (including multi-threaded increments —
// this binary runs under scripts/check.sh --tsan), trace span collection
// (nesting, bounded capacity, cross-thread record_span), and the
// contract that everything is a no-op while tracing is disabled.

#include <atomic>
#include <cmath>
#include <limits>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "fademl/obs/json.hpp"
#include "fademl/obs/metrics.hpp"
#include "fademl/obs/trace.hpp"

namespace fademl::obs {
namespace {

/// Every trace test leaves the process-wide collector empty and tracing
/// in its pre-test state.
class TraceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    prior_ = trace_enabled();
    set_trace_enabled(false);
    TraceCollector::instance().clear();
    TraceCollector::instance().set_capacity(1 << 16);
  }
  void TearDown() override {
    TraceCollector::instance().clear();
    TraceCollector::instance().set_capacity(1 << 16);
    set_trace_enabled(prior_);
  }

 private:
  bool prior_ = false;
};

// ---- JsonWriter ------------------------------------------------------------

TEST(JsonWriter, EmitsNestedStructureWithAutomaticCommas) {
  std::ostringstream os;
  JsonWriter w(os);
  w.begin_object();
  w.key("name").value("probe");
  w.key("count").value(int64_t{3});
  w.key("points").begin_array();
  w.value(1.5).value(int64_t{2}).null();
  w.end_array();
  w.key("nested").begin_object();
  w.key("ok").value(true);
  w.end_object();
  w.end_object();
  EXPECT_EQ(os.str(),
            "{\"name\":\"probe\",\"count\":3,"
            "\"points\":[1.5,2,null],\"nested\":{\"ok\":true}}");
}

TEST(JsonWriter, NonFiniteDoublesSerializeAsNull) {
  std::ostringstream os;
  JsonWriter w(os);
  w.begin_array();
  w.value(std::nan(""));
  w.value(std::numeric_limits<double>::infinity());
  w.value(-std::numeric_limits<double>::infinity());
  w.value(0.25);
  w.end_array();
  EXPECT_EQ(os.str(), "[null,null,null,0.25]");
}

TEST(JsonWriter, EscapesQuotesBackslashesAndControlChars) {
  EXPECT_EQ(JsonWriter::escape("a\"b\\c\nd\te\x01"),
            "a\\\"b\\\\c\\nd\\te\\u0001");
}

// ---- BucketLayout / Histogram ----------------------------------------------

TEST(BucketLayout, ExponentialDoublesEachBound) {
  const BucketLayout layout = BucketLayout::exponential(1.0, 2.0, 4);
  ASSERT_EQ(layout.upper.size(), 4u);
  EXPECT_DOUBLE_EQ(layout.upper[0], 1.0);
  EXPECT_DOUBLE_EQ(layout.upper[3], 8.0);
  const BucketLayout latency = BucketLayout::latency_ms();
  EXPECT_FALSE(latency.upper.empty());
  EXPECT_DOUBLE_EQ(latency.upper.front(), 0.01);
}

TEST(Histogram, TracksCountSumMinMaxAndBuckets) {
  Histogram h(BucketLayout::exponential(1.0, 2.0, 3));  // 1, 2, 4
  h.observe(0.5);
  h.observe(3.0);
  h.observe(100.0);  // overflow bucket
  const Histogram::Snapshot s = h.snapshot();
  EXPECT_EQ(s.count, 3);
  EXPECT_DOUBLE_EQ(s.sum, 103.5);
  EXPECT_DOUBLE_EQ(s.min, 0.5);
  EXPECT_DOUBLE_EQ(s.max, 100.0);
  EXPECT_DOUBLE_EQ(s.mean(), 103.5 / 3.0);
  ASSERT_EQ(s.counts.size(), 4u);  // 3 bounded + overflow
  EXPECT_EQ(s.counts[0], 1);      // 0.5 <= 1
  EXPECT_EQ(s.counts[1], 0);
  EXPECT_EQ(s.counts[2], 1);      // 3.0 <= 4
  EXPECT_EQ(s.counts[3], 1);      // 100 overflows
}

// ---- MetricsRegistry -------------------------------------------------------

TEST(MetricsRegistry, SameNameReturnsSameInstrument) {
  MetricsRegistry registry;
  Counter& a = registry.counter("x");
  Counter& b = registry.counter("x");
  EXPECT_EQ(&a, &b);
  Histogram& h1 = registry.histogram("h");
  // Later layouts are ignored: the first caller fixes the buckets.
  Histogram& h2 =
      registry.histogram("h", BucketLayout::exponential(5.0, 3.0, 2));
  EXPECT_EQ(&h1, &h2);
}

TEST(MetricsRegistry, CounterAllowsCompensatingDecrement) {
  MetricsRegistry registry;
  Counter& c = registry.counter("c");
  c.add();
  c.add(-1);
  EXPECT_EQ(c.value(), 0);
}

TEST(MetricsRegistry, ConcurrentIncrementsAndObservesAreExact) {
  // The TSan target: counters, gauges, and histograms hammered from many
  // threads while a reader exports JSON snapshots.
  MetricsRegistry registry;
  Counter& counter = registry.counter("events");
  Gauge& gauge = registry.gauge("level");
  Histogram& hist = registry.histogram("lat");
  constexpr int kThreads = 8;
  constexpr int kPerThread = 2000;
  std::atomic<bool> stop{false};
  std::thread reader([&] {
    while (!stop.load()) {
      (void)registry.to_json();
    }
  });
  std::vector<std::thread> writers;
  for (int t = 0; t < kThreads; ++t) {
    writers.emplace_back([&, t] {
      for (int i = 0; i < kPerThread; ++i) {
        counter.add();
        gauge.set(static_cast<double>(t));
        hist.observe(static_cast<double>(i % 7));
        // Create-on-first-use must also be safe mid-flight.
        registry.counter("per_thread_" + std::to_string(t)).add();
      }
    });
  }
  for (std::thread& w : writers) {
    w.join();
  }
  stop = true;
  reader.join();
  EXPECT_EQ(counter.value(), kThreads * kPerThread);
  EXPECT_EQ(hist.snapshot().count, kThreads * kPerThread);
  for (int t = 0; t < kThreads; ++t) {
    EXPECT_EQ(registry.counter("per_thread_" + std::to_string(t)).value(),
              kPerThread);
  }
}

TEST(MetricsRegistry, ExportsStableSchema) {
  MetricsRegistry registry;
  registry.counter("b.count").add(2);
  registry.counter("a.count").add(1);
  registry.gauge("depth").set(3.5);
  registry.histogram("ms", BucketLayout::exponential(1.0, 2.0, 2))
      .observe(1.5);
  const std::string json = registry.to_json();
  EXPECT_NE(json.find("\"schema\":\"fademl.metrics.v1\""), std::string::npos);
  // Keys are sorted within each section.
  EXPECT_LT(json.find("\"a.count\":1"), json.find("\"b.count\":2"));
  EXPECT_NE(json.find("\"depth\":3.5"), std::string::npos);
  // The overflow bucket exports "le": null.
  EXPECT_NE(json.find("\"le\":null"), std::string::npos);
}

TEST(MetricsRegistry, MergedExportSpansRegistries) {
  MetricsRegistry lib;
  MetricsRegistry svc;
  lib.counter("pipeline.calls").add(4);
  svc.counter("serve.submitted").add(7);
  std::ostringstream os;
  write_metrics_json(os, {&lib, &svc});
  const std::string json = os.str();
  EXPECT_NE(json.find("\"pipeline.calls\":4"), std::string::npos);
  EXPECT_NE(json.find("\"serve.submitted\":7"), std::string::npos);
  EXPECT_NE(json.find("\"schema\":\"fademl.metrics.v1\""), std::string::npos);
}

// ---- tracing ---------------------------------------------------------------

TEST_F(TraceTest, DisabledSpansRecordNothing) {
  ASSERT_FALSE(trace_enabled());
  {
    TraceSpan outer("outer", "test");
    TraceSpan inner("inner", "test");
  }
  record_span("manual", "test", TraceClock::now(), TraceClock::now());
  EXPECT_EQ(TraceCollector::instance().size(), 0u);
  EXPECT_EQ(TraceCollector::instance().dropped(), 0);
}

TEST_F(TraceTest, SpansNestWithDepthPerThread) {
  set_trace_enabled(true);
  {
    TraceSpan outer("outer", "test");
    {
      TraceSpan inner("inner", "test");
    }
  }
  const std::vector<TraceEvent> events = TraceCollector::instance().events();
  ASSERT_EQ(events.size(), 2u);
  // Spans record on close: inner first, then outer.
  EXPECT_EQ(events[0].name, "inner");
  EXPECT_EQ(events[0].depth, 1u);
  EXPECT_EQ(events[1].name, "outer");
  EXPECT_EQ(events[1].depth, 0u);
  EXPECT_LE(events[1].ts_us, events[0].ts_us);
  EXPECT_GE(events[0].dur_us, 0.0);
}

TEST_F(TraceTest, StageTimerAlwaysObservesButOnlyTracesWhenEnabled) {
  MetricsRegistry registry;
  Histogram& hist = registry.histogram("stage");
  {
    StageTimer timer(hist, "stage", "test");
  }
  EXPECT_EQ(hist.snapshot().count, 1);
  EXPECT_EQ(TraceCollector::instance().size(), 0u);
  set_trace_enabled(true);
  {
    StageTimer timer(hist, "stage", "test");
  }
  EXPECT_EQ(hist.snapshot().count, 2);
  EXPECT_EQ(TraceCollector::instance().size(), 1u);
}

TEST_F(TraceTest, CapacityBoundsMemoryAndCountsDrops) {
  set_trace_enabled(true);
  TraceCollector::instance().set_capacity(3);
  for (int i = 0; i < 5; ++i) {
    TraceSpan span("s" + std::to_string(i), "test");
  }
  EXPECT_EQ(TraceCollector::instance().size(), 3u);
  EXPECT_EQ(TraceCollector::instance().dropped(), 2);
  TraceCollector::instance().clear();
  EXPECT_EQ(TraceCollector::instance().size(), 0u);
  EXPECT_EQ(TraceCollector::instance().dropped(), 0);
}

TEST_F(TraceTest, RecordSpanAcceptsCrossThreadEndpoints) {
  set_trace_enabled(true);
  const TraceClock::time_point start = TraceClock::now();
  std::thread worker([&] {
    record_span("queue.wait", "serve", start, TraceClock::now());
  });
  worker.join();
  const std::vector<TraceEvent> events = TraceCollector::instance().events();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].name, "queue.wait");
  EXPECT_EQ(events[0].category, "serve");
}

TEST_F(TraceTest, ChromeTraceExportIsWellFormed) {
  set_trace_enabled(true);
  {
    TraceSpan span("exported \"span\"", "test");
  }
  std::ostringstream os;
  TraceCollector::instance().write_chrome_trace(os);
  const std::string json = os.str();
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("exported \\\"span\\\""), std::string::npos);
  EXPECT_NE(json.find("\"displayTimeUnit\":\"ms\""), std::string::npos);
}

TEST_F(TraceTest, ConcurrentSpansFromManyThreadsAreAllKept) {
  set_trace_enabled(true);
  constexpr int kThreads = 8;
  constexpr int kPerThread = 200;
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([] {
      for (int i = 0; i < kPerThread; ++i) {
        TraceSpan span("work", "test");
      }
    });
  }
  for (std::thread& w : workers) {
    w.join();
  }
  EXPECT_EQ(TraceCollector::instance().size(),
            static_cast<size_t>(kThreads * kPerThread));
  EXPECT_EQ(TraceCollector::instance().dropped(), 0);
}

}  // namespace
}  // namespace fademl::obs
