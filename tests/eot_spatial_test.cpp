// Tests for the EOT attack (robust-to-acquisition perturbations) and the
// spatial rotation/translation attack (no additive noise at all).

#include <gtest/gtest.h>

#include "fademl/attacks/bim.hpp"
#include "fademl/attacks/eot.hpp"
#include "fademl/attacks/spatial.hpp"
#include "fademl/data/transforms.hpp"
#include "fademl/tensor/error.hpp"
#include "fademl/tensor/ops.hpp"
#include "test_fixtures.hpp"

namespace fademl::attacks {
namespace {

using core::ThreatModel;
using fademl::testing::tiny_pipeline;

AttackConfig budget() {
  AttackConfig config;
  config.epsilon = 0.18f;
  config.step_size = 0.02f;
  config.max_iterations = 15;
  return config;
}

TEST(Eot, ValidatesOptions) {
  EotOptions bad;
  bad.samples = 0;
  EXPECT_THROW(EotAttack(budget(), bad), Error);
  AttackConfig bad_config = budget();
  bad_config.epsilon = 0.0f;
  EXPECT_THROW(EotAttack{bad_config}, Error);
}

TEST(Eot, NamesFollowGradientRoute) {
  AttackConfig tm3 = budget();
  tm3.grad_tm = ThreatModel::kIII;
  EXPECT_EQ(EotAttack(budget()).name(), "EOT-BIM");
  EXPECT_EQ(EotAttack(tm3).name(), "FAdeML-EOT-BIM");
}

TEST(Eot, RespectsBudgetAndCountsSampledGradients) {
  const auto pipeline = tiny_pipeline(filters::make_identity());
  EotOptions options;
  options.samples = 3;
  AttackConfig config = budget();
  config.max_iterations = 4;
  const EotAttack attack(config, options);
  const Tensor src = data::canonical_sample(14, 16);
  const AttackResult r = attack.run(pipeline, src, 3);
  EXPECT_LE(r.linf, config.epsilon + 1e-5f);
  EXPECT_EQ(r.iterations, 4 * 3);  // iterations * samples gradients
  EXPECT_EQ(r.loss_history.size(), 4u);
}

TEST(Eot, ExampleSurvivesJitterBetterThanPlainBim) {
  // The EOT property: under random sub-pixel jitter at evaluation time,
  // the EOT example keeps a higher target probability than a plain BIM
  // example of equal budget (on average over draws).
  const auto pipeline = tiny_pipeline(filters::make_identity());
  const Tensor src = data::canonical_sample(14, 16);
  AttackConfig config = budget();
  config.max_iterations = 20;
  const BimAttack plain(config);
  EotOptions options;
  options.samples = 4;
  options.jitter_pixels = 1.0f;
  const EotAttack eot(config, options);

  const AttackResult plain_r = plain.run(pipeline, src, 3);
  const AttackResult eot_r = eot.run(pipeline, src, 3);

  Rng rng(17);
  float plain_sum = 0.0f;
  float eot_sum = 0.0f;
  constexpr int kDraws = 12;
  for (int i = 0; i < kDraws; ++i) {
    const float dx = rng.uniform(-1.0f, 1.0f);
    const float dy = rng.uniform(-1.0f, 1.0f);
    plain_sum += pipeline
                     .predict_probs(data::translate_image(plain_r.adversarial,
                                                          dx, dy),
                                    ThreatModel::kI)
                     .at(3);
    eot_sum += pipeline
                   .predict_probs(data::translate_image(eot_r.adversarial,
                                                        dx, dy),
                                  ThreatModel::kI)
                   .at(3);
  }
  EXPECT_GE(eot_sum, plain_sum - 0.5f);  // robustly no worse, usually better
}

TEST(Spatial, GridBoundsAndQueryCount) {
  const auto pipeline = tiny_pipeline(filters::make_identity());
  SpatialOptions options;
  options.rotation_steps = 3;
  options.translation_steps = 3;
  const SpatialAttack attack({}, options);
  const Tensor src = data::canonical_sample(14, 16);
  const AttackResult r = attack.run(pipeline, src, 14);
  EXPECT_EQ(r.iterations, 3 * 3 * 3);
  EXPECT_GE(min(r.adversarial), 0.0f);
  EXPECT_LE(max(r.adversarial), 1.0f);
  EXPECT_THROW(SpatialAttack({}, SpatialOptions{.rotation_steps = 0}), Error);
}

TEST(Spatial, ReducesSourceProbability) {
  const auto pipeline = tiny_pipeline(filters::make_identity());
  const SpatialAttack attack;
  const Tensor src = data::canonical_sample(34, 16);  // turn left
  const AttackResult r = attack.run(pipeline, src, 34);
  const float before = pipeline.predict_probs(src, ThreatModel::kI).at(34);
  const float after =
      pipeline.predict_probs(r.adversarial, ThreatModel::kI).at(34);
  EXPECT_LE(after, before + 1e-6f);
}

TEST(Spatial, SmoothingDoesNotUndoGeometry) {
  // The anti-filter property: whatever source-probability damage the
  // spatial attack achieves, applying LAP(8) on top does not restore the
  // prediction the way it restores additive-noise attacks.
  const auto pipeline = tiny_pipeline(filters::make_lap(8));
  const SpatialAttack attack;
  const Tensor src = data::canonical_sample(14, 16);
  const AttackResult r = attack.run(pipeline, src, 14);
  const float raw =
      pipeline.predict_probs(r.adversarial, ThreatModel::kI).at(14);
  const float filtered =
      pipeline.predict_probs(r.adversarial, ThreatModel::kIII).at(14);
  // Filtering the rotated image must not recover more than a modest amount
  // of source probability.
  EXPECT_LT(filtered, raw + 0.35f);
}

}  // namespace
}  // namespace fademl::attacks
