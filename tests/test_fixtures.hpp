#pragma once

// Shared fixtures for the attack / pipeline / analysis test binaries: a
// small VGG trained once per process on the scenario-relevant subset of the
// synthetic GTSRB classes. Training takes ~a second; every test in the
// binary reuses the same model through the function-local static.

#include <memory>
#include <vector>

#include "fademl/core/pipeline.hpp"
#include "fademl/core/scenarios.hpp"
#include "fademl/data/dataset.hpp"
#include "fademl/data/gtsrb.hpp"
#include "fademl/nn/optimizer.hpp"
#include "fademl/nn/trainer.hpp"
#include "fademl/nn/vggnet.hpp"

namespace fademl::testing {

struct TinyWorld {
  std::shared_ptr<nn::Sequential> model;  ///< 43-way head, 16x16 inputs
  std::vector<Tensor> train_images;
  std::vector<int64_t> train_labels;
  /// The classes that actually appear in training (the paper's scenario
  /// sources/targets plus a couple of distractors).
  std::vector<int64_t> classes;
  int64_t image_size = 16;
};

inline const TinyWorld& tiny_world() {
  static const TinyWorld world = [] {
    TinyWorld w;
    w.classes = {14, 3, 1, 5, 33, 34, 17, 12};
    Rng data_rng(7);
    for (int64_t cls : w.classes) {
      for (int i = 0; i < 14; ++i) {
        const data::RenderParams params =
            data::RenderParams::randomize(data_rng, 0.02f);
        w.train_images.push_back(
            data::render_sign(cls, params, w.image_size));
        w.train_labels.push_back(cls);
      }
    }
    Rng model_rng(21);
    nn::VggConfig config = nn::VggConfig::tiny(43, w.image_size);
    config.channels = {6, 12};
    w.model = nn::make_vggnet(config, model_rng);

    nn::SGD::Config sgd_config;
    sgd_config.lr = 0.05f;
    nn::SGD sgd(w.model->named_parameters(), sgd_config);
    nn::Trainer::Config tconfig;
    tconfig.epochs = 25;
    tconfig.batch_size = 16;
    nn::Trainer trainer(*w.model, sgd, tconfig);
    Rng train_rng(3);
    trainer.fit(w.train_images, w.train_labels, train_rng);
    return w;
  }();
  return world;
}

/// Pipeline over the shared tiny model with the given filter.
inline core::InferencePipeline tiny_pipeline(filters::FilterPtr filter) {
  return core::InferencePipeline(tiny_world().model, std::move(filter));
}

}  // namespace fademl::testing
