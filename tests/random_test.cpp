#include "fademl/tensor/random.hpp"

#include <algorithm>
#include <set>

#include <gtest/gtest.h>

#include "fademl/tensor/error.hpp"
#include "fademl/tensor/ops.hpp"

namespace fademl {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.next_u64(), b.next_u64());
  }
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next_u64() == b.next_u64()) {
      ++same;
    }
  }
  EXPECT_EQ(same, 0);
}

TEST(Rng, UniformInRange) {
  Rng rng(9);
  for (int i = 0; i < 1000; ++i) {
    const float v = rng.uniform();
    EXPECT_GE(v, 0.0f);
    EXPECT_LT(v, 1.0f);
    const float w = rng.uniform(-2.0f, 3.0f);
    EXPECT_GE(w, -2.0f);
    EXPECT_LT(w, 3.0f);
  }
}

TEST(Rng, UniformIntCoversAndBounds) {
  Rng rng(17);
  std::set<int64_t> seen;
  for (int i = 0; i < 500; ++i) {
    const int64_t v = rng.uniform_int(7);
    EXPECT_GE(v, 0);
    EXPECT_LT(v, 7);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 7u);  // all buckets hit in 500 draws
  EXPECT_THROW(rng.uniform_int(0), Error);
}

TEST(Rng, NormalMoments) {
  Rng rng(31);
  const Tensor samples = rng.normal_tensor(Shape{20000}, 1.0f, 2.0f);
  const float m = mean(samples);
  EXPECT_NEAR(m, 1.0f, 0.1f);
  float var = 0.0f;
  for (int64_t i = 0; i < samples.numel(); ++i) {
    const float d = samples.at(i) - m;
    var += d * d;
  }
  var /= static_cast<float>(samples.numel());
  EXPECT_NEAR(var, 4.0f, 0.3f);
}

TEST(Rng, ForkProducesIndependentStream) {
  Rng parent(55);
  Rng child = parent.fork();
  // The child stream must differ both from a fresh parent and from the
  // parent's continuation.
  std::vector<uint64_t> child_draws;
  for (int i = 0; i < 16; ++i) {
    child_draws.push_back(child.next_u64());
  }
  int collisions = 0;
  for (int i = 0; i < 16; ++i) {
    const uint64_t p = parent.next_u64();
    if (std::find(child_draws.begin(), child_draws.end(), p) !=
        child_draws.end()) {
      ++collisions;
    }
  }
  EXPECT_EQ(collisions, 0);
}

TEST(Rng, SignTensorIsPlusMinusOne) {
  Rng rng(2);
  const Tensor t = rng.sign_tensor(Shape{256});
  int plus = 0;
  for (int64_t i = 0; i < t.numel(); ++i) {
    EXPECT_TRUE(t.at(i) == 1.0f || t.at(i) == -1.0f);
    if (t.at(i) == 1.0f) {
      ++plus;
    }
  }
  EXPECT_GT(plus, 64);   // roughly balanced
  EXPECT_LT(plus, 192);
}

TEST(Rng, PermutationIsAPermutation) {
  Rng rng(77);
  const auto perm = rng.permutation(100);
  std::set<int64_t> seen(perm.begin(), perm.end());
  EXPECT_EQ(seen.size(), 100u);
  EXPECT_EQ(*seen.begin(), 0);
  EXPECT_EQ(*seen.rbegin(), 99);
  // Not the identity (astronomically unlikely).
  bool identity = true;
  for (int64_t i = 0; i < 100; ++i) {
    if (perm[static_cast<size_t>(i)] != i) {
      identity = false;
      break;
    }
  }
  EXPECT_FALSE(identity);
}

TEST(Rng, UniformTensorRange) {
  Rng rng(4);
  const Tensor t = rng.uniform_tensor(Shape{512}, 0.25f, 0.75f);
  EXPECT_GE(min(t), 0.25f);
  EXPECT_LT(max(t), 0.75f);
}

}  // namespace
}  // namespace fademl
