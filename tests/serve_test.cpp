// Chaos tests for the hardened concurrent inference service: every
// failure path — deadline expiry (queued and in-flight), queue shedding,
// circuit-breaker trip/half-open/recovery, degraded-filter fallback, and
// drain-on-shutdown — is driven deterministically through the
// io::FaultInjector compute failpoints (slow-worker:MS, worker-throw:N).
// The suite must stay clean under ASan/UBSan *and* TSan (scripts/check.sh
// --tsan runs exactly this binary).

#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdlib>
#include <future>
#include <limits>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "fademl/io/failpoint.hpp"
#include "fademl/nn/vggnet.hpp"
#include "fademl/serve/admission.hpp"
#include "fademl/serve/bounded_queue.hpp"
#include "fademl/serve/circuit_breaker.hpp"
#include "fademl/serve/errors.hpp"
#include "fademl/serve/service.hpp"
#include "fademl/serve/stats.hpp"
#include "fademl/tensor/random.hpp"

namespace fademl::serve {
namespace {

using std::chrono::milliseconds;

constexpr int64_t kSide = 8;

/// One fully independent pipeline replica: service workers must never
/// share a model instance. Untrained weights are fine — the service's
/// semantics do not depend on accuracy, and skipping training keeps this
/// suite fast enough to run under TSan.
std::unique_ptr<core::InferencePipeline> make_replica(
    filters::FilterPtr filter = filters::make_lap(4)) {
  Rng rng(99);  // same seed -> identical weights across replicas
  auto model = nn::make_vggnet(nn::VggConfig::tiny(4, kSide), rng);
  return std::make_unique<core::InferencePipeline>(std::move(model),
                                                   std::move(filter));
}

std::vector<std::unique_ptr<core::InferencePipeline>> make_replicas(
    size_t count) {
  std::vector<std::unique_ptr<core::InferencePipeline>> replicas;
  for (size_t i = 0; i < count; ++i) {
    replicas.push_back(make_replica());
  }
  return replicas;
}

Tensor valid_image(uint64_t seed = 5) {
  Rng rng(seed);
  return rng.uniform_tensor(Shape{3, kSide, kSide}, 0.0f, 1.0f);
}

ServiceConfig base_config() {
  ServiceConfig config;
  config.admission.expected_height = kSide;
  config.admission.expected_width = kSide;
  return config;
}

/// Poll until `pred` holds (the only non-determinism in these tests is
/// "has the worker dequeued yet"; this bounds it).
template <typename Pred>
::testing::AssertionResult eventually(Pred pred,
                                      milliseconds timeout = milliseconds(
                                          5000)) {
  const auto until = std::chrono::steady_clock::now() + timeout;
  while (std::chrono::steady_clock::now() < until) {
    if (pred()) {
      return ::testing::AssertionSuccess();
    }
    std::this_thread::sleep_for(milliseconds(1));
  }
  return ::testing::AssertionFailure() << "condition not reached in time";
}

/// Every test leaves the process-wide injector disarmed.
class ServeTest : public ::testing::Test {
 protected:
  void SetUp() override { io::FaultInjector::instance().disarm(); }
  void TearDown() override { io::FaultInjector::instance().disarm(); }
};

// ---- BoundedQueue ----------------------------------------------------------

TEST(BoundedQueue, FifoAndShedAtCapacity) {
  BoundedQueue<int> q(2);
  EXPECT_TRUE(q.try_push(1));
  EXPECT_TRUE(q.try_push(2));
  EXPECT_FALSE(q.try_push(3));  // full -> shed
  EXPECT_EQ(q.depth(), 2u);
  EXPECT_EQ(q.pop().value(), 1);
  EXPECT_EQ(q.pop().value(), 2);
}

TEST(BoundedQueue, CloseDrainsThenSignalsEnd) {
  BoundedQueue<int> q(4);
  ASSERT_TRUE(q.try_push(7));
  q.close();
  EXPECT_THROW(q.push(8), ShutdownError);
  EXPECT_THROW((void)q.try_push(8), ShutdownError);
  EXPECT_EQ(q.pop().value(), 7);  // admitted items still drain
  EXPECT_FALSE(q.pop().has_value());
}

TEST(BoundedQueue, BlockingPushWaitsForSpace) {
  BoundedQueue<int> q(1);
  ASSERT_TRUE(q.try_push(1));
  std::atomic<bool> pushed{false};
  std::thread producer([&] {
    q.push(2);  // blocks until the consumer pops
    pushed.store(true);
  });
  std::this_thread::sleep_for(milliseconds(20));
  EXPECT_FALSE(pushed.load());
  EXPECT_EQ(q.pop().value(), 1);
  producer.join();
  EXPECT_TRUE(pushed.load());
  EXPECT_EQ(q.pop().value(), 2);
}

TEST(BoundedQueue, CloseWakesBlockedProducer) {
  BoundedQueue<int> q(1);
  ASSERT_TRUE(q.try_push(1));
  std::atomic<bool> threw{false};
  std::thread producer([&] {
    try {
      q.push(2);
    } catch (const ShutdownError&) {
      threw.store(true);
    }
  });
  std::this_thread::sleep_for(milliseconds(20));
  q.close();
  producer.join();
  EXPECT_TRUE(threw.load());
}

// ---- CircuitBreaker --------------------------------------------------------

TEST(CircuitBreakerTest, TripsAfterConsecutiveFailuresAndRecovers) {
  CircuitBreaker::Config config;
  config.failure_threshold = 3;
  config.cooldown = milliseconds(0);  // next acquisition is the probe
  CircuitBreaker breaker(config);

  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(breaker.try_acquire());
    breaker.record_failure();
  }
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kOpen);
  EXPECT_EQ(breaker.trips(), 1);

  // Cooldown 0: the next acquisition flips to half-open as the probe...
  ASSERT_TRUE(breaker.try_acquire());
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kHalfOpen);
  // ...and only one probe may be in flight.
  EXPECT_FALSE(breaker.try_acquire());
  breaker.record_success();
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kClosed);
}

TEST(CircuitBreakerTest, OpenRefusesUntilCooldown) {
  CircuitBreaker::Config config;
  config.failure_threshold = 1;
  config.cooldown = milliseconds(10'000);
  CircuitBreaker breaker(config);
  ASSERT_TRUE(breaker.try_acquire());
  breaker.record_failure();
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kOpen);
  EXPECT_FALSE(breaker.try_acquire());
  EXPECT_FALSE(breaker.try_acquire());
}

TEST(CircuitBreakerTest, ProbeFailureReopens) {
  CircuitBreaker::Config config;
  config.failure_threshold = 1;
  config.cooldown = milliseconds(0);
  CircuitBreaker breaker(config);
  ASSERT_TRUE(breaker.try_acquire());
  breaker.record_failure();  // trip 1
  ASSERT_TRUE(breaker.try_acquire());  // probe
  breaker.record_failure();  // probe fails -> trip 2
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kOpen);
  EXPECT_EQ(breaker.trips(), 2);
}

TEST(CircuitBreakerTest, AbandonedProbeFreesTheSlot) {
  CircuitBreaker::Config config;
  config.failure_threshold = 1;
  config.cooldown = milliseconds(0);
  CircuitBreaker breaker(config);
  ASSERT_TRUE(breaker.try_acquire());
  breaker.record_failure();
  ASSERT_TRUE(breaker.try_acquire());  // probe
  EXPECT_FALSE(breaker.try_acquire());
  breaker.record_abandoned();  // deadline expiry says nothing about health
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kHalfOpen);
  ASSERT_TRUE(breaker.try_acquire());  // slot free again
  breaker.record_success();
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kClosed);
}

// ---- Stats -----------------------------------------------------------------

TEST(Stats, NearestRankPercentiles) {
  std::vector<double> samples;
  for (int i = 1; i <= 100; ++i) {
    samples.push_back(static_cast<double>(i));
  }
  EXPECT_DOUBLE_EQ(percentile(samples, 0.50), 50.0);
  EXPECT_DOUBLE_EQ(percentile(samples, 0.95), 95.0);
  EXPECT_DOUBLE_EQ(percentile(samples, 0.99), 99.0);
  EXPECT_DOUBLE_EQ(percentile(samples, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(percentile(samples, 1.0), 100.0);
  EXPECT_DOUBLE_EQ(percentile({}, 0.5), 0.0);
}

TEST(Stats, SlidingWindowStaysBounded) {
  StatsCollector stats(4);
  for (int i = 0; i < 10; ++i) {
    stats.on_completed(static_cast<double>(i), false);
  }
  const ServiceStats snap = stats.snapshot();
  EXPECT_EQ(snap.completed, 10);
  EXPECT_EQ(snap.latency_samples, 4);
  EXPECT_GE(snap.p50_ms, 6.0);  // only the newest 4 samples remain
}

// ---- Admission -------------------------------------------------------------

TEST(Admission, RejectsEveryMalformedShape) {
  AdmissionPolicy policy;
  policy.expected_height = kSide;
  policy.expected_width = kSide;
  EXPECT_NO_THROW(validate_image(valid_image(), policy));
  EXPECT_THROW(validate_image(Tensor{}, policy), InvalidInputError);
  EXPECT_THROW(validate_image(Tensor::ones(Shape{3, kSide}), policy),
               InvalidInputError);  // wrong rank
  EXPECT_THROW(validate_image(Tensor::ones(Shape{1, kSide, kSide}), policy),
               InvalidInputError);  // wrong channel count
  EXPECT_THROW(validate_image(Tensor::ones(Shape{3, kSide, kSide * 2}),
                              policy),
               InvalidInputError);  // wrong geometry for the model
}

TEST(Admission, RejectsNonFiniteAndOutOfRangePixels) {
  AdmissionPolicy policy;
  Tensor nan_img = Tensor::full(Shape{3, 4, 4}, 0.5f);
  nan_img.at(7) = std::nanf("");
  EXPECT_THROW(validate_image(nan_img, policy), InvalidInputError);

  Tensor inf_img = Tensor::full(Shape{3, 4, 4}, 0.5f);
  inf_img.at(0) = std::numeric_limits<float>::infinity();
  EXPECT_THROW(validate_image(inf_img, policy), InvalidInputError);

  Tensor hot_img = Tensor::full(Shape{3, 4, 4}, 0.5f);
  hot_img.at(3) = 2.5f;
  EXPECT_THROW(validate_image(hot_img, policy), InvalidInputError);

  Tensor cold_img = Tensor::full(Shape{3, 4, 4}, 0.5f);
  cold_img.at(3) = -1.0f;
  EXPECT_THROW(validate_image(cold_img, policy), InvalidInputError);
}

// ---- FaultSpec parsing -----------------------------------------------------

TEST(FaultSpecParse, AcceptsComputeFailpoints) {
  const io::FaultSpec slow = io::FaultSpec::parse("slow-worker:25");
  EXPECT_EQ(slow.kind, io::FaultSpec::Kind::kSlowWorker);
  EXPECT_EQ(slow.arg, 25);
  const io::FaultSpec crash = io::FaultSpec::parse("worker-throw:3");
  EXPECT_EQ(crash.kind, io::FaultSpec::Kind::kWorkerThrow);
  EXPECT_EQ(crash.arg, 3);
  EXPECT_THROW(io::FaultSpec::parse("worker-throw:0"), Error);
  EXPECT_THROW(io::FaultSpec::parse("slow-banana:4"), Error);
}

// ---- InferenceService ------------------------------------------------------

TEST_F(ServeTest, ServesConcurrentTrafficAndReportsStats) {
  InferenceService service(make_replicas(2), base_config());
  EXPECT_EQ(service.workers(), 2u);
  std::vector<std::future<InferenceResult>> futures;
  for (int i = 0; i < 8; ++i) {
    futures.push_back(service.submit(valid_image(static_cast<uint64_t>(i))));
  }
  for (auto& f : futures) {
    const InferenceResult r = f.get();
    EXPECT_EQ(r.prediction.probs.numel(), 4);
    EXPECT_FALSE(r.degraded);
    EXPECT_EQ(r.filter, "LAP(4)");
    EXPECT_GE(r.total_ms, r.infer_ms);
  }
  const ServiceStats stats = service.stats();
  EXPECT_EQ(stats.submitted, 8);
  EXPECT_EQ(stats.completed, 8);
  EXPECT_EQ(stats.latency_samples, 8);
  EXPECT_LE(stats.p50_ms, stats.p95_ms);
  EXPECT_LE(stats.p95_ms, stats.p99_ms);
  EXPECT_EQ(stats.breaker_state, "closed");
  service.shutdown();
  EXPECT_EQ(service.stats().queue_depth, 0);
}

TEST_F(ServeTest, SynchronousClassifyWorks) {
  InferenceService service(make_replicas(1), base_config());
  const InferenceResult r = service.classify(valid_image());
  EXPECT_GE(r.prediction.confidence, 0.0f);
  EXPECT_LE(r.prediction.confidence, 1.0f);
}

TEST_F(ServeTest, AdmissionRejectsAtTheBoundary) {
  InferenceService service(make_replicas(1), base_config());
  Tensor poisoned = valid_image();
  poisoned.at(11) = std::nanf("");
  EXPECT_THROW((void)service.submit(std::move(poisoned)), InvalidInputError);
  EXPECT_THROW((void)service.submit(Tensor::ones(Shape{1, kSide, kSide})),
               InvalidInputError);
  const ServiceStats stats = service.stats();
  EXPECT_EQ(stats.rejected_input, 2);
  EXPECT_EQ(stats.submitted, 0);  // never queued
}

TEST_F(ServeTest, DeadlineExpiredInQueueIsRejectedUnrun) {
  ServiceConfig config = base_config();
  InferenceService service(make_replicas(1), config);
  io::FaultInjector::instance().arm("slow-worker:60");
  // First request occupies the only worker for >= 60 ms...
  std::future<InferenceResult> slow = service.submit(valid_image());
  // ...so this 10 ms deadline is long gone when it is dequeued.
  std::future<InferenceResult> doomed =
      service.submit(valid_image(), milliseconds(10));
  EXPECT_THROW((void)doomed.get(), DeadlineExceededError);
  io::FaultInjector::instance().disarm();
  EXPECT_NO_THROW((void)slow.get());
  const ServiceStats stats = service.stats();
  EXPECT_EQ(stats.timed_out, 1);
  EXPECT_EQ(stats.completed, 1);
}

TEST_F(ServeTest, LateResultIsAbandonedNeverReturnedStale) {
  InferenceService service(make_replicas(1), base_config());
  io::FaultInjector::instance().arm("slow-worker:250");
  // Dequeued immediately (deadline still alive), finishes way too late.
  // The 50 ms deadline gives even a TSan-slowed worker time to dequeue
  // before expiry, so this deterministically hits the "abandoned" path.
  std::future<InferenceResult> late =
      service.submit(valid_image(), milliseconds(50));
  try {
    (void)late.get();
    FAIL() << "stale result was returned";
  } catch (const DeadlineExceededError& e) {
    EXPECT_NE(std::string(e.what()).find("abandoned"), std::string::npos);
  }
  EXPECT_GE(io::FaultInjector::instance().computes_seen(), 1);
  const ServiceStats stats = service.stats();
  EXPECT_EQ(stats.timed_out, 1);
  EXPECT_EQ(stats.completed, 0);
  EXPECT_EQ(stats.worker_failures, 0);  // the worker itself was healthy
}

TEST_F(ServeTest, EnvVarFailpointSpecDrivesTheService) {
  // Operators arm a whole process run with FADEML_FAILPOINT (the injector
  // reads it once at startup); replay that route by parsing the exact env
  // string into the same injector.
  ::setenv("FADEML_FAILPOINT", "worker-throw:1", 1);
  io::FaultInjector::instance().arm(
      io::FaultSpec::parse(std::getenv("FADEML_FAILPOINT")));
  ::unsetenv("FADEML_FAILPOINT");
  InferenceService service(make_replicas(1), base_config());
  EXPECT_THROW((void)service.classify(valid_image()), Error);
  EXPECT_EQ(service.stats().worker_failures, 1);
  // The failpoint disarmed itself after firing once; service recovered.
  EXPECT_FALSE(io::FaultInjector::instance().armed());
  EXPECT_NO_THROW((void)service.classify(valid_image()));
}

TEST_F(ServeTest, OverloadShedsWithQueueFullError) {
  ServiceConfig config = base_config();
  config.queue_capacity = 1;
  config.overload_policy = OverloadPolicy::kShed;
  InferenceService service(make_replicas(1), config);
  io::FaultInjector::instance().arm("slow-worker:80");

  std::future<InferenceResult> running = service.submit(valid_image());
  // Wait until the worker picked it up, so the queue is empty again.
  ASSERT_TRUE(eventually([&] { return service.stats().queue_depth == 0; }));
  std::future<InferenceResult> queued = service.submit(valid_image());
  EXPECT_THROW((void)service.submit(valid_image()), QueueFullError);

  io::FaultInjector::instance().disarm();
  EXPECT_NO_THROW((void)running.get());
  EXPECT_NO_THROW((void)queued.get());
  const ServiceStats stats = service.stats();
  EXPECT_EQ(stats.shed, 1);
  EXPECT_EQ(stats.completed, 2);
}

TEST_F(ServeTest, BlockPolicyAppliesBackpressureInsteadOfShedding) {
  ServiceConfig config = base_config();
  config.queue_capacity = 1;
  config.overload_policy = OverloadPolicy::kBlock;
  InferenceService service(make_replicas(1), config);
  io::FaultInjector::instance().arm("slow-worker:30");

  std::vector<std::future<InferenceResult>> futures;
  futures.push_back(service.submit(valid_image()));
  ASSERT_TRUE(eventually([&] { return service.stats().queue_depth == 0; }));
  futures.push_back(service.submit(valid_image()));  // fills the queue
  futures.push_back(service.submit(valid_image()));  // blocks, then lands
  io::FaultInjector::instance().disarm();
  for (auto& f : futures) {
    EXPECT_NO_THROW((void)f.get());
  }
  const ServiceStats stats = service.stats();
  EXPECT_EQ(stats.shed, 0);
  EXPECT_EQ(stats.completed, 3);
}

TEST_F(ServeTest, BreakerTripsFailsFastAndRecoversViaProbe) {
  ServiceConfig config = base_config();
  config.breaker.failure_threshold = 3;
  config.breaker.cooldown = milliseconds(150);
  InferenceService service(make_replicas(1), config);
  io::FaultInjector::instance().arm("worker-throw:3");

  for (int i = 0; i < 3; ++i) {
    std::future<InferenceResult> f = service.submit(valid_image());
    EXPECT_THROW((void)f.get(), Error);  // the injected worker failure
  }
  ASSERT_EQ(service.stats().breaker_state, "open");
  EXPECT_EQ(service.stats().breaker_trips, 1);
  EXPECT_EQ(service.stats().worker_failures, 3);

  // Open: fail fast without queueing.
  EXPECT_THROW((void)service.submit(valid_image()), CircuitOpenError);
  EXPECT_EQ(service.stats().breaker_rejected, 1);

  // After the cooldown the next request is the half-open probe; the
  // failpoint is exhausted, so it succeeds and closes the breaker.
  std::this_thread::sleep_for(milliseconds(250));
  std::future<InferenceResult> probe = service.submit(valid_image());
  EXPECT_NO_THROW((void)probe.get());
  ASSERT_TRUE(
      eventually([&] { return service.stats().breaker_state == "closed"; }));
  EXPECT_NO_THROW((void)service.submit(valid_image()).get());
}

TEST_F(ServeTest, FailedProbeReopensTheBreaker) {
  ServiceConfig config = base_config();
  config.breaker.failure_threshold = 1;
  config.breaker.cooldown = milliseconds(0);
  InferenceService service(make_replicas(1), config);
  io::FaultInjector::instance().arm("worker-throw:2");

  EXPECT_THROW((void)service.submit(valid_image()).get(), Error);  // trip 1
  EXPECT_THROW((void)service.submit(valid_image()).get(), Error);  // probe fails
  EXPECT_EQ(service.stats().breaker_trips, 2);
  // Failpoint exhausted: the next probe succeeds and service resumes.
  EXPECT_NO_THROW((void)service.submit(valid_image()).get());
  ASSERT_TRUE(
      eventually([&] { return service.stats().breaker_state == "closed"; }));
}

TEST_F(ServeTest, SustainedBacklogFallsBackToDegradedFilter) {
  ServiceConfig config = base_config();
  config.degrade_queue_depth = 1;
  config.degraded_filter = filters::make_identity();
  InferenceService service(make_replicas(1), config);
  io::FaultInjector::instance().arm("slow-worker:40");

  std::future<InferenceResult> first = service.submit(valid_image());
  ASSERT_TRUE(eventually([&] { return service.stats().queue_depth == 0; }));
  // Two more while the worker sleeps: when `second` is dequeued, `third`
  // is still waiting behind it -> degraded; when `third` is dequeued the
  // backlog is gone -> full-quality filter again.
  std::future<InferenceResult> second = service.submit(valid_image());
  std::future<InferenceResult> third = service.submit(valid_image());

  EXPECT_FALSE(first.get().degraded);
  const InferenceResult degraded = second.get();
  EXPECT_TRUE(degraded.degraded);
  EXPECT_EQ(degraded.filter, "NoFilter");
  const InferenceResult recovered = third.get();
  EXPECT_FALSE(recovered.degraded);
  EXPECT_EQ(recovered.filter, "LAP(4)");
  io::FaultInjector::instance().disarm();
  const ServiceStats stats = service.stats();
  EXPECT_EQ(stats.degraded, 1);
  EXPECT_EQ(stats.completed, 3);
}

TEST_F(ServeTest, ShutdownDrainsEveryAdmittedRequest) {
  ServiceConfig config = base_config();
  config.queue_capacity = 32;
  InferenceService service(make_replicas(2), config);
  std::vector<std::future<InferenceResult>> futures;
  for (int i = 0; i < 12; ++i) {
    futures.push_back(service.submit(valid_image(static_cast<uint64_t>(i))));
  }
  service.shutdown();  // drain-then-join: nothing admitted is dropped
  for (auto& f : futures) {
    EXPECT_NO_THROW((void)f.get());
  }
  EXPECT_EQ(service.stats().completed, 12);
  EXPECT_EQ(service.stats().queue_depth, 0);
  EXPECT_THROW((void)service.submit(valid_image()), ShutdownError);
}

TEST_F(ServeTest, ShutdownMidFlightWaitsForTheSlowWorker) {
  InferenceService service(make_replicas(1), base_config());
  io::FaultInjector::instance().arm("slow-worker:30");
  std::vector<std::future<InferenceResult>> futures;
  for (int i = 0; i < 3; ++i) {
    futures.push_back(service.submit(valid_image()));
  }
  service.shutdown();
  io::FaultInjector::instance().disarm();
  for (auto& f : futures) {
    EXPECT_NO_THROW((void)f.get());
  }
  EXPECT_EQ(service.stats().completed, 3);
}

TEST_F(ServeTest, ShutdownUnblocksSubmitterStuckInBlockPolicy) {
  // Regression audit: a caller blocked in submit() under kBlock (queue
  // full, worker wedged) must receive ShutdownError promptly when
  // shutdown() runs — never deadlock against the drain. The queue's
  // close() wakes blocked producers, and submit() converts the wake into
  // the typed error after reverting its admission accounting.
  ServiceConfig config = base_config();
  config.queue_capacity = 1;
  config.overload_policy = OverloadPolicy::kBlock;
  InferenceService service(make_replicas(1), config);
  // Slow enough that the worker is still wedged on the first request
  // when shutdown() fires below, even on a loaded single-core runner.
  io::FaultInjector::instance().arm("slow-worker:400");

  auto in_flight = service.submit(valid_image(0));  // worker takes this
  ASSERT_TRUE(eventually(
      [&] { return io::FaultInjector::instance().computes_seen() >= 1; }));
  auto queued = service.submit(valid_image(1));  // fills the queue

  std::atomic<bool> blocked_entered{false};
  std::atomic<bool> got_shutdown_error{false};
  std::thread submitter([&] {
    blocked_entered.store(true);
    try {
      (void)service.submit(valid_image(2));  // blocks: queue full
    } catch (const ShutdownError&) {
      got_shutdown_error.store(true);
    }
  });
  ASSERT_TRUE(eventually([&] { return blocked_entered.load(); }));
  // Give the submitter time to actually park on the full queue.
  std::this_thread::sleep_for(milliseconds(30));

  const auto t0 = std::chrono::steady_clock::now();
  service.shutdown();  // must wake the blocked submitter, then drain
  submitter.join();
  io::FaultInjector::instance().disarm();
  EXPECT_LT(std::chrono::steady_clock::now() - t0, milliseconds(5000));
  EXPECT_TRUE(got_shutdown_error.load());

  // Everything admitted before shutdown still drained normally.
  EXPECT_NO_THROW((void)in_flight.get());
  EXPECT_NO_THROW((void)queued.get());
  EXPECT_EQ(service.stats().completed, 2);
  // The reverted third submit never counts as submitted-but-lost.
  EXPECT_EQ(service.stats().submitted, service.stats().completed);
}

TEST_F(ServeTest, DegradedAndPrimaryPipelinesAgreeOnShape) {
  // The degraded twin shares the worker's model, so its predictions have
  // the same class space — only the pre-processing differs.
  ServiceConfig config = base_config();
  config.degrade_queue_depth = 1;
  InferenceService service(make_replicas(1), config);
  const InferenceResult r = service.classify(valid_image());
  EXPECT_EQ(r.prediction.probs.numel(), 4);
  float sum = 0.0f;
  for (int64_t i = 0; i < r.prediction.probs.numel(); ++i) {
    sum += r.prediction.probs.at(i);
  }
  EXPECT_NEAR(sum, 1.0f, 1e-4f);
}

// ---- micro-batching --------------------------------------------------------

TEST(BoundedQueue, PopUntilTimesOutAndDelivers) {
  BoundedQueue<int> q(4);
  // Nothing queued: pop_until returns nullopt once the deadline passes.
  const auto t0 = std::chrono::steady_clock::now();
  EXPECT_FALSE(q.pop_until(t0 + milliseconds(10)).has_value());
  EXPECT_GE(std::chrono::steady_clock::now(), t0 + milliseconds(10));
  // Queued item: delivered immediately, FIFO order preserved.
  EXPECT_TRUE(q.try_push(1));
  EXPECT_TRUE(q.try_push(2));
  auto a = q.pop_until(std::chrono::steady_clock::now() + milliseconds(100));
  ASSERT_TRUE(a.has_value());
  EXPECT_EQ(*a, 1);
  // Closed and drained: nullopt without waiting for the deadline.
  q.close();
  auto b = q.pop_until(std::chrono::steady_clock::now() + milliseconds(100));
  ASSERT_TRUE(b.has_value());
  EXPECT_EQ(*b, 2);
  EXPECT_FALSE(
      q.pop_until(std::chrono::steady_clock::now() + std::chrono::hours(1))
          .has_value());
}

TEST_F(ServeTest, MicroBatchingCoalescesAndMatchesPerRequest) {
  ServiceConfig config = base_config();
  config.max_batch = 4;
  config.batch_window = milliseconds(500);
  InferenceService service(make_replicas(1), config);

  // Reference predictions from an identical standalone pipeline: batched
  // serving must be invisible in the results (predict_batch rows are
  // bitwise identical to per-image predicts).
  const auto reference = make_replica();
  reference->model().set_training(false);

  std::vector<Tensor> images;
  std::vector<std::future<InferenceResult>> futures;
  for (uint64_t i = 0; i < 4; ++i) {
    images.push_back(valid_image(i));
  }
  for (const Tensor& image : images) {
    futures.push_back(service.submit(image.clone()));
  }
  for (size_t i = 0; i < futures.size(); ++i) {
    const InferenceResult r = futures[i].get();
    const core::Prediction expected =
        reference->predict(images[i], core::ThreatModel::kIII);
    EXPECT_EQ(r.prediction.label, expected.label);
    EXPECT_EQ(r.prediction.confidence, expected.confidence);
    EXPECT_EQ(r.filter, "LAP(4)");
    EXPECT_FALSE(r.degraded);
  }
  const ServiceStats stats = service.stats();
  EXPECT_EQ(stats.completed, 4);
  ASSERT_GE(stats.batches, 1);
  EXPECT_LE(stats.batches, 4);
  // Histogram accounts for every live request exactly once.
  int64_t weighted = 0;
  for (size_t i = 0; i < stats.batch_occupancy.size(); ++i) {
    weighted += stats.batch_occupancy[i] * static_cast<int64_t>(i + 1);
  }
  EXPECT_EQ(weighted, 4);
  EXPECT_GE(stats.mean_batch_occupancy, 1.0);
}

TEST_F(ServeTest, GatherNeverOutlivesAnInHandDeadline) {
  // A lone request with a tight deadline must be served promptly even
  // though the batch window is far longer: the gather deadline shrinks to
  // the earliest deadline in hand.
  ServiceConfig config = base_config();
  config.max_batch = 8;
  config.batch_window = milliseconds(2000);
  InferenceService service(make_replicas(1), config);
  auto future = service.submit(valid_image(), milliseconds(500));
  const InferenceResult r = future.get();  // would throw if expired
  EXPECT_EQ(r.prediction.probs.numel(), 4);
  EXPECT_EQ(service.stats().timed_out, 0);
}

TEST_F(ServeTest, ExpiredRequestIsDroppedFromGatherNotBatch) {
  // r1 holds the worker; r2's deadline expires while it waits in the
  // queue; r3 is healthy. The gathered {r2, r3} round must fail r2 unrun
  // and still serve r3.
  ServiceConfig config = base_config();
  config.max_batch = 2;
  config.batch_window = milliseconds(5);
  InferenceService service(make_replicas(1), config);
  io::FaultInjector::instance().arm("slow-worker:150");
  auto r1 = service.submit(valid_image(1));
  ASSERT_TRUE(eventually(
      [&] { return io::FaultInjector::instance().computes_seen() >= 1; }));
  auto r2 = service.submit(valid_image(2), milliseconds(30));
  auto r3 = service.submit(valid_image(3));
  EXPECT_NO_THROW(r1.get());
  EXPECT_THROW(r2.get(), DeadlineExceededError);
  EXPECT_NO_THROW(r3.get());
  const ServiceStats stats = service.stats();
  EXPECT_EQ(stats.timed_out, 1);
  EXPECT_EQ(stats.completed, 2);
}

TEST_F(ServeTest, BatchedFaultFallsBackToPerRequestIsolation) {
  // worker-throw fires during the shared batched evaluation; the fallback
  // reruns each request individually, so neither caller sees the fault
  // and no worker failure is recorded against innocent requests.
  ServiceConfig config = base_config();
  config.max_batch = 2;
  config.batch_window = milliseconds(500);
  InferenceService service(make_replicas(1), config);
  io::FaultInjector::instance().arm("worker-throw:1");
  auto a = service.submit(valid_image(1));
  auto b = service.submit(valid_image(2));
  EXPECT_NO_THROW(a.get());
  EXPECT_NO_THROW(b.get());
  const ServiceStats stats = service.stats();
  EXPECT_EQ(stats.completed, 2);
  EXPECT_EQ(stats.worker_failures, 0);
  EXPECT_EQ(stats.breaker_state, "closed");
}

TEST_F(ServeTest, BacklogDegradesWholeBatches) {
  // Micro-batching composes with graceful degradation: a batch formed
  // while a backlog waits behind it degrades as one unit and reports the
  // fallback filter's provenance on every member.
  ServiceConfig config = base_config();
  config.max_batch = 2;
  config.batch_window = milliseconds(2);
  config.degrade_queue_depth = 2;
  config.queue_capacity = 64;
  InferenceService service(make_replicas(1), config);
  io::FaultInjector::instance().arm("slow-worker:100");
  std::vector<std::future<InferenceResult>> futures;
  for (uint64_t i = 0; i < 10; ++i) {
    futures.push_back(service.submit(valid_image(i)));
  }
  int64_t degraded = 0;
  for (auto& f : futures) {
    const InferenceResult r = f.get();
    if (r.degraded) {
      EXPECT_EQ(r.filter, "NoFilter");
      ++degraded;
    } else {
      EXPECT_EQ(r.filter, "LAP(4)");
    }
  }
  EXPECT_GE(degraded, 1);
  EXPECT_EQ(service.stats().degraded, degraded);
}

// Regression: submit() used to count on_submitted() only *after* the
// queue push, so a worker could dequeue and complete the request before
// it was ever counted — a concurrent stats() snapshot then reported
// completed > submitted. Admission is counted pre-push now (compensated
// on shed/shutdown); a reader thread asserts the invariant on every
// snapshot while submitters hammer a shedding queue.
TEST_F(ServeTest, StatsNeverReportMoreCompletedThanSubmitted) {
  ServiceConfig config = base_config();
  config.queue_capacity = 4;
  config.overload_policy = OverloadPolicy::kShed;
  InferenceService service(make_replicas(2), config);

  std::atomic<bool> stop{false};
  std::atomic<int64_t> violations{0};
  std::thread reader([&] {
    while (!stop.load()) {
      const ServiceStats s = service.stats();
      if (s.completed > s.submitted || s.degraded > s.completed) {
        ++violations;
      }
    }
  });

  constexpr int kSubmitters = 4;
  constexpr int kPerThread = 30;
  std::atomic<int64_t> accepted{0};
  std::atomic<int64_t> shed{0};
  std::vector<std::thread> submitters;
  for (int t = 0; t < kSubmitters; ++t) {
    submitters.emplace_back([&, t] {
      std::vector<std::future<InferenceResult>> futures;
      for (int i = 0; i < kPerThread; ++i) {
        try {
          futures.push_back(service.submit(
              valid_image(static_cast<uint64_t>(t * kPerThread + i))));
          ++accepted;
        } catch (const QueueFullError&) {
          ++shed;
        }
      }
      for (auto& f : futures) {
        EXPECT_NO_THROW((void)f.get());
      }
    });
  }
  for (std::thread& th : submitters) {
    th.join();
  }
  ASSERT_TRUE(eventually(
      [&] { return service.stats().completed == accepted.load(); }));
  stop = true;
  reader.join();
  EXPECT_EQ(violations.load(), 0);

  // Shed submissions were compensated: `submitted` counts only requests
  // the queue actually admitted. The service's metric registry carries
  // the same accounting (one vocabulary for snapshot and JSON export).
  const ServiceStats stats = service.stats();
  EXPECT_EQ(stats.submitted, accepted.load());
  EXPECT_EQ(stats.completed, accepted.load());
  EXPECT_EQ(stats.shed, shed.load());
  const std::string json = service.metrics().to_json();
  EXPECT_NE(
      json.find("\"serve.submitted\":" + std::to_string(stats.submitted)),
      std::string::npos)
      << json;
  EXPECT_NE(json.find("\"serve.shed\":" + std::to_string(stats.shed)),
            std::string::npos)
      << json;
}

TEST_F(ServeTest, ShutdownDrainsGatheredBatches) {
  // Requests admitted before shutdown complete even when they are sitting
  // in a worker's gather when close() lands.
  ServiceConfig config = base_config();
  config.max_batch = 8;
  config.batch_window = milliseconds(300);
  auto service = std::make_unique<InferenceService>(make_replicas(1), config);
  std::vector<std::future<InferenceResult>> futures;
  for (uint64_t i = 0; i < 3; ++i) {
    futures.push_back(service->submit(valid_image(i)));
  }
  service->shutdown();
  for (auto& f : futures) {
    EXPECT_NO_THROW(f.get());
  }
}

}  // namespace
}  // namespace fademl::serve
