// Tests for the CLI-supporting utilities: ArgParser, the visualization
// helpers (heatmap / montage / attack panel), and the confusion-matrix
// metrics.

#include <cstdio>
#include <filesystem>

#include <gtest/gtest.h>

#include "fademl/core/metrics.hpp"
#include "fademl/io/args.hpp"
#include "fademl/io/image_io.hpp"
#include "fademl/io/visualize.hpp"
#include "fademl/tensor/error.hpp"
#include "fademl/tensor/ops.hpp"
#include "test_fixtures.hpp"

namespace fademl {
namespace {

// ---- ArgParser ---------------------------------------------------------------

io::ArgParser make_parser() {
  return io::ArgParser("test tool", {"name", "count", "ratio", "verbose!"});
}

TEST(ArgParser, ParsesValuesFlagsAndPositionals) {
  auto p = make_parser();
  const char* argv[] = {"--name",    "stop", "--count", "7",
                        "--verbose", "input.ppm"};
  p.parse(6, argv);
  EXPECT_EQ(p.get("name", ""), "stop");
  EXPECT_EQ(p.get_int("count", 0), 7);
  EXPECT_TRUE(p.has("verbose"));
  EXPECT_FALSE(p.has("ratio"));
  ASSERT_EQ(p.positional().size(), 1u);
  EXPECT_EQ(p.positional()[0], "input.ppm");
}

TEST(ArgParser, SupportsEqualsSyntax) {
  auto p = make_parser();
  const char* argv[] = {"--ratio=0.25", "--name=x"};
  p.parse(2, argv);
  EXPECT_DOUBLE_EQ(p.get_double("ratio", 0.0), 0.25);
  EXPECT_EQ(p.get("name", ""), "x");
}

TEST(ArgParser, FallbacksWhenAbsent) {
  auto p = make_parser();
  p.parse(0, nullptr);
  EXPECT_EQ(p.get("name", "dflt"), "dflt");
  EXPECT_EQ(p.get_int("count", 42), 42);
  EXPECT_DOUBLE_EQ(p.get_double("ratio", 1.5), 1.5);
}

TEST(ArgParser, RejectsUnknownAndMalformed) {
  auto p = make_parser();
  const char* unknown[] = {"--bogus", "1"};
  EXPECT_THROW(p.parse(2, unknown), Error);
  auto p2 = make_parser();
  const char* missing[] = {"--name"};
  EXPECT_THROW(p2.parse(1, missing), Error);
  auto p3 = make_parser();
  const char* flag_with_value[] = {"--verbose=1"};
  EXPECT_THROW(p3.parse(1, flag_with_value), Error);
  auto p4 = make_parser();
  const char* bad_int[] = {"--count", "seven"};
  p4.parse(2, bad_int);
  EXPECT_THROW(p4.get_int("count", 0), Error);
  EXPECT_THROW(p4.get("unregistered", ""), Error);
}

// Regression: get_int/get_double used to ignore errno == ERANGE, silently
// returning the saturated LLONG_MAX / HUGE_VAL instead of failing.
TEST(ArgParser, RejectsOutOfRangeNumbers) {
  auto p = make_parser();
  const char* overflow[] = {"--count", "99999999999999999999"};
  p.parse(2, overflow);
  EXPECT_THROW(p.get_int("count", 0), Error);

  auto p2 = make_parser();
  const char* huge[] = {"--ratio", "1e999"};
  p2.parse(2, huge);
  EXPECT_THROW(p2.get_double("ratio", 0.0), Error);

  // Underflow-to-zero is equally not the number the user wrote.
  auto p3 = make_parser();
  const char* tiny[] = {"--ratio", "1e-999"};
  p3.parse(2, tiny);
  EXPECT_THROW(p3.get_double("ratio", 0.0), Error);

  // In-range values keep parsing exactly as before.
  auto p4 = make_parser();
  const char* fine[] = {"--count", "9223372036854775807", "--ratio", "1e30"};
  p4.parse(4, fine);
  EXPECT_EQ(p4.get_int("count", 0), INT64_MAX);
  EXPECT_DOUBLE_EQ(p4.get_double("ratio", 0.0), 1e30);
}

// Regression: "--opt=" (usually an unset shell variable) used to be
// accepted as an empty string and then fall back to defaults downstream;
// it is a parse error now.
TEST(ArgParser, RejectsExplicitEmptyValue) {
  auto p = make_parser();
  const char* empty_value[] = {"--name="};
  EXPECT_THROW(p.parse(1, empty_value), Error);
  auto p2 = make_parser();
  const char* empty_num[] = {"--count="};
  EXPECT_THROW(p2.parse(1, empty_num), Error);
}

TEST(ArgParser, UsageMentionsEveryOption) {
  const auto p = make_parser();
  const std::string usage = p.usage("prog");
  EXPECT_NE(usage.find("--name <value>"), std::string::npos);
  EXPECT_NE(usage.find("--verbose]"), std::string::npos);
  EXPECT_THROW(io::ArgParser("dup", {"a", "a"}), Error);
}

// ---- visualization -----------------------------------------------------------

TEST(Visualize, ChannelSumCollapsesChannels) {
  Tensor img = Tensor::zeros(Shape{3, 2, 2});
  img.at({0, 0, 0}) = 0.5f;
  img.at({1, 0, 0}) = 0.25f;
  img.at({2, 1, 1}) = -1.0f;
  const Tensor summed = io::channel_sum(img);
  EXPECT_EQ(summed.shape(), Shape({2, 2}));
  EXPECT_FLOAT_EQ(summed.at({0, 0}), 0.75f);
  EXPECT_FLOAT_EQ(summed.at({1, 1}), -1.0f);
}

TEST(Visualize, HeatmapDivergesCorrectly) {
  Tensor map2d{Shape{1, 3}, {-1.0f, 0.0f, 1.0f}};
  const Tensor hm = io::heatmap(map2d, 1.0f);
  EXPECT_EQ(hm.shape(), Shape({3, 1, 3}));
  // Negative -> blue (B=1, R=0), zero -> white, positive -> red (R=1, B=0).
  EXPECT_FLOAT_EQ(hm.at({2, 0, 0}), 1.0f);
  EXPECT_FLOAT_EQ(hm.at({0, 0, 0}), 0.0f);
  EXPECT_FLOAT_EQ(hm.at({0, 0, 1}), 1.0f);
  EXPECT_FLOAT_EQ(hm.at({1, 0, 1}), 1.0f);
  EXPECT_FLOAT_EQ(hm.at({2, 0, 1}), 1.0f);
  EXPECT_FLOAT_EQ(hm.at({0, 0, 2}), 1.0f);
  EXPECT_FLOAT_EQ(hm.at({2, 0, 2}), 0.0f);
}

TEST(Visualize, HeatmapAutoScales) {
  Tensor map2d{Shape{1, 2}, {0.0f, 0.05f}};
  const Tensor hm = io::heatmap(map2d);  // auto-scale: 0.05 -> saturated
  EXPECT_NEAR(hm.at({1, 0, 1}), 0.0f, 1e-5f);  // fully red
}

TEST(Visualize, MontageTilesInRowMajorOrder) {
  const Tensor a = Tensor::full(Shape{3, 2, 2}, 0.1f);
  const Tensor b = Tensor::full(Shape{3, 2, 2}, 0.9f);
  const Tensor m = io::montage({a, b, a}, 2);
  // 2 rows x 2 columns of 2x2 tiles + 1px separators: 5 x 5.
  EXPECT_EQ(m.shape(), Shape({3, 5, 5}));
  EXPECT_FLOAT_EQ(m.at({0, 0, 0}), 0.1f);   // tile a
  EXPECT_FLOAT_EQ(m.at({0, 0, 3}), 0.9f);   // tile b
  EXPECT_FLOAT_EQ(m.at({0, 0, 2}), 0.5f);   // separator
  EXPECT_FLOAT_EQ(m.at({0, 3, 0}), 0.1f);   // second-row tile
  EXPECT_FLOAT_EQ(m.at({0, 3, 3}), 0.5f);   // empty cell stays background
  EXPECT_THROW(io::montage({}, 2), Error);
  EXPECT_THROW(io::montage({a, Tensor::zeros(Shape{3, 3, 3})}, 2), Error);
}

TEST(Visualize, AttackPanelWritesReadablePpm) {
  const Tensor clean = data::canonical_sample(14, 16);
  Tensor adv = clean.clone();
  adv.at({0, 8, 8}) += 0.2f;
  const std::string path =
      (std::filesystem::temp_directory_path() / "fademl_panel.ppm").string();
  const Tensor panel = io::save_attack_panel(path, clean, adv);
  EXPECT_EQ(panel.dim(1), 16);
  EXPECT_EQ(panel.dim(2), 16 * 3 + 2);
  const Tensor back = io::read_ppm(path);
  EXPECT_EQ(back.shape(), panel.shape());
  std::remove(path.c_str());
}

// ---- confusion matrix ---------------------------------------------------------

TEST(ConfusionMatrix, CountsAndDerivedMetrics) {
  core::ConfusionMatrix cm(3);
  cm.record(0, 0);
  cm.record(0, 0);
  cm.record(0, 1);
  cm.record(1, 1);
  cm.record(2, 1);
  EXPECT_EQ(cm.total(), 5);
  EXPECT_EQ(cm.count(0, 1), 1);
  EXPECT_NEAR(cm.accuracy(), 3.0 / 5.0, 1e-12);
  EXPECT_NEAR(cm.recall(0), 2.0 / 3.0, 1e-12);
  EXPECT_NEAR(cm.precision(1), 1.0 / 3.0, 1e-12);
  EXPECT_DOUBLE_EQ(cm.recall(2), 0.0);
  const auto top = cm.top_confusions(5);
  ASSERT_EQ(top.size(), 2u);
  EXPECT_EQ(top[0].count, 1);
  EXPECT_THROW(cm.record(3, 0), Error);
  EXPECT_THROW(core::ConfusionMatrix(0), Error);
}

TEST(ConfusionMatrix, PipelineEvaluationMatchesAccuracy) {
  const auto pipeline =
      fademl::testing::tiny_pipeline(filters::make_identity());
  const auto& w = fademl::testing::tiny_world();
  const core::ConfusionMatrix cm = core::confusion_matrix(
      pipeline, w.train_images, w.train_labels, core::ThreatModel::kI);
  const auto acc = pipeline.accuracy(w.train_images, w.train_labels,
                                     core::ThreatModel::kI);
  EXPECT_NEAR(cm.accuracy(), acc.top1, 1e-9);
  EXPECT_EQ(cm.total(), static_cast<int64_t>(w.train_images.size()));
}

// Regression: confusion_matrix used to walk images one-by-one (plus an
// extra forward just to count classes). It now routes through
// predict_batch in chunks; this pins the batched counts to the per-image
// reference cell by cell.
TEST(ConfusionMatrix, BatchedEvaluationMatchesPerImage) {
  const auto pipeline = fademl::testing::tiny_pipeline(filters::make_lap(16));
  const auto& w = fademl::testing::tiny_world();
  const core::ConfusionMatrix batched = core::confusion_matrix(
      pipeline, w.train_images, w.train_labels, core::ThreatModel::kIII);
  core::ConfusionMatrix reference(batched.num_classes());
  for (size_t i = 0; i < w.train_images.size(); ++i) {
    reference.record(
        w.train_labels[i],
        pipeline.predict(w.train_images[i], core::ThreatModel::kIII).label);
  }
  ASSERT_EQ(batched.total(), reference.total());
  for (int64_t t = 0; t < batched.num_classes(); ++t) {
    for (int64_t p = 0; p < batched.num_classes(); ++p) {
      EXPECT_EQ(batched.count(t, p), reference.count(t, p))
          << "cell (" << t << ", " << p << ")";
    }
  }
}

}  // namespace
}  // namespace fademl
