#include "fademl/filters/filter.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>

#include <gtest/gtest.h>

#include "fademl/filters/extra.hpp"

#include "fademl/parallel/parallel.hpp"
#include "fademl/tensor/error.hpp"
#include "fademl/tensor/ops.hpp"
#include "fademl/tensor/random.hpp"
#include "reference_kernels.hpp"

namespace fademl::filters {
namespace {

Tensor random_image(uint64_t seed, int64_t c = 3, int64_t h = 12,
                    int64_t w = 10) {
  Rng rng(seed);
  return rng.uniform_tensor(Shape{c, h, w}, 0.0f, 1.0f);
}

/// Total variation along both axes — smoothing must not increase it.
float total_variation(const Tensor& img) {
  const int64_t c = img.dim(0), h = img.dim(1), w = img.dim(2);
  float tv = 0.0f;
  for (int64_t ch = 0; ch < c; ++ch) {
    for (int64_t y = 0; y < h; ++y) {
      for (int64_t x = 0; x < w; ++x) {
        if (x + 1 < w) {
          tv += std::fabs(img.at({ch, y, x + 1}) - img.at({ch, y, x}));
        }
        if (y + 1 < h) {
          tv += std::fabs(img.at({ch, y + 1, x}) - img.at({ch, y, x}));
        }
      }
    }
  }
  return tv;
}

TEST(IdentityFilter, IsANoOpWithFreshStorage) {
  IdentityFilter f;
  const Tensor x = random_image(1);
  const Tensor y = f.apply(x);
  EXPECT_FALSE(y.shares_storage_with(x));
  EXPECT_FLOAT_EQ(norm_l2(sub(x, y)), 0.0f);
  EXPECT_TRUE(f.is_linear());
  EXPECT_EQ(f.name(), "NoFilter");
}

TEST(LapFilter, RejectsBadNp) { EXPECT_THROW(LapFilter(0), Error); }

TEST(LapFilter, OffsetCountAndNearestness) {
  const LapFilter f4(4);
  ASSERT_EQ(f4.offsets().size(), 4u);
  // np=4 must be the von-Neumann cross.
  for (const auto& [dy, dx] : f4.offsets()) {
    EXPECT_EQ(std::abs(dy) + std::abs(dx), 1);
  }
  const LapFilter f8(8);
  ASSERT_EQ(f8.offsets().size(), 8u);
  // np=8 is the full 3x3 ring.
  for (const auto& [dy, dx] : f8.offsets()) {
    EXPECT_LE(std::max(std::abs(dy), std::abs(dx)), 1);
  }
}

TEST(LarFilter, DiscOffsetsIncludeCenter) {
  const LarFilter f(1);
  // r=1 disc: center + 4-cross = 5 pixels.
  EXPECT_EQ(f.offsets().size(), 5u);
  const LarFilter f2(2);
  EXPECT_EQ(f2.offsets().size(), 13u);
  EXPECT_THROW(LarFilter(0), Error);
}

TEST(Names, MatchPaperNotation) {
  EXPECT_EQ(LapFilter(32).name(), "LAP(32)");
  EXPECT_EQ(LarFilter(3).name(), "LAR(3)");
  EXPECT_EQ(MedianFilter(1).name(), "Median(1)");
  EXPECT_EQ(GaussianFilter(1.0f).name(), "Gauss(1.00)");
}

// ---- property sweep across every smoothing filter --------------------------

struct FilterCase {
  const char* label;
  FilterPtr filter;
};

class SmoothingFilterTest : public ::testing::TestWithParam<FilterCase> {};

TEST_P(SmoothingFilterTest, PreservesConstantImages) {
  const FilterPtr& f = GetParam().filter;
  const Tensor x = Tensor::full(Shape{3, 9, 9}, 0.37f);
  const Tensor y = f->apply(x);
  for (int64_t i = 0; i < y.numel(); ++i) {
    EXPECT_NEAR(y.at(i), 0.37f, 1e-5f) << GetParam().label;
  }
}

TEST_P(SmoothingFilterTest, DoesNotIncreaseTotalVariation) {
  const FilterPtr& f = GetParam().filter;
  const Tensor x = random_image(7);
  const Tensor y = f->apply(x);
  EXPECT_LE(total_variation(y), total_variation(x) * 1.0001f)
      << GetParam().label;
}

TEST_P(SmoothingFilterTest, OutputStaysInRange) {
  const FilterPtr& f = GetParam().filter;
  const Tensor x = random_image(11);
  const Tensor y = f->apply(x);
  EXPECT_GE(min(y), 0.0f) << GetParam().label;
  EXPECT_LE(max(y), 1.0f) << GetParam().label;
}

TEST_P(SmoothingFilterTest, RejectsNonImageInput) {
  const FilterPtr& f = GetParam().filter;
  EXPECT_THROW(f->apply(Tensor::ones(Shape{4, 4})), Error);
}

INSTANTIATE_TEST_SUITE_P(
    AllFilters, SmoothingFilterTest,
    ::testing::Values(FilterCase{"lap4", make_lap(4)},
                      FilterCase{"lap8", make_lap(8)},
                      FilterCase{"lap16", make_lap(16)},
                      FilterCase{"lap32", make_lap(32)},
                      FilterCase{"lap64", make_lap(64)},
                      FilterCase{"lar1", make_lar(1)},
                      FilterCase{"lar3", make_lar(3)},
                      FilterCase{"lar5", make_lar(5)},
                      FilterCase{"gauss", make_gaussian(1.2f)},
                      FilterCase{"median", make_median(1)}),
    [](const ::testing::TestParamInfo<FilterCase>& info) {
      return info.param.label;
    });

// ---- linearity + adjoint properties for the linear filters -----------------

class LinearFilterTest : public ::testing::TestWithParam<FilterCase> {};

TEST_P(LinearFilterTest, IsActuallyLinear) {
  const FilterPtr& f = GetParam().filter;
  ASSERT_TRUE(f->is_linear());
  const Tensor x = random_image(3);
  const Tensor y = random_image(4);
  const Tensor lhs = f->apply(add(mul(x, 2.0f), y));
  const Tensor rhs = add(mul(f->apply(x), 2.0f), f->apply(y));
  EXPECT_LT(norm_linf(sub(lhs, rhs)), 1e-5f) << GetParam().label;
}

TEST_P(LinearFilterTest, VjpIsTheExactAdjoint) {
  // <A x, y> == <x, A^T y> for random x, y — the property FAdeML's
  // gradient chain relies on.
  const FilterPtr& f = GetParam().filter;
  const Tensor x = random_image(5);
  const Tensor y = random_image(6);
  const float lhs = dot(f->apply(x), y);
  const float rhs = dot(x, f->vjp(x, y));
  EXPECT_NEAR(lhs, rhs, std::fabs(lhs) * 1e-4f + 1e-4f) << GetParam().label;
}

INSTANTIATE_TEST_SUITE_P(
    LinearFilters, LinearFilterTest,
    ::testing::Values(FilterCase{"identity", make_identity()},
                      FilterCase{"lap4", make_lap(4)},
                      FilterCase{"lap16", make_lap(16)},
                      FilterCase{"lap64", make_lap(64)},
                      FilterCase{"lar1", make_lar(1)},
                      FilterCase{"lar2", make_lar(2)},
                      FilterCase{"lar5", make_lar(5)},
                      FilterCase{"gauss", make_gaussian(0.8f)}),
    [](const ::testing::TestParamInfo<FilterCase>& info) {
      return info.param.label;
    });

TEST(LapFilter, StrongerSmoothingRemovesMoreNoise) {
  // Clean step image + noise: LAP(64) must reduce noise more than LAP(4).
  Rng rng(8);
  Tensor clean = Tensor::zeros(Shape{1, 16, 16});
  for (int64_t y = 0; y < 16; ++y) {
    for (int64_t x = 8; x < 16; ++x) {
      clean.at({0, y, x}) = 1.0f;
    }
  }
  Tensor noisy = add(clean, rng.normal_tensor(clean.shape(), 0.0f, 0.1f));
  const LapFilter weak(4);
  const LapFilter strong(64);
  // Compare deviation from the *smoothed clean* image, isolating the noise.
  const float weak_residual =
      norm_l2(sub(weak.apply(noisy), weak.apply(clean)));
  const float strong_residual =
      norm_l2(sub(strong.apply(noisy), strong.apply(clean)));
  EXPECT_LT(strong_residual, weak_residual);
}

TEST(MedianFilter, RemovesSaltAndPepperExactly) {
  Tensor img = Tensor::full(Shape{1, 9, 9}, 0.5f);
  img.at({0, 4, 4}) = 1.0f;  // impulse
  img.at({0, 2, 6}) = 0.0f;
  const MedianFilter f(1);
  const Tensor y = f.apply(img);
  EXPECT_FLOAT_EQ(y.at({0, 4, 4}), 0.5f);
  EXPECT_FLOAT_EQ(y.at({0, 2, 6}), 0.5f);
}

TEST(MedianFilter, BpdaVjpIsStraightThrough) {
  const MedianFilter f(1);
  const Tensor x = random_image(9);
  const Tensor g = random_image(10);
  const Tensor back = f.vjp(x, g);
  EXPECT_FLOAT_EQ(norm_l2(sub(back, g)), 0.0f);
  EXPECT_FALSE(f.is_linear());
}

TEST(FilterChain, ComposesForwardAndVjp) {
  const FilterChain chain({make_lap(4), make_lar(1)});
  const Tensor x = random_image(12);
  const Tensor manual = LarFilter(1).apply(LapFilter(4).apply(x));
  EXPECT_LT(norm_linf(sub(chain.apply(x), manual)), 1e-6f);
  EXPECT_TRUE(chain.is_linear());
  EXPECT_EQ(chain.name(), "LAP(4)+LAR(1)");
  // Chain adjoint property.
  const Tensor y = random_image(13);
  EXPECT_NEAR(dot(chain.apply(x), y), dot(x, chain.vjp(x, y)), 1e-3f);
  EXPECT_THROW(FilterChain({}), Error);
  EXPECT_THROW(FilterChain({nullptr}), Error);
}

TEST(FilterChain, NonLinearMemberMakesChainNonLinear) {
  const FilterChain chain({make_lap(4), make_median(1)});
  EXPECT_FALSE(chain.is_linear());
}

TEST(ApplyBatch, FiltersEveryImage) {
  const LapFilter f(4);
  Rng rng(14);
  const Tensor batch = rng.uniform_tensor(Shape{3, 2, 6, 6}, 0, 1);
  const Tensor out = f.apply_batch(batch);
  ASSERT_EQ(out.shape(), batch.shape());
  // Per-image equivalence with single apply.
  Tensor img{Shape{2, 6, 6}};
  std::copy(batch.data() + 72, batch.data() + 144, img.data());
  const Tensor single = f.apply(img);
  for (int64_t i = 0; i < 72; ++i) {
    EXPECT_FLOAT_EQ(out.at(72 + i), single.at(i));
  }
  EXPECT_THROW(f.apply_batch(Tensor::ones(Shape{2, 6, 6})), Error);
}

TEST(PaperSweep, HasElevenConfigsInFigureOrder) {
  const auto sweep = paper_filter_sweep();
  ASSERT_EQ(sweep.size(), 11u);
  EXPECT_EQ(sweep[0]->name(), "NoFilter");
  EXPECT_EQ(sweep[1]->name(), "LAP(4)");
  EXPECT_EQ(sweep[5]->name(), "LAP(64)");
  EXPECT_EQ(sweep[6]->name(), "LAR(1)");
  EXPECT_EQ(sweep[10]->name(), "LAR(5)");
}

TEST(Vjp, RejectsMismatchedGradientShape) {
  const LapFilter f(4);
  const Tensor x = random_image(15);
  EXPECT_THROW(f.vjp(x, Tensor::ones(Shape{3, 5, 5})), Error);
}

// ---- differential sweep across thread counts -------------------------------

/// Restores the default thread resolution on scope exit.
class ThreadGuard {
 public:
  explicit ThreadGuard(int n) { parallel::set_num_threads(n); }
  ~ThreadGuard() { parallel::set_num_threads(0); }
};

TEST(ThreadSweep, LapForwardMatchesReferenceAndIsBitwiseStable) {
  const LapFilter f(32);
  const Tensor x = random_image(21);
  const Tensor ref = fademl::testing::neighborhood_average_reference(
      x, f.offsets(), /*center_implicit=*/true);
  Tensor single;
  for (int threads : {1, 2, 7}) {
    ThreadGuard guard(threads);
    const Tensor y = f.apply(x);
    // Forward is a pure gather with unchanged per-pixel accumulation
    // order: exact equality against the definition-order reference.
    EXPECT_TRUE(fademl::testing::bitwise_equal(y, ref))
        << "threads " << threads;
    if (threads == 1) {
      single = y.clone();
    } else {
      EXPECT_TRUE(fademl::testing::bitwise_equal(y, single))
          << "threads " << threads;
    }
  }
}

TEST(ThreadSweep, LarAdjointMatchesScatterReferenceWithinTolerance) {
  const LarFilter f(3);
  const Tensor x = random_image(22);
  const Tensor g = random_image(23);
  const Tensor ref = fademl::testing::neighborhood_average_adjoint_reference(
      g, f.offsets(), /*center_implicit=*/false);
  Tensor single;
  for (int threads : {1, 2, 7}) {
    ThreadGuard guard(threads);
    const Tensor gi = f.vjp(x, g);
    ASSERT_EQ(gi.shape(), ref.shape());
    for (int64_t i = 0; i < gi.numel(); ++i) {
      // The production adjoint gathers where the reference scatters —
      // same math, different float summation order, so a small
      // accumulation-order bound instead of exact equality.
      ASSERT_NEAR(gi.at(i), ref.at(i), 1e-5f)
          << "index " << i << " threads " << threads;
    }
    if (threads == 1) {
      single = gi.clone();
    } else {
      // Across thread counts of the production kernel itself: bitwise.
      EXPECT_TRUE(fademl::testing::bitwise_equal(gi, single))
          << "threads " << threads;
    }
  }
}

TEST(ThreadSweep, AllSmoothingFiltersBitwiseStableAcrossThreadCounts) {
  const Tensor x = random_image(24);
  const Tensor batch = [] {
    Rng rng(25);
    return rng.uniform_tensor(Shape{5, 3, 12, 10}, 0.0f, 1.0f);
  }();
  for (const FilterPtr& f : paper_filter_sweep()) {
    Tensor single, single_batch;
    {
      ThreadGuard guard(1);
      single = f->apply(x);
      single_batch = f->apply_batch(batch);
    }
    for (int threads : {2, 7}) {
      ThreadGuard guard(threads);
      EXPECT_TRUE(fademl::testing::bitwise_equal(f->apply(x), single))
          << f->name() << " at " << threads << " threads";
      EXPECT_TRUE(
          fademl::testing::bitwise_equal(f->apply_batch(batch), single_batch))
          << f->name() << " apply_batch at " << threads << " threads";
    }
  }
}

TEST(ThreadSweep, DegenerateOnePixelImage) {
  // A 1x1 image: every neighborhood collapses to the center pixel (LAP)
  // or to whatever in-bounds subset remains (LAR/Gauss renormalize to the
  // center; median of one value is that value).
  const Tensor x = Tensor::full(Shape{3, 1, 1}, 0.42f);
  for (int threads : {1, 2, 7}) {
    ThreadGuard guard(threads);
    for (const FilterPtr& f :
         {make_lap(8), make_lar(2), make_gaussian(1.0f), make_median(1)}) {
      const Tensor y = f->apply(x);
      ASSERT_EQ(y.shape(), x.shape()) << f->name();
      for (int64_t i = 0; i < y.numel(); ++i) {
        EXPECT_NEAR(y.at(i), 0.42f, 1e-6f)
            << f->name() << " threads " << threads;
      }
      // Adjoint on the same degenerate geometry must stay finite and
      // satisfy <A x, y> == <x, A^T y>.
      const Tensor g = Tensor::full(x.shape(), 0.3f);
      const Tensor gi = f->vjp(x, g);
      ASSERT_EQ(gi.shape(), x.shape()) << f->name();
      const float lhs = dot(f->apply(x), g);
      const float rhs = dot(x, gi);
      if (f->is_linear()) {
        EXPECT_NEAR(lhs, rhs, std::fabs(lhs) * 1e-4f + 1e-4f) << f->name();
      }
    }
  }
}

// ---- batched forward/adjoint differential sweep ----------------------------

/// Every registered filter: the paper's full sweep (NoFilter, LAP(4..64),
/// LAR(1..5)), the ablation filters, the extras, and a chain.
std::vector<FilterPtr> every_registered_filter() {
  std::vector<FilterPtr> all = paper_filter_sweep();
  all.push_back(make_gaussian(0.8f));
  all.push_back(make_median(1));
  all.push_back(make_grayscale());
  all.push_back(make_normalize());
  all.push_back(make_histeq());
  all.push_back(make_bit_depth(5));
  all.push_back(make_bilateral(1.5f, 0.2f));
  all.push_back(make_shuffle(7));
  all.push_back(make_dct_quant(50));
  all.push_back(make_feature_squeeze());
  // Chains: FilterChain has its own apply_batch/vjp_batch overrides, so
  // compositions (including ones mixing linear, non-linear, and BPDA
  // members) must hold the same row-bitwise contract as their members.
  all.push_back(parse_filter("grayscale+lap8"));
  all.push_back(parse_filter("bits5+median1"));
  all.push_back(parse_filter("dct50+lap4"));
  all.push_back(parse_filter("lap4+median1+bits5"));
  return all;
}

Tensor stack3(const std::vector<Tensor>& images) {
  const Shape chw = images.front().shape();
  Tensor batch{Shape{static_cast<int64_t>(images.size()), chw.dim(0),
                     chw.dim(1), chw.dim(2)}};
  const int64_t stride = chw.numel();
  for (size_t i = 0; i < images.size(); ++i) {
    std::copy(images[i].data(), images[i].data() + stride,
              batch.data() + static_cast<int64_t>(i) * stride);
  }
  return batch;
}

TEST(BatchDifferential, ApplyAndVjpBatchBitwiseMatchPerImageForEveryFilter) {
  for (int threads : {1, 2, 7}) {
    ThreadGuard guard(threads);
    for (const FilterPtr& f : every_registered_filter()) {
      for (int64_t n : {int64_t{1}, int64_t{2}, int64_t{7}}) {
        std::vector<Tensor> images;
        std::vector<Tensor> grads;
        for (int64_t i = 0; i < n; ++i) {
          images.push_back(random_image(100 + static_cast<uint64_t>(i)));
          grads.push_back(random_image(200 + static_cast<uint64_t>(i)));
        }
        const Tensor batch = stack3(images);
        const Tensor gbatch = stack3(grads);
        const Tensor out = f->apply_batch(batch);
        const Tensor gout = f->vjp_batch(batch, gbatch);
        ASSERT_EQ(out.shape(), batch.shape()) << f->name();
        ASSERT_EQ(gout.shape(), batch.shape()) << f->name();
        const int64_t stride = images.front().numel();
        for (int64_t i = 0; i < n; ++i) {
          const Tensor single = f->apply(images[static_cast<size_t>(i)]);
          const Tensor gsingle = f->vjp(images[static_cast<size_t>(i)],
                                        grads[static_cast<size_t>(i)]);
          EXPECT_EQ(std::memcmp(out.data() + i * stride, single.data(),
                                sizeof(float) * stride),
                    0)
              << f->name() << " apply_batch row " << i << " at " << threads
              << " threads, n=" << n;
          EXPECT_EQ(std::memcmp(gout.data() + i * stride, gsingle.data(),
                                sizeof(float) * stride),
                    0)
              << f->name() << " vjp_batch row " << i << " at " << threads
              << " threads, n=" << n;
        }
      }
    }
  }
}

TEST(BatchDifferential, EmptyAndMalformedBatchesAreTypedErrors) {
  const LapFilter f(8);
  const Tensor empty{Shape{0, 3, 4, 4}};
  EXPECT_THROW((void)f.apply_batch(empty), Error);
  EXPECT_THROW((void)f.vjp_batch(empty, empty), Error);
  // Rank and shape mismatches.
  const Tensor batch = Tensor::ones(Shape{2, 3, 4, 4});
  EXPECT_THROW((void)f.vjp_batch(batch, Tensor::ones(Shape{2, 3, 4, 5})),
               Error);
  EXPECT_THROW((void)f.vjp_batch(Tensor::ones(Shape{3, 4, 4}), batch),
               Error);
}

}  // namespace
}  // namespace fademl::filters
