#include "fademl/core/cost.hpp"

#include <gtest/gtest.h>

#include "fademl/tensor/error.hpp"
#include "fademl/tensor/ops.hpp"

namespace fademl::core {
namespace {

Tensor probs_from(std::vector<float> raw) {
  Tensor t{Shape{static_cast<int64_t>(raw.size())}, std::move(raw)};
  const float total = sum(t);
  t.mul_(1.0f / total);
  return t;
}

TEST(Eq2Cost, ZeroWhenDistributionsMatch) {
  const Tensor p = probs_from({5, 4, 3, 2, 1, 1, 1});
  EXPECT_FLOAT_EQ(eq2_cost(p, p), 0.0f);
}

TEST(Eq2Cost, PositiveWhenMassLeavesTop5) {
  const Tensor ref = probs_from({10, 4, 3, 2, 1, 0.1f, 0.1f});
  const Tensor cmp = probs_from({1, 1, 1, 1, 1, 10, 10});
  EXPECT_GT(eq2_cost(ref, cmp), 0.3f);
}

TEST(Eq2Cost, NegativeWhenMassConcentrates) {
  // Flat reference: its top-5 are the first five classes at 1/7 each. The
  // comparison piles almost all mass on one of them, so the top-5 mass
  // *grows* and the cost goes negative.
  const Tensor ref = probs_from({1, 1, 1, 1, 1, 1, 1});
  const Tensor cmp = probs_from({100, 1, 1, 1, 1, 1, 1});
  EXPECT_LT(eq2_cost(ref, cmp), -0.1f);
}

TEST(Eq2Cost, BoundedByOne) {
  const Tensor ref = probs_from({1, 1, 1, 1, 1, 0.001f, 0.001f});
  const Tensor cmp = probs_from({0.001f, 0.001f, 0.001f, 0.001f, 0.001f,
                                 1, 1});
  const float c = eq2_cost(ref, cmp);
  EXPECT_LE(c, 1.0f);
  EXPECT_GT(c, 0.9f);
}

TEST(Eq2Cost, ValidatesShapes) {
  const Tensor p5 = probs_from({1, 1, 1, 1, 1});
  EXPECT_THROW(eq2_cost(p5, probs_from({1, 1, 1, 1, 1, 1})), Error);
  EXPECT_THROW(eq2_cost(probs_from({1, 1}), probs_from({1, 1})), Error);
}

TEST(FademlCost, ZeroForIdenticalTopMass) {
  const Tensor p = probs_from({5, 4, 3, 2, 1, 1});
  EXPECT_NEAR(fademl_cost(p, p), 0.0f, 1e-6f);
}

TEST(FademlCost, MeasuresGapBetweenSamples) {
  const Tensor x = probs_from({0.9f, 0.02f, 0.02f, 0.02f, 0.02f, 0.02f});
  const Tensor y = probs_from({0.02f, 0.9f, 0.02f, 0.02f, 0.02f, 0.02f});
  // Both concentrate the same total mass on their own top-5: gap ~ 0.
  EXPECT_NEAR(fademl_cost(x, y), 0.0f, 1e-5f);
  // A flat x against a peaked y has less top-5 mass: negative gap.
  const Tensor flat = probs_from({1, 1, 1, 1, 1, 1});
  EXPECT_LT(fademl_cost(flat, y), -0.05f);
}

TEST(Top5WeightVector, MarksExactlyTheTopFive) {
  const Tensor ref = probs_from({10, 9, 8, 7, 6, 1, 2, 3});
  const Tensor w = top5_weight_vector(ref);
  EXPECT_FLOAT_EQ(sum(w), 5.0f);
  for (int64_t i = 0; i < 5; ++i) {
    EXPECT_FLOAT_EQ(w.at(i), 1.0f);
  }
  for (int64_t i = 5; i < 8; ++i) {
    EXPECT_FLOAT_EQ(w.at(i), 0.0f);
  }
}

TEST(Top5WeightVector, DotRecoversEq2Term) {
  const Tensor ref = probs_from({10, 9, 8, 7, 6, 1, 2, 3});
  const Tensor cmp = probs_from({1, 2, 3, 4, 5, 6, 7, 8});
  const Tensor w = top5_weight_vector(ref);
  const float via_dot = dot(ref, w) - dot(cmp, w);
  EXPECT_NEAR(via_dot, eq2_cost(ref, cmp), 1e-6f);
}

}  // namespace
}  // namespace fademl::core
