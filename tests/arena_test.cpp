// Unit tests for the per-op scratch arena and the tensor buffer pool —
// the allocation machinery behind the steady-state zero-allocation
// contract (bench/perf_microbench.cpp asserts the end-to-end version on
// the inference pipeline; these tests pin the primitives).

#include "fademl/simd/arena.hpp"

#include <cstdint>
#include <cstring>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "fademl/filters/filter.hpp"
#include "fademl/parallel/parallel.hpp"
#include "fademl/tensor/random.hpp"
#include "fademl/tensor/tensor.hpp"

namespace fademl {
namespace {

using simd::Arena;

class ThreadGuard {
 public:
  explicit ThreadGuard(int n) { parallel::set_num_threads(n); }
  ~ThreadGuard() { parallel::set_num_threads(0); }
};

// ---- Arena -----------------------------------------------------------------

TEST(Arena, EveryAllocationIs64ByteAligned) {
  Arena arena;
  for (std::size_t bytes = 0; bytes <= 200; ++bytes) {
    void* p = arena.alloc(bytes);
    ASSERT_NE(p, nullptr) << "bytes " << bytes;
    EXPECT_EQ(reinterpret_cast<std::uintptr_t>(p) % Arena::kAlignment, 0u)
        << "bytes " << bytes;
  }
  float* f = arena.alloc_floats(37);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(f) % Arena::kAlignment, 0u);
}

TEST(Arena, ZeroByteAllocationsAreValidAndDistinct) {
  Arena arena;
  void* p = arena.alloc(0);
  void* q = arena.alloc(0);
  EXPECT_NE(p, nullptr);
  EXPECT_NE(q, nullptr);
  EXPECT_NE(p, q) << "zero-byte allocations must not alias";
}

TEST(Arena, WarmResetLoopNeverTouchesTheHeap) {
  Arena arena;
  // Warm: first pass may grow blocks.
  for (int i = 0; i < 3; ++i) {
    (void)arena.alloc_floats(1000);
    (void)arena.alloc_floats(5000);
    arena.reset();
  }
  const std::uint64_t heap_before = Arena::heap_allocations();
  const std::size_t cap_before = arena.capacity();
  for (int i = 0; i < 50; ++i) {
    float* a = arena.alloc_floats(1000);
    float* b = arena.alloc_floats(5000);
    a[0] = 1.0f;
    b[4999] = 2.0f;
    arena.reset();
  }
  EXPECT_EQ(Arena::heap_allocations(), heap_before)
      << "steady-state reset loop allocated";
  EXPECT_EQ(arena.capacity(), cap_before);
}

TEST(Arena, MarkRewindReusesTheSamePointers) {
  Arena arena;
  (void)arena.alloc_floats(64);  // some prior state
  const Arena::Mark m = arena.mark();
  float* first = arena.alloc_floats(128);
  arena.rewind(m);
  float* second = arena.alloc_floats(128);
  EXPECT_EQ(first, second) << "rewind must restore the bump pointer";
  EXPECT_EQ(arena.mark().offset, arena.used());
}

TEST(Arena, OversizeRequestsFallBackAndAreFreedOnRewind) {
  Arena arena(/*block_bytes=*/1024);
  const Arena::Mark m = arena.mark();
  const std::uint64_t heap_before = Arena::heap_allocations();
  float* big = arena.alloc_floats(100'000);  // ≫ block size
  ASSERT_NE(big, nullptr);
  big[0] = 1.0f;
  big[99'999] = 2.0f;  // whole range must be writable (ASan checks this)
  EXPECT_GT(Arena::heap_allocations(), heap_before);
  arena.rewind(m);
  // The oversize slab is gone; a warm re-request heap-allocates again.
  const std::uint64_t heap_mid = Arena::heap_allocations();
  (void)arena.alloc_floats(100'000);
  EXPECT_GT(Arena::heap_allocations(), heap_mid);
  arena.rewind(m);
}

TEST(Arena, ScratchScopeRestoresUsage) {
  Arena& scratch = simd::scratch();
  const std::size_t before = scratch.used();
  {
    simd::ScratchScope scope;
    (void)scratch.alloc_floats(999);
    EXPECT_GT(scratch.used(), before);
    {
      simd::ScratchScope nested;
      (void)scratch.alloc_floats(77);
    }
  }
  EXPECT_EQ(scratch.used(), before);
}

// ---- Tensor buffer pool ----------------------------------------------------

TEST(BufferPool, RecyclesBuffersInsideAScope) {
  simd::MemoryScope scope;
  ASSERT_TRUE(simd::pooling_active());
  auto buf = simd::acquire_buffer(1234, 0.0f);
  float* raw = buf->data();
  buf.reset();  // pool's reference is now the only one -> recyclable
  const std::uint64_t misses_before = simd::tensor_heap_allocations();
  auto again = simd::acquire_buffer(1234, 3.5f);
  EXPECT_EQ(again->data(), raw) << "same-size request must reuse the buffer";
  EXPECT_EQ(simd::tensor_heap_allocations(), misses_before);
  // Re-filled exactly like a fresh buffer: pooling is value-invisible.
  for (float v : *again) {
    ASSERT_EQ(v, 3.5f);
  }
}

TEST(BufferPool, NoPoolingOutsideAScope) {
  simd::clear_buffer_pool();
  ASSERT_FALSE(simd::pooling_active());
  const std::uint64_t before = simd::tensor_heap_allocations();
  auto a = simd::acquire_buffer(512, 0.0f);
  a.reset();
  auto b = simd::acquire_buffer(512, 0.0f);
  EXPECT_EQ(simd::tensor_heap_allocations(), before + 2)
      << "unpooled allocations must be counted, never recycled";
}

TEST(BufferPool, CopyAcquisitionMatchesSource) {
  simd::MemoryScope scope;
  std::vector<float> src(321);
  for (std::size_t i = 0; i < src.size(); ++i) {
    src[i] = static_cast<float>(i) * 0.25f;
  }
  auto first = simd::acquire_buffer_copy(src);
  float* raw = first->data();
  ASSERT_EQ(*first, src);
  first.reset();
  src[7] = -1.0f;
  auto second = simd::acquire_buffer_copy(src);
  EXPECT_EQ(second->data(), raw);
  EXPECT_EQ(*second, src) << "recycled copy must re-copy the new source";
}

TEST(BufferPool, BuffersReleasedOnAnotherThreadAreStillRecycled) {
  simd::MemoryScope scope;
  auto buf = simd::acquire_buffer(2048, 0.0f);
  float* raw = buf->data();
  std::thread releaser([moved = std::move(buf)]() mutable { moved.reset(); });
  releaser.join();
  auto again = simd::acquire_buffer(2048, 1.0f);
  EXPECT_EQ(again->data(), raw)
      << "use_count-based returns must survive cross-thread destruction";
}

TEST(BufferPool, TensorAllocationsRouteThroughThePool) {
  ThreadGuard threads(1);
  simd::MemoryScope scope;
  Rng rng(5);
  // Warm: allocate and drop the shapes once.
  { const Tensor t = rng.uniform_tensor(Shape{3, 32, 32}, 0.0f, 1.0f); }
  const std::uint64_t before = simd::tensor_heap_allocations();
  for (int i = 0; i < 10; ++i) {
    const Tensor t = rng.uniform_tensor(Shape{3, 32, 32}, 0.0f, 1.0f);
    ASSERT_EQ(t.numel(), 3 * 32 * 32);
  }
  EXPECT_EQ(simd::tensor_heap_allocations(), before)
      << "same-shape tensor churn inside a scope must be allocation-free";
}

// ---- end-to-end steady state ----------------------------------------------

TEST(SteadyState, FilterBatchForwardIsAllocationFreeWhenWarm) {
  ThreadGuard threads(1);  // worker threads have their own pools
  simd::MemoryScope scope;
  Rng rng(7);
  const Tensor batch = rng.uniform_tensor(Shape{2, 3, 24, 24}, 0.0f, 1.0f);
  const filters::FilterPtr lap = filters::make_lap(32);
  for (int i = 0; i < 3; ++i) {
    (void)lap->apply_batch(batch);  // warm the pool and the scratch arena
  }
  const std::uint64_t tensor_before = simd::tensor_heap_allocations();
  const std::uint64_t arena_before = Arena::heap_allocations();
  for (int i = 0; i < 10; ++i) {
    const Tensor out = lap->apply_batch(batch);
    ASSERT_EQ(out.numel(), batch.numel());
  }
  EXPECT_EQ(simd::tensor_heap_allocations(), tensor_before)
      << "warm filter forward allocated tensor buffers";
  EXPECT_EQ(Arena::heap_allocations(), arena_before)
      << "warm filter forward grew a scratch arena";
}

}  // namespace
}  // namespace fademl
