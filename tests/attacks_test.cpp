#include <gtest/gtest.h>

#include "fademl/attacks/bim.hpp"
#include "fademl/attacks/fademl_attack.hpp"
#include "fademl/attacks/fgsm.hpp"
#include "fademl/attacks/lbfgs.hpp"
#include "fademl/tensor/error.hpp"
#include "fademl/tensor/ops.hpp"
#include "test_fixtures.hpp"

namespace fademl::attacks {
namespace {

using core::ThreatModel;
using fademl::testing::tiny_pipeline;

// Scenario used throughout: stop sign (14) -> speed limit 60 (3).
constexpr int64_t kSource = 14;
constexpr int64_t kTarget = 3;

Tensor source_image() { return data::canonical_sample(kSource, 16); }

TEST(AttackConfig, ValidationAtConstruction) {
  AttackConfig bad;
  bad.epsilon = 0.0f;
  EXPECT_THROW(FgsmAttack{bad}, Error);
  bad.epsilon = 0.1f;
  bad.max_iterations = 0;
  EXPECT_THROW(BimAttack{bad}, Error);
  EXPECT_THROW(LbfgsAttack{bad}, Error);
}

TEST(AttackNames, ReflectGradientRoute) {
  AttackConfig tm1;
  AttackConfig tm3;
  tm3.grad_tm = ThreatModel::kIII;
  EXPECT_EQ(FgsmAttack(tm1).name(), "FGSM");
  EXPECT_EQ(FgsmAttack(tm3).name(), "FAdeML-FGSM");
  EXPECT_EQ(BimAttack(tm1).name(), "BIM");
  EXPECT_EQ(LbfgsAttack(tm1).name(), "L-BFGS");
  EXPECT_EQ(attack_kind_name(AttackKind::kBim), "BIM");
  EXPECT_EQ(FAdeMLAttack(AttackKind::kLbfgs).name(), "FAdeML-L-BFGS");
}

TEST(AttackFactory, BuildsEveryKind) {
  EXPECT_EQ(make_attack(AttackKind::kLbfgs)->name(), "L-BFGS");
  EXPECT_EQ(make_attack(AttackKind::kFgsm)->name(), "FGSM");
  EXPECT_EQ(make_attack(AttackKind::kBim)->name(), "BIM");
  EXPECT_EQ(make_fademl(AttackKind::kFgsm)->name(), "FAdeML-FGSM");
}

struct AttackCase {
  const char* label;
  AttackPtr attack;
};

class ClassicAttackTest : public ::testing::TestWithParam<AttackCase> {};

TEST_P(ClassicAttackTest, RespectsBudgetAndPixelRange) {
  const auto pipeline = tiny_pipeline(filters::make_identity());
  const AttackResult r =
      GetParam().attack->run(pipeline, source_image(), kTarget);
  EXPECT_LE(r.linf, GetParam().attack->config().epsilon + 1e-5f)
      << GetParam().label;
  EXPECT_GE(min(r.adversarial), 0.0f);
  EXPECT_LE(max(r.adversarial), 1.0f);
  EXPECT_EQ(r.adversarial.shape(), source_image().shape());
  EXPECT_GT(r.iterations, 0);
}

TEST_P(ClassicAttackTest, ReducesTargetedLoss) {
  const auto pipeline = tiny_pipeline(filters::make_identity());
  const Tensor src = source_image();
  const AttackResult r = GetParam().attack->run(pipeline, src, kTarget);
  const float before =
      pipeline.predict_probs(src, ThreatModel::kI).at(kTarget);
  const float after =
      pipeline.predict_probs(r.adversarial, ThreatModel::kI).at(kTarget);
  EXPECT_GT(after, before) << GetParam().label;
}

TEST_P(ClassicAttackTest, AchievesTargetedMisclassificationUnderTM1) {
  const auto pipeline = tiny_pipeline(filters::make_identity());
  const AttackResult r =
      GetParam().attack->run(pipeline, source_image(), kTarget);
  const core::Prediction p =
      pipeline.predict(r.adversarial, ThreatModel::kI);
  if (std::string(GetParam().label) == "fgsm") {
    // A single linearized step is not guaranteed to land *on* the target
    // (classic FGSM overshoot); it must still dethrone the source and pull
    // the target into the top-5.
    EXPECT_NE(p.label, kSource);
    EXPECT_NE(std::find(p.top5.begin(), p.top5.end(), kTarget),
              p.top5.end());
  } else {
    EXPECT_EQ(p.label, kTarget) << GetParam().label << " predicted class "
                                << p.label;
  }
}

TEST_P(ClassicAttackTest, NoiseMetricsAreConsistent) {
  const auto pipeline = tiny_pipeline(filters::make_identity());
  const Tensor src = source_image();
  const AttackResult r = GetParam().attack->run(pipeline, src, kTarget);
  EXPECT_NEAR(norm_l2(r.noise), r.l2, 1e-4f);
  EXPECT_NEAR(norm_linf(r.noise), r.linf, 1e-6f);
  EXPECT_LT(norm_linf(sub(add(src, r.noise), r.adversarial)), 1e-5f);
}

AttackConfig strong_config() {
  AttackConfig config;
  config.epsilon = 0.18f;
  config.step_size = 0.02f;
  config.max_iterations = 30;
  return config;
}

INSTANTIATE_TEST_SUITE_P(
    AllAttacks, ClassicAttackTest,
    ::testing::Values(
        AttackCase{"fgsm", std::make_shared<FgsmAttack>(strong_config())},
        AttackCase{"bim", std::make_shared<BimAttack>(strong_config())},
        AttackCase{"lbfgs", std::make_shared<LbfgsAttack>(strong_config())}),
    [](const ::testing::TestParamInfo<AttackCase>& info) {
      return info.param.label;
    });

TEST(Fgsm, SingleGradientEvaluation) {
  const auto pipeline = tiny_pipeline(filters::make_identity());
  const FgsmAttack attack(strong_config());
  const AttackResult r = attack.run(pipeline, source_image(), kTarget);
  EXPECT_EQ(r.iterations, 1);
  EXPECT_EQ(r.loss_history.size(), 1u);
  // FGSM steps exactly +-epsilon wherever the gradient is nonzero and the
  // box allows it: the largest per-pixel move equals epsilon.
  EXPECT_NEAR(r.linf, attack.config().epsilon, 1e-5f);
}

TEST(Bim, IteratesAndRecordsLossHistory) {
  AttackConfig config = strong_config();
  config.max_iterations = 7;
  const auto pipeline = tiny_pipeline(filters::make_identity());
  const BimAttack attack(config);
  const AttackResult r = attack.run(pipeline, source_image(), kTarget);
  EXPECT_EQ(r.iterations, 7);
  EXPECT_EQ(r.loss_history.size(), 7u);
  // The targeted loss must trend down over the run.
  EXPECT_LT(r.loss_history.back(), r.loss_history.front());
}

TEST(Bim, EarlyStopsAtTargetConfidence) {
  AttackConfig config = strong_config();
  config.max_iterations = 60;
  config.target_confidence = 0.5f;
  const auto pipeline = tiny_pipeline(filters::make_identity());
  const BimAttack attack(config);
  const AttackResult r = attack.run(pipeline, source_image(), kTarget);
  EXPECT_LT(r.iterations, 60);
}

TEST(Lbfgs, ProducesSmallerL2ThanFgsmForSameSuccess) {
  // The curvature-aware attack's selling point: imperceptibility. Compare
  // L2 norms at equal epsilon when both succeed.
  const auto pipeline = tiny_pipeline(filters::make_identity());
  const Tensor src = source_image();
  const AttackResult fgsm = FgsmAttack(strong_config()).run(pipeline, src,
                                                            kTarget);
  const AttackResult lbfgs = LbfgsAttack(strong_config()).run(pipeline, src,
                                                              kTarget);
  const auto pf = pipeline.predict(fgsm.adversarial, ThreatModel::kI);
  const auto pl = pipeline.predict(lbfgs.adversarial, ThreatModel::kI);
  if (pf.label == kTarget && pl.label == kTarget) {
    EXPECT_LT(lbfgs.l2, fgsm.l2);
  }
}

TEST(Lbfgs, LossHistoryIsMonotoneNonIncreasing) {
  const auto pipeline = tiny_pipeline(filters::make_identity());
  const LbfgsAttack attack(strong_config());
  const AttackResult r = attack.run(pipeline, source_image(), kTarget);
  for (size_t i = 1; i < r.loss_history.size(); ++i) {
    EXPECT_LE(r.loss_history[i], r.loss_history[i - 1] + 1e-4f)
        << "iteration " << i;
  }
}

TEST(FAdeML, ForcesFilteredGradientRoute) {
  const FAdeMLAttack attack(AttackKind::kBim);
  EXPECT_EQ(attack.config().grad_tm, ThreatModel::kIII);
  // Explicit TM-II stays TM-II.
  AttackConfig config;
  config.grad_tm = ThreatModel::kII;
  const FAdeMLAttack tm2(AttackKind::kBim, config);
  EXPECT_EQ(tm2.config().grad_tm, ThreatModel::kII);
}

TEST(FAdeML, SucceedsThroughTheFilterWhereClassicFails) {
  // The paper's headline claim, on the tiny fixture: craft with BIM
  // blind to the filter vs. FAdeML-BIM aware of it, evaluate both through
  // LAP(8). FAdeML must put at least as much probability on the target.
  const auto pipeline = tiny_pipeline(filters::make_lap(8));
  const Tensor src = source_image();
  AttackConfig config = strong_config();
  const AttackResult blind = BimAttack(config).run(pipeline, src, kTarget);
  const AttackResult aware =
      FAdeMLAttack(AttackKind::kBim, config).run(pipeline, src, kTarget);
  const float blind_target =
      pipeline.predict_probs(blind.adversarial, ThreatModel::kIII).at(kTarget);
  const float aware_target =
      pipeline.predict_probs(aware.adversarial, ThreatModel::kIII).at(kTarget);
  EXPECT_GE(aware_target, blind_target - 1e-4f);
  // And the filter-aware attack actually lands the misclassification.
  const auto p = pipeline.predict(aware.adversarial, ThreatModel::kIII);
  EXPECT_EQ(p.label, kTarget);
}

TEST(FAdeML, RecordsEq2History) {
  const auto pipeline = tiny_pipeline(filters::make_lap(4));
  const FAdeMLAttack attack(AttackKind::kFgsm, strong_config());
  (void)attack.run(pipeline, source_image(), kTarget);
  ASSERT_FALSE(attack.eq2_history().empty());
  // Eq. 2 is bounded in [-5, 5] by construction; sanity-check the value.
  EXPECT_LT(std::abs(attack.eq2_history().back()), 5.0f);
}

TEST(Objectives, TargetedCrossEntropyDecreasesWithTargetProbability) {
  autograd::Variable good{Tensor{Shape{1, 3}, {0.0f, 10.0f, 0.0f}}};
  autograd::Variable bad{Tensor{Shape{1, 3}, {10.0f, 0.0f, 0.0f}}};
  const core::Objective obj = targeted_cross_entropy(1);
  EXPECT_LT(obj(good).value().item(), obj(bad).value().item());
}

TEST(Objectives, WeightedProbabilityMatchesManualDot) {
  const Tensor w{0.0f, 1.0f, 0.0f};
  autograd::Variable logits{Tensor{Shape{1, 3}, {1.0f, 2.0f, 3.0f}}};
  const core::Objective obj = weighted_probability(w);
  const Tensor probs = softmax_rows(logits.value());
  EXPECT_NEAR(obj(logits).value().item(), probs.at({0, 1}), 1e-6f);
}

}  // namespace
}  // namespace fademl::attacks
