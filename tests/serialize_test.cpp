#include "fademl/tensor/serialize.hpp"

#include <cstdio>
#include <filesystem>
#include <sstream>

#include <gtest/gtest.h>

#include "fademl/tensor/error.hpp"
#include "fademl/tensor/random.hpp"

namespace fademl {
namespace {

TEST(Serialize, TensorRoundtrip) {
  Rng rng(1);
  const Tensor t = rng.normal_tensor(Shape{3, 4, 5}, 0.0f, 1.0f);
  std::stringstream ss;
  write_tensor(ss, t);
  const Tensor back = read_tensor(ss);
  ASSERT_EQ(back.shape(), t.shape());
  for (int64_t i = 0; i < t.numel(); ++i) {
    EXPECT_FLOAT_EQ(back.at(i), t.at(i));
  }
}

TEST(Serialize, ScalarRoundtrip) {
  std::stringstream ss;
  write_tensor(ss, Tensor::scalar(3.25f));
  const Tensor back = read_tensor(ss);
  EXPECT_EQ(back.rank(), 0);
  EXPECT_FLOAT_EQ(back.item(), 3.25f);
}

TEST(Serialize, RejectsBadMagic) {
  std::stringstream ss("not a tensor stream at all");
  EXPECT_THROW(read_tensor(ss), Error);
}

TEST(Serialize, RejectsTruncatedData) {
  std::stringstream ss;
  write_tensor(ss, Tensor::ones(Shape{16}));
  std::string payload = ss.str();
  payload.resize(payload.size() - 8);
  std::stringstream truncated(payload);
  EXPECT_THROW(read_tensor(truncated), Error);
}

TEST(Serialize, RejectsUndefinedTensor) {
  std::stringstream ss;
  EXPECT_THROW(write_tensor(ss, Tensor{}), Error);
}

TEST(Serialize, BundleRoundtripPreservesNamesAndOrder) {
  Rng rng(2);
  std::vector<NamedTensor> bundle = {
      {"conv.weight", rng.normal_tensor(Shape{4, 3, 3, 3}, 0, 1)},
      {"conv.bias", Tensor::zeros(Shape{4})},
      {"fc.weight", rng.normal_tensor(Shape{10, 16}, 0, 1)},
  };
  std::stringstream ss;
  write_bundle(ss, bundle);
  const auto back = read_bundle(ss);
  ASSERT_EQ(back.size(), 3u);
  EXPECT_EQ(back[0].name, "conv.weight");
  EXPECT_EQ(back[1].name, "conv.bias");
  EXPECT_EQ(back[2].name, "fc.weight");
  EXPECT_EQ(back[0].tensor.shape(), Shape({4, 3, 3, 3}));
  EXPECT_FLOAT_EQ(back[0].tensor.at(7), bundle[0].tensor.at(7));
}

TEST(Serialize, EmptyBundleRoundtrip) {
  std::stringstream ss;
  write_bundle(ss, {});
  EXPECT_TRUE(read_bundle(ss).empty());
}

TEST(Serialize, FileRoundtrip) {
  const std::string path =
      (std::filesystem::temp_directory_path() / "fademl_bundle_test.fdml")
          .string();
  save_bundle(path, {{"t", Tensor::arange(10)}});
  const auto back = load_bundle(path);
  ASSERT_EQ(back.size(), 1u);
  EXPECT_FLOAT_EQ(back[0].tensor.at(9), 9.0f);
  std::remove(path.c_str());
}

TEST(Serialize, MissingFileThrows) {
  EXPECT_THROW(load_bundle("/nonexistent/dir/nothing.fdml"), Error);
}

}  // namespace
}  // namespace fademl
