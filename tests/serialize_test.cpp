#include "fademl/tensor/serialize.hpp"

#include <cstdio>
#include <filesystem>
#include <sstream>

#include <gtest/gtest.h>

#include "fademl/tensor/error.hpp"
#include "fademl/tensor/random.hpp"

namespace fademl {
namespace {

TEST(Serialize, TensorRoundtrip) {
  Rng rng(1);
  const Tensor t = rng.normal_tensor(Shape{3, 4, 5}, 0.0f, 1.0f);
  std::stringstream ss;
  write_tensor(ss, t);
  const Tensor back = read_tensor(ss);
  ASSERT_EQ(back.shape(), t.shape());
  for (int64_t i = 0; i < t.numel(); ++i) {
    EXPECT_FLOAT_EQ(back.at(i), t.at(i));
  }
}

TEST(Serialize, ScalarRoundtrip) {
  std::stringstream ss;
  write_tensor(ss, Tensor::scalar(3.25f));
  const Tensor back = read_tensor(ss);
  EXPECT_EQ(back.rank(), 0);
  EXPECT_FLOAT_EQ(back.item(), 3.25f);
}

TEST(Serialize, RejectsBadMagic) {
  std::stringstream ss("not a tensor stream at all");
  EXPECT_THROW(read_tensor(ss), Error);
}

TEST(Serialize, RejectsTruncatedData) {
  std::stringstream ss;
  write_tensor(ss, Tensor::ones(Shape{16}));
  std::string payload = ss.str();
  payload.resize(payload.size() - 8);
  std::stringstream truncated(payload);
  EXPECT_THROW(read_tensor(truncated), Error);
}

TEST(Serialize, RejectsUndefinedTensor) {
  std::stringstream ss;
  EXPECT_THROW(write_tensor(ss, Tensor{}), Error);
}

TEST(Serialize, BundleRoundtripPreservesNamesAndOrder) {
  Rng rng(2);
  std::vector<NamedTensor> bundle = {
      {"conv.weight", rng.normal_tensor(Shape{4, 3, 3, 3}, 0, 1)},
      {"conv.bias", Tensor::zeros(Shape{4})},
      {"fc.weight", rng.normal_tensor(Shape{10, 16}, 0, 1)},
  };
  std::stringstream ss;
  write_bundle(ss, bundle);
  const auto back = read_bundle(ss);
  ASSERT_EQ(back.size(), 3u);
  EXPECT_EQ(back[0].name, "conv.weight");
  EXPECT_EQ(back[1].name, "conv.bias");
  EXPECT_EQ(back[2].name, "fc.weight");
  EXPECT_EQ(back[0].tensor.shape(), Shape({4, 3, 3, 3}));
  EXPECT_FLOAT_EQ(back[0].tensor.at(7), bundle[0].tensor.at(7));
}

TEST(Serialize, EmptyBundleRoundtrip) {
  std::stringstream ss;
  write_bundle(ss, {});
  EXPECT_TRUE(read_bundle(ss).empty());
}

TEST(Serialize, FileRoundtrip) {
  const std::string path =
      (std::filesystem::temp_directory_path() / "fademl_bundle_test.fdml")
          .string();
  save_bundle(path, {{"t", Tensor::arange(10)}});
  const auto back = load_bundle(path);
  ASSERT_EQ(back.size(), 1u);
  EXPECT_FLOAT_EQ(back[0].tensor.at(9), 9.0f);
  std::remove(path.c_str());
}

TEST(Serialize, MissingFileThrows) {
  EXPECT_THROW(load_bundle("/nonexistent/dir/nothing.fdml"), Error);
}

TEST(Serialize, Crc32MatchesKnownVector) {
  // The IEEE 802.3 check value for the ASCII digits "123456789".
  EXPECT_EQ(crc32("123456789", 9), 0xCBF43926u);
  // Chaining over split input must equal the one-shot digest.
  const uint32_t partial = crc32("12345", 5);
  EXPECT_EQ(crc32("6789", 4, partial), 0xCBF43926u);
}

std::vector<NamedTensor> small_bundle() {
  Rng rng(7);
  return {
      {"conv.weight", rng.normal_tensor(Shape{2, 3}, 0, 1)},
      {"conv.bias", Tensor::arange(4)},
  };
}

TEST(Serialize, V1BundleStillLoads) {
  std::stringstream ss;
  write_bundle_v1(ss, small_bundle());
  const auto back = read_bundle(ss);
  ASSERT_EQ(back.size(), 2u);
  EXPECT_EQ(back[0].name, "conv.weight");
  EXPECT_EQ(back[1].name, "conv.bias");
  EXPECT_FLOAT_EQ(back[1].tensor.at(3), 3.0f);
}

TEST(Serialize, V2StringRoundtrip) {
  const std::string bytes = bundle_to_string(small_bundle());
  const auto back = bundle_from_string(bytes);
  ASSERT_EQ(back.size(), 2u);
  EXPECT_EQ(back[0].tensor.shape(), Shape({2, 3}));
}

TEST(Serialize, FuzzEveryTruncationOfV2IsRejected) {
  const std::string bytes = bundle_to_string(small_bundle());
  for (size_t len = 0; len < bytes.size(); ++len) {
    EXPECT_THROW(bundle_from_string(bytes.substr(0, len)), Error)
        << "truncation to " << len << " of " << bytes.size()
        << " bytes was silently accepted";
  }
}

TEST(Serialize, FuzzEveryTruncationOfV1IsRejected) {
  std::stringstream ss;
  write_bundle_v1(ss, small_bundle());
  const std::string bytes = ss.str();
  for (size_t len = 0; len < bytes.size(); ++len) {
    std::stringstream truncated(bytes.substr(0, len));
    EXPECT_THROW(read_bundle(truncated), Error)
        << "truncation to " << len << " of " << bytes.size()
        << " bytes was silently accepted";
  }
}

TEST(Serialize, FuzzEverySingleBitFlipOfV2IsRejected) {
  const std::string bytes = bundle_to_string(small_bundle());
  for (size_t bit = 0; bit < bytes.size() * 8; ++bit) {
    std::string damaged = bytes;
    damaged[bit / 8] ^= static_cast<char>(1u << (bit % 8));
    EXPECT_THROW(bundle_from_string(damaged), Error)
        << "bit flip at bit " << bit << " was silently accepted";
  }
}

TEST(Serialize, CorruptionErrorNamesTheDamagedRecord) {
  const auto bundle = small_bundle();
  std::string bytes = bundle_to_string(bundle);
  // Record 0's payload starts after magic(4) + version(4) + count(4) +
  // payload_len(8); skip the name header too and damage the tensor stream.
  const size_t offset = 4 + 4 + 4 + 8 + 4 + bundle[0].name.size() + 6;
  ASSERT_LT(offset, bytes.size());
  bytes[offset] ^= 0x10;
  try {
    bundle_from_string(bytes);
    FAIL() << "corrupt bundle was accepted";
  } catch (const CorruptionError& e) {
    EXPECT_EQ(e.record(), "conv.weight");
    EXPECT_NE(std::string(e.what()).find("conv.weight"), std::string::npos);
  }
}

}  // namespace
}  // namespace fademl
