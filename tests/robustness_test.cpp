// Crash-safety and fault-injection suite: the io::FaultInjector failpoints
// drive atomic checkpoint writes, corruption detection/quarantine, and
// resumable training through the same failure modes a killed process or
// bit-rotten disk would produce — deterministically.

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <stdexcept>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "fademl/core/experiment.hpp"
#include "fademl/io/failpoint.hpp"
#include "fademl/nn/checkpoint.hpp"
#include "fademl/nn/optimizer.hpp"
#include "fademl/nn/trainer.hpp"
#include "fademl/nn/vggnet.hpp"
#include "fademl/tensor/error.hpp"
#include "fademl/tensor/random.hpp"
#include "fademl/tensor/serialize.hpp"

namespace fademl {
namespace {

namespace fs = std::filesystem;

/// Every test disarms on exit so a failing assertion cannot leak an armed
/// failpoint into the next test.
struct DisarmGuard {
  ~DisarmGuard() { io::FaultInjector::instance().disarm(); }
};

std::string test_dir() {
  const std::string dir =
      (fs::temp_directory_path() / "fademl_robustness").string();
  fs::create_directories(dir);
  return dir;
}

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return {std::istreambuf_iterator<char>(in), std::istreambuf_iterator<char>()};
}

// ---- failpoint plumbing ----------------------------------------------------

TEST(FaultSpec, ParsesTheDocumentedSyntax) {
  const io::FaultSpec fw = io::FaultSpec::parse("fail-write:3");
  EXPECT_EQ(fw.kind, io::FaultSpec::Kind::kFailWrite);
  EXPECT_EQ(fw.arg, 3);
  const io::FaultSpec tr = io::FaultSpec::parse("truncate:128");
  EXPECT_EQ(tr.kind, io::FaultSpec::Kind::kTruncate);
  EXPECT_EQ(tr.arg, 128);
  const io::FaultSpec bf = io::FaultSpec::parse("bit-flip:17");
  EXPECT_EQ(bf.kind, io::FaultSpec::Kind::kBitFlip);
  EXPECT_EQ(bf.arg, 17);
}

TEST(FaultSpec, ParsesTheNetworkFailpoints) {
  const io::FaultSpec nr = io::FaultSpec::parse("net-reset:2");
  EXPECT_EQ(nr.kind, io::FaultSpec::Kind::kNetReset);
  EXPECT_EQ(nr.arg, 2);
  const io::FaultSpec np = io::FaultSpec::parse("net-partial:1");
  EXPECT_EQ(np.kind, io::FaultSpec::Kind::kNetPartial);
  EXPECT_EQ(np.arg, 1);
  const io::FaultSpec ns = io::FaultSpec::parse("net-slow:250");
  EXPECT_EQ(ns.kind, io::FaultSpec::Kind::kNetSlow);
  EXPECT_EQ(ns.arg, 250);
  const io::FaultSpec sc = io::FaultSpec::parse("swap-corrupt:3");
  EXPECT_EQ(sc.kind, io::FaultSpec::Kind::kSwapCorrupt);
  EXPECT_EQ(sc.arg, 3);
  EXPECT_THROW(io::FaultSpec::parse("net-reset:0"), Error);
  EXPECT_THROW(io::FaultSpec::parse("swap-corrupt:0"), Error);
}

TEST(FaultSpec, ParsesTheSupervisionFailpoints) {
  const io::FaultSpec ww = io::FaultSpec::parse("worker-wedge:2");
  EXPECT_EQ(ww.kind, io::FaultSpec::Kind::kWorkerWedge);
  EXPECT_EQ(ww.arg, 2);
  const io::FaultSpec rs = io::FaultSpec::parse("restart-storm:3");
  EXPECT_EQ(rs.kind, io::FaultSpec::Kind::kRestartStorm);
  EXPECT_EQ(rs.arg, 3);
  // poison-input's argument is a CRC-32 fingerprint, so 0 is legal and
  // the full 32-bit range must round-trip.
  const io::FaultSpec pz = io::FaultSpec::parse("poison-input:0");
  EXPECT_EQ(pz.kind, io::FaultSpec::Kind::kPoisonInput);
  EXPECT_EQ(pz.arg, 0);
  const io::FaultSpec pm = io::FaultSpec::parse("poison-input:4294967295");
  EXPECT_EQ(pm.arg, 0xFFFFFFFFll);
  EXPECT_THROW(io::FaultSpec::parse("worker-wedge:0"), Error);
  EXPECT_THROW(io::FaultSpec::parse("restart-storm:0"), Error);
  EXPECT_THROW(io::FaultSpec::parse("poison-input:4294967296"), Error);
}

TEST(FaultSpec, RejectsMalformedSpecs) {
  EXPECT_THROW(io::FaultSpec::parse(""), Error);
  EXPECT_THROW(io::FaultSpec::parse("explode"), Error);
  EXPECT_THROW(io::FaultSpec::parse("fail-write:"), Error);
  EXPECT_THROW(io::FaultSpec::parse("fail-write:0"), Error);
  EXPECT_THROW(io::FaultSpec::parse("truncate:-1"), Error);
  EXPECT_THROW(io::FaultSpec::parse("bit-flip:x"), Error);
}

TEST(FaultSpec, RejectsTrailingGarbageAndLooseNumberFormats) {
  // std::stoll would happily parse the prefix of all of these; a typo'd
  // FADEML_FAILPOINT must fail loudly, never arm something other than
  // what the operator wrote (or worse, arm nothing and let the chaos
  // suite silently run un-injected).
  EXPECT_THROW(io::FaultSpec::parse("fail-write:2junk"), Error);
  EXPECT_THROW(io::FaultSpec::parse("truncate:128 "), Error);
  EXPECT_THROW(io::FaultSpec::parse("bit-flip: 17"), Error);
  EXPECT_THROW(io::FaultSpec::parse("slow-worker:+5"), Error);
  EXPECT_THROW(io::FaultSpec::parse("net-slow:0x10"), Error);
  EXPECT_THROW(io::FaultSpec::parse("net-reset:1e3"), Error);
  EXPECT_THROW(io::FaultSpec::parse("worker-throw:99999999999999999999"),
               Error);
  // The error must carry the offending text, not just "bad spec".
  try {
    io::FaultSpec::parse("net-partial:3x");
    FAIL() << "trailing garbage must throw";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("3x"), std::string::npos);
  }
}

TEST(AtomicWrite, ReplacesContentWithoutLeavingTempFiles) {
  const std::string path = test_dir() + "/atomic.bin";
  io::atomic_write_file(path, "first contents");
  io::atomic_write_file(path, "second contents");
  EXPECT_EQ(read_file(path), "second contents");
  EXPECT_FALSE(fs::exists(path + ".tmp"));
}

TEST(AtomicWrite, FailWriteFaultIsTransientAndRetrySucceeds) {
  DisarmGuard guard;
  auto& injector = io::FaultInjector::instance();
  const std::string path = test_dir() + "/retry.bin";
  const int64_t fired_before = injector.faults_fired();

  injector.arm("fail-write:1");
  EXPECT_THROW(io::atomic_write_file(path + ".direct", "x"), TransientIoError);

  injector.arm("fail-write:1");
  io::with_retries([&] { io::atomic_write_file(path, "payload"); },
                   /*max_attempts=*/3, /*backoff_ms=*/0);
  EXPECT_EQ(read_file(path), "payload");
  EXPECT_EQ(injector.faults_fired(), fired_before + 2);
  EXPECT_FALSE(injector.armed());  // each failpoint fires exactly once
}

TEST(WithRetries, ExhaustsAttemptsOnPersistentTransientFailure) {
  int attempts = 0;
  EXPECT_THROW(io::with_retries(
                   [&] {
                     ++attempts;
                     throw TransientIoError("disk hiccup");
                   },
                   /*max_attempts=*/3, /*backoff_ms=*/0),
               TransientIoError);
  EXPECT_EQ(attempts, 3);
}

TEST(WithRetries, DoesNotRetryNonTransientErrors) {
  int attempts = 0;
  EXPECT_THROW(io::with_retries(
                   [&] {
                     ++attempts;
                     throw IoError("disk on fire");
                   },
                   /*max_attempts=*/3, /*backoff_ms=*/0),
               IoError);
  EXPECT_EQ(attempts, 1);
}

// ---- checkpoint crash-safety -----------------------------------------------

std::shared_ptr<nn::Sequential> tiny_net(uint64_t seed) {
  Rng rng(seed);
  return nn::make_vggnet(nn::VggConfig::tiny(4, 8), rng);
}

TEST(Checkpoint, KillDuringSaveLeavesPreviousCheckpointIntact) {
  DisarmGuard guard;
  const std::string path = test_dir() + "/killed.fdml";
  fs::remove(path);
  const auto net = tiny_net(11);
  nn::save_checkpoint(*net, path);
  const std::string good_bytes = read_file(path);

  // The process "dies" after 10 bytes of the temp file; the real path must
  // never see the partial write.
  io::FaultInjector::instance().arm("truncate:10");
  EXPECT_THROW(nn::save_checkpoint(*net, path), IoError);
  EXPECT_EQ(io::FaultInjector::instance().faults_fired() > 0, true);

  EXPECT_EQ(read_file(path), good_bytes);
  EXPECT_TRUE(nn::checkpoint_exists(path));
  const auto restored = tiny_net(99);  // different init, loads fine
  nn::load_checkpoint(*restored, path);
}

TEST(Checkpoint, BitFlipIsDetectedNamedAndQuarantined) {
  DisarmGuard guard;
  const std::string path = test_dir() + "/flipped.fdml";
  fs::remove(path);
  fs::remove(path + ".corrupt");
  const auto net = tiny_net(12);

  // Silent media corruption: the write "succeeds" but one payload bit is
  // wrong. Bit 200 = byte 25, inside the first record's CRC-protected
  // payload.
  io::FaultInjector::instance().arm("bit-flip:200");
  nn::save_checkpoint(*net, path);

  const nn::CheckpointVerdict verdict = nn::verify_checkpoint(path);
  EXPECT_EQ(verdict.status, nn::CheckpointStatus::kCorrupt);
  EXPECT_FALSE(verdict.detail.empty());
  EXPECT_FALSE(nn::checkpoint_exists(path));
  try {
    nn::load_checkpoint(*net, path);
    FAIL() << "corrupt checkpoint loaded without error";
  } catch (const CorruptionError& e) {
    EXPECT_FALSE(e.record().empty()) << "error should name the damaged record";
  }

  const std::string quarantined = nn::quarantine_checkpoint(path);
  EXPECT_EQ(quarantined, path + ".corrupt");
  EXPECT_FALSE(fs::exists(path));
  EXPECT_TRUE(fs::exists(quarantined));
}

TEST(Checkpoint, ExistsRejectsFileTruncatedAfterMagic) {
  // Regression: the old checkpoint_exists only read the 4-byte magic, so a
  // file cut off right after it (crash before the atomic-write era) passed
  // and the load crashed later.
  const std::string path = test_dir() + "/magic_only.fdml";
  {
    std::ofstream out(path, std::ios::binary);
    out << "FDML";
  }
  EXPECT_FALSE(nn::checkpoint_exists(path));
  EXPECT_EQ(nn::verify_checkpoint(path).status, nn::CheckpointStatus::kCorrupt);

  // Same for a real checkpoint truncated anywhere past the magic.
  const std::string full = test_dir() + "/truncated.fdml";
  const auto net = tiny_net(13);
  nn::save_checkpoint(*net, full);
  const std::string bytes = read_file(full);
  {
    std::ofstream out(path, std::ios::binary);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size() / 2));
  }
  EXPECT_FALSE(nn::checkpoint_exists(path));
}

TEST(Checkpoint, VerifyReportsMissingForAbsentFile) {
  const nn::CheckpointVerdict verdict =
      nn::verify_checkpoint(test_dir() + "/never_written.fdml");
  EXPECT_EQ(verdict.status, nn::CheckpointStatus::kMissing);
}

// ---- resumable training ----------------------------------------------------

struct ToyData {
  std::vector<Tensor> images;
  std::vector<int64_t> labels;
};

ToyData make_toy(int per_class, Rng& rng) {
  ToyData d;
  for (int64_t cls = 0; cls < 4; ++cls) {
    for (int i = 0; i < per_class; ++i) {
      Tensor img = rng.normal_tensor(Shape{3, 8, 8}, 0.0f, 0.05f);
      const int64_t oy = (cls / 2) * 4;
      const int64_t ox = (cls % 2) * 4;
      for (int64_t c = 0; c < 3; ++c) {
        for (int64_t y = 0; y < 4; ++y) {
          for (int64_t x = 0; x < 4; ++x) {
            img.at({c, oy + y, ox + x}) += 0.9f;
          }
        }
      }
      img.clamp_(0.0f, 1.0f);
      d.images.push_back(img);
      d.labels.push_back(cls);
    }
  }
  return d;
}

TEST(Rng, StateRoundTripsMidStream) {
  Rng rng(77);
  (void)rng.normal();  // leave a spare normal pending: the hard case
  const Rng::State saved = rng.get_state();
  std::vector<float> expected;
  for (int i = 0; i < 8; ++i) {
    expected.push_back(rng.normal());
  }
  rng.set_state(saved);
  for (int i = 0; i < 8; ++i) {
    EXPECT_EQ(rng.normal(), expected[static_cast<size_t>(i)]);
  }
}

TEST(Trainer, ResumeAfterKillIsBitForBitIdentical) {
  const std::string snap = test_dir() + "/trainer.snap";
  fs::remove(snap);
  Rng data_rng(5);
  const ToyData toy = make_toy(6, data_rng);

  nn::Trainer::Config base;
  base.epochs = 4;
  base.batch_size = 8;
  base.lr_decay = 0.5f;  // must be restored exactly on resume

  // Reference run: uninterrupted, no snapshots.
  const auto reference = tiny_net(42);
  double reference_loss = 0.0;
  {
    nn::SGD sgd(reference->named_parameters(), {});
    nn::Trainer trainer(*reference, sgd, base);
    Rng train_rng(1);
    reference_loss = trainer.fit(toy.images, toy.labels, train_rng);
  }

  // Interrupted run: identical seeds, snapshots on, "killed" by a throwing
  // epoch callback during epoch 2 (after the end-of-epoch-1 snapshot).
  nn::Trainer::Config resumable = base;
  resumable.snapshot_path = snap;
  {
    const auto net = tiny_net(42);
    nn::SGD sgd(net->named_parameters(), {});
    nn::Trainer trainer(*net, sgd, resumable);
    Rng train_rng(1);
    EXPECT_THROW(
        trainer.fit(toy.images, toy.labels, train_rng,
                    [](int64_t epoch, double, double) {
                      if (epoch == 2) {
                        throw std::runtime_error("simulated kill -9");
                      }
                    }),
        std::runtime_error);
  }
  ASSERT_TRUE(fs::exists(snap));

  // Restarted run: a fresh process would reconstruct model/optimizer from
  // the same config, then fit() resumes from the snapshot.
  int64_t resumed_at = -1;
  resumable.on_resume = [&](int64_t epoch) { resumed_at = epoch; };
  const auto resumed = tiny_net(42);
  double resumed_loss = 0.0;
  {
    nn::SGD sgd(resumed->named_parameters(), {});
    nn::Trainer trainer(*resumed, sgd, resumable);
    Rng train_rng(1);
    resumed_loss = trainer.fit(toy.images, toy.labels, train_rng);
  }
  EXPECT_EQ(resumed_at, 2);
  EXPECT_DOUBLE_EQ(resumed_loss, reference_loss);

  const auto ref_params = reference->named_parameters();
  const auto res_params = resumed->named_parameters();
  ASSERT_EQ(ref_params.size(), res_params.size());
  for (size_t i = 0; i < ref_params.size(); ++i) {
    const Tensor& a = ref_params[i].param.value();
    const Tensor& b = res_params[i].param.value();
    ASSERT_EQ(a.shape(), b.shape());
    for (int64_t j = 0; j < a.numel(); ++j) {
      ASSERT_EQ(a.at(j), b.at(j))
          << "parameter '" << ref_params[i].name << "' diverged at element "
          << j << " — resume is not bit-for-bit";
    }
  }
  nn::Trainer::discard_snapshot(snap);
  EXPECT_FALSE(fs::exists(snap));
}

TEST(Trainer, CorruptSnapshotIsQuarantinedAndTrainingRestarts) {
  const std::string snap = test_dir() + "/garbage.snap";
  fs::remove(snap + ".corrupt");
  {
    std::ofstream out(snap, std::ios::binary);
    out << "FDML this is definitely not a valid bundle";
  }
  Rng data_rng(5);
  const ToyData toy = make_toy(2, data_rng);
  const auto net = tiny_net(8);
  nn::SGD sgd(net->named_parameters(), {});
  nn::Trainer::Config config;
  config.epochs = 1;
  config.batch_size = 8;
  config.snapshot_path = snap;
  nn::Trainer trainer(*net, sgd, config);
  Rng train_rng(2);
  trainer.fit(toy.images, toy.labels, train_rng);  // must not throw
  EXPECT_TRUE(fs::exists(snap + ".corrupt"));
  EXPECT_TRUE(nn::checkpoint_exists(snap));  // fresh end-of-run snapshot
  fs::remove(snap);
  fs::remove(snap + ".corrupt");
}

// ---- experiment-level recovery ---------------------------------------------

core::ExperimentConfig micro_config(const std::string& cache_dir) {
  core::ExperimentConfig config;
  config.image_size = 32;
  config.width_divisor = 64;
  config.train_per_class = 1;
  config.test_per_class = 1;
  config.epochs = 1;
  config.verbose = false;
  config.cache_dir = cache_dir;
  return config;
}

TEST(Experiment, RecoversAfterCrashDuringSave) {
  DisarmGuard guard;
  const std::string cache = test_dir() + "/exp_crash";
  fs::remove_all(cache);
  const core::ExperimentConfig config = micro_config(cache);

  // First durable write of the run (the end-of-training snapshot) is cut
  // short: the "process" dies mid-save.
  io::FaultInjector::instance().arm("truncate:64");
  EXPECT_THROW(core::make_experiment(config), IoError);
  EXPECT_FALSE(nn::checkpoint_exists(config.checkpoint_path()));

  // The restarted run finds no usable artifacts and trains cleanly.
  const core::Experiment exp = core::make_experiment(config);
  EXPECT_TRUE(nn::checkpoint_exists(config.checkpoint_path()));
  EXPECT_FALSE(fs::exists(config.snapshot_path()));
  EXPECT_GT(exp.clean_test.count, 0);
}

TEST(Experiment, RetriesTransientWriteFailure) {
  DisarmGuard guard;
  const std::string cache = test_dir() + "/exp_transient";
  fs::remove_all(cache);
  const core::ExperimentConfig config = micro_config(cache);
  auto& injector = io::FaultInjector::instance();
  const int64_t fired_before = injector.faults_fired();
  injector.arm("fail-write:1");
  core::make_experiment(config);  // retry absorbs the transient failure
  EXPECT_EQ(injector.faults_fired(), fired_before + 1);
  EXPECT_TRUE(nn::checkpoint_exists(config.checkpoint_path()));
}

TEST(Experiment, QuarantinesCorruptCacheAndRetrains) {
  const std::string cache = test_dir() + "/exp_bitrot";
  fs::remove_all(cache);
  const core::ExperimentConfig config = micro_config(cache);
  core::make_experiment(config);
  const std::string path = config.checkpoint_path();
  ASSERT_TRUE(nn::checkpoint_exists(path));

  // Bit-rot the cached checkpoint in place.
  std::string bytes = read_file(path);
  bytes[bytes.size() / 2] ^= 0x04;
  {
    std::ofstream out(path, std::ios::binary);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  }
  ASSERT_FALSE(nn::checkpoint_exists(path));

  // The next run must not die: quarantine, retrain, re-cache.
  const core::Experiment exp = core::make_experiment(config);
  EXPECT_TRUE(fs::exists(path + ".corrupt"));
  EXPECT_TRUE(nn::checkpoint_exists(path));
  EXPECT_GT(exp.clean_test.count, 0);
}

}  // namespace
}  // namespace fademl
