#include "fademl/core/experiment.hpp"

#include <cstdlib>
#include <filesystem>

#include <gtest/gtest.h>

#include "fademl/nn/checkpoint.hpp"
#include "fademl/tensor/error.hpp"

namespace fademl::core {
namespace {

ExperimentConfig micro_config(const std::string& cache_dir) {
  ExperimentConfig config;
  config.image_size = 32;
  config.width_divisor = 64;  // channels {1, 2, 4, 8, 8}: micro model
  config.train_per_class = 1;
  config.test_per_class = 1;
  config.epochs = 1;
  config.verbose = false;
  config.cache_dir = cache_dir;
  return config;
}

TEST(ExperimentConfig, CheckpointPathEncodesConfiguration) {
  ExperimentConfig a;
  ExperimentConfig b;
  b.width_divisor = 4;
  EXPECT_NE(a.checkpoint_path(), b.checkpoint_path());
  ExperimentConfig c;
  c.epochs = 99;
  EXPECT_NE(a.checkpoint_path(), c.checkpoint_path());
  EXPECT_NE(a.checkpoint_path().find("artifacts/"), std::string::npos);
}

TEST(ExperimentConfig, FromEnvRespectsFastFlag) {
  const char* saved = std::getenv("FADEML_FAST");
  setenv("FADEML_FAST", "1", 1);
  const ExperimentConfig fast = ExperimentConfig::from_env();
  setenv("FADEML_FAST", "0", 1);
  const ExperimentConfig full = ExperimentConfig::from_env();
  if (saved != nullptr) {
    setenv("FADEML_FAST", saved, 1);
  } else {
    unsetenv("FADEML_FAST");
  }
  EXPECT_LT(fast.train_per_class, full.train_per_class);
  EXPECT_LT(fast.epochs, full.epochs);
}

TEST(Experiment, TrainsCachesAndReloads) {
  const std::string cache =
      (std::filesystem::temp_directory_path() / "fademl_exp_cache").string();
  std::filesystem::remove_all(cache);
  const ExperimentConfig config = micro_config(cache);

  // First call trains and caches.
  const Experiment first = make_experiment(config);
  EXPECT_TRUE(nn::checkpoint_exists(config.checkpoint_path()));
  EXPECT_EQ(first.dataset.train.size(), 43);
  EXPECT_EQ(first.dataset.test.size(), 43);
  EXPECT_GT(first.model->parameter_count(), 0);

  // Second call loads the identical parameters.
  const Experiment second = make_experiment(config);
  const auto p1 = first.model->named_parameters();
  const auto p2 = second.model->named_parameters();
  ASSERT_EQ(p1.size(), p2.size());
  for (size_t i = 0; i < p1.size(); ++i) {
    const Tensor& a = p1[i].param.value();
    const Tensor& b = p2[i].param.value();
    for (int64_t j = 0; j < a.numel(); ++j) {
      ASSERT_FLOAT_EQ(a.at(j), b.at(j)) << p1[i].name;
    }
  }
  std::filesystem::remove_all(cache);
}

TEST(Experiment, RejectsBadConfig) {
  ExperimentConfig config;
  config.width_divisor = 0;
  EXPECT_THROW(make_experiment(config), Error);
}

}  // namespace
}  // namespace fademl::core
