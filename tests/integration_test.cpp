// End-to-end reproduction of the paper's storyline on the tiny fixture:
// train -> attack under TM-I -> observe filter neutralization under
// TM-II/III -> craft the filter-aware FAdeML attack -> observe survival.

#include <gtest/gtest.h>

#include "fademl/attacks/bim.hpp"
#include "fademl/attacks/fademl_attack.hpp"
#include "fademl/core/analysis.hpp"
#include "fademl/io/image_io.hpp"
#include "fademl/tensor/ops.hpp"
#include "test_fixtures.hpp"

namespace fademl {
namespace {

using core::ScenarioOutcome;
using core::ThreatModel;
using fademl::testing::tiny_pipeline;
using fademl::testing::tiny_world;

attacks::AttackConfig budget() {
  attacks::AttackConfig config;
  config.epsilon = 0.18f;
  config.step_size = 0.02f;
  config.max_iterations = 25;
  return config;
}

TEST(Integration, PaperStorylineOnOneScenario) {
  // Scenario 1: stop -> 60 km/h, through LAP(8).
  const auto pipeline = tiny_pipeline(filters::make_lap(8));
  const core::Scenario& scenario = core::paper_scenarios()[0];

  // Act I: the classic attack succeeds when injected after the filter.
  const attacks::BimAttack classic(budget());
  const ScenarioOutcome blind =
      core::analyze_scenario(pipeline, classic, scenario, 16);
  EXPECT_TRUE(blind.success_tm1());

  // Act II: routed through the filter, the same example loses its punch —
  // the target's probability drops (and typically the source returns).
  EXPECT_LT(blind.adv_tm23.probs.at(scenario.target_class),
            blind.adv_tm1.probs.at(scenario.target_class));

  // Act III: the filter-aware attack holds the misclassification through
  // the filter.
  const attacks::FAdeMLAttack aware(attacks::AttackKind::kBim, budget());
  const ScenarioOutcome fademl =
      core::analyze_scenario(pipeline, aware, scenario, 16);
  EXPECT_TRUE(fademl.success_tm23());

  // The Eq.-2 consistency cost of the aware attack between its two views
  // must be smaller than the blind attack's (its whole design goal).
  EXPECT_LT(std::abs(fademl.eq2), std::abs(blind.eq2) + 0.5f);
}

TEST(Integration, FademlBeatsBlindAcrossScenarios) {
  // Across all five payload scenarios (where both classes are in the tiny
  // training set), FAdeML's filtered target probability must on average
  // beat the blind attack's.
  const auto pipeline = tiny_pipeline(filters::make_lap(8));
  float blind_sum = 0.0f;
  float aware_sum = 0.0f;
  int counted = 0;
  for (const core::Scenario& scenario : core::paper_scenarios()) {
    const attacks::BimAttack classic(budget());
    const attacks::FAdeMLAttack aware(attacks::AttackKind::kBim, budget());
    const ScenarioOutcome b =
        core::analyze_scenario(pipeline, classic, scenario, 16);
    const ScenarioOutcome a =
        core::analyze_scenario(pipeline, aware, scenario, 16);
    blind_sum += b.adv_tm23.probs.at(scenario.target_class);
    aware_sum += a.adv_tm23.probs.at(scenario.target_class);
    ++counted;
  }
  ASSERT_EQ(counted, 5);
  EXPECT_GT(aware_sum, blind_sum);
}

TEST(Integration, FilterSweepRestoresAccuracyUnderBlindAttackNoise) {
  // Universal-noise evaluation: adversarial noise from scenario 1 applied
  // to every training image. Through a smoothing filter the accuracy must
  // recover relative to the unfiltered attacked accuracy.
  const auto& w = tiny_world();
  auto pipeline = tiny_pipeline(filters::make_identity());
  const attacks::BimAttack classic(budget());
  const attacks::AttackResult r =
      classic.run(pipeline, data::canonical_sample(14, 16), 3);

  const auto attacked_nofilter = core::accuracy_with_noise(
      pipeline, w.train_images, w.train_labels, r.noise, ThreatModel::kIII);
  pipeline.set_filter(filters::make_lap(8));
  const auto attacked_filtered = core::accuracy_with_noise(
      pipeline, w.train_images, w.train_labels, r.noise, ThreatModel::kIII);
  // Smoothing must not make things *worse* than the raw attacked pipeline
  // by more than noise; typically it recovers several points.
  EXPECT_GE(attacked_filtered.top5, attacked_nofilter.top5 - 0.05);
}

TEST(Integration, AdversarialImagesRemainVisuallyClose) {
  // Imperceptibility proxy: L2 distance of the BIM example stays small
  // relative to the image norm, and the example round-trips through the
  // 8-bit PPM dump (what a camera pipeline would quantize to) with its
  // attack intact.
  const auto pipeline = tiny_pipeline(filters::make_identity());
  const Tensor src = data::canonical_sample(14, 16);
  const attacks::BimAttack classic(budget());
  const attacks::AttackResult r = classic.run(pipeline, src, 3);
  EXPECT_LT(r.l2 / norm_l2(src), 0.35f);

  const std::string path = "/tmp/fademl_integration_adv.ppm";
  io::write_ppm(path, r.adversarial);
  const Tensor quantized = io::read_ppm(path);
  const auto p = pipeline.predict(quantized, ThreatModel::kI);
  EXPECT_EQ(p.label, 3) << "attack must survive 8-bit quantization";
  std::remove(path.c_str());
}

TEST(Integration, ThreatModel2AlsoNeutralizesBlindAttack) {
  // TM-II (acquisition blur + filter) neutralizes at least as strongly as
  // TM-III for the blind attack.
  const auto pipeline = tiny_pipeline(filters::make_lap(8));
  const attacks::BimAttack classic(budget());
  const core::Scenario& scenario = core::paper_scenarios()[0];
  const attacks::AttackResult r =
      classic.run(pipeline, data::canonical_sample(14, 16),
                  scenario.target_class);
  const float tm1 = pipeline.predict_probs(r.adversarial, ThreatModel::kI)
                        .at(scenario.target_class);
  const float tm2 = pipeline.predict_probs(r.adversarial, ThreatModel::kII)
                        .at(scenario.target_class);
  EXPECT_LT(tm2, tm1);
}

}  // namespace
}  // namespace fademl
