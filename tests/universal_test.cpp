#include "fademl/attacks/universal.hpp"

#include <gtest/gtest.h>

#include "fademl/tensor/error.hpp"
#include "fademl/tensor/ops.hpp"
#include "test_fixtures.hpp"

namespace fademl::attacks {
namespace {

using core::ThreatModel;
using fademl::testing::tiny_pipeline;
using fademl::testing::tiny_world;

TEST(Universal, ValidatesOptions) {
  AttackConfig bad;
  bad.epsilon = 0.0f;
  EXPECT_THROW(UniversalPerturbation{bad}, Error);
  UniversalOptions bad_opt;
  bad_opt.epochs = 0;
  EXPECT_THROW(UniversalPerturbation({}, bad_opt), Error);
  bad_opt.epochs = 1;
  bad_opt.target_fooling_rate = 0.0f;
  EXPECT_THROW(UniversalPerturbation({}, bad_opt), Error);
}

TEST(Universal, RespectsBudgetAndFoolsMostSamples) {
  const auto pipeline = tiny_pipeline(filters::make_identity());
  const auto& w = tiny_world();
  // One image per class keeps the test quick.
  std::vector<Tensor> images;
  std::vector<int64_t> labels;
  for (int64_t cls : w.classes) {
    images.push_back(data::canonical_sample(cls, w.image_size));
    labels.push_back(cls);
  }
  AttackConfig config;
  config.epsilon = 0.2f;
  UniversalOptions options;
  options.epochs = 4;
  options.steps_per_sample = 4;
  options.step_size = 0.02f;
  options.target_fooling_rate = 0.7f;
  const UniversalPerturbation uap(config, options);
  const UniversalResult result = uap.craft(pipeline, images, labels);

  EXPECT_LE(norm_linf(result.perturbation), config.epsilon + 1e-5f);
  EXPECT_GE(result.fooling_rate, 0.5);  // one noise fools most classes
  EXPECT_GT(result.gradient_evaluations, 0);
  // fooling_rate() recomputes the same number.
  EXPECT_NEAR(UniversalPerturbation::fooling_rate(
                  pipeline, images, result.perturbation, ThreatModel::kI),
              result.fooling_rate, 1e-9);
}

TEST(Universal, ZeroPerturbationFoolsNothing) {
  const auto pipeline = tiny_pipeline(filters::make_identity());
  const auto& w = tiny_world();
  std::vector<Tensor> images = {data::canonical_sample(14, w.image_size)};
  EXPECT_DOUBLE_EQ(UniversalPerturbation::fooling_rate(
                       pipeline, images,
                       Tensor::zeros(images[0].shape()), ThreatModel::kI),
                   0.0);
}

TEST(Universal, FilterAwareVariantSurvivesTheFilter) {
  // A TM-III universal perturbation is crafted through the filter and must
  // fool more filtered predictions than a TM-I one evaluated through the
  // same filter.
  const auto pipeline = tiny_pipeline(filters::make_lap(8));
  const auto& w = tiny_world();
  std::vector<Tensor> images;
  std::vector<int64_t> labels;
  for (int64_t cls : w.classes) {
    images.push_back(data::canonical_sample(cls, w.image_size));
    labels.push_back(cls);
  }
  AttackConfig blind_config;
  blind_config.epsilon = 0.2f;
  AttackConfig aware_config = blind_config;
  aware_config.grad_tm = core::ThreatModel::kIII;
  UniversalOptions options;
  options.epochs = 3;
  options.steps_per_sample = 3;
  options.step_size = 0.02f;

  const UniversalResult blind =
      UniversalPerturbation(blind_config, options).craft(pipeline, images,
                                                         labels);
  const UniversalResult aware =
      UniversalPerturbation(aware_config, options).craft(pipeline, images,
                                                         labels);
  const double blind_through_filter = UniversalPerturbation::fooling_rate(
      pipeline, images, blind.perturbation, core::ThreatModel::kIII);
  const double aware_through_filter = UniversalPerturbation::fooling_rate(
      pipeline, images, aware.perturbation, core::ThreatModel::kIII);
  EXPECT_GE(aware_through_filter, blind_through_filter - 1e-9);
}

}  // namespace
}  // namespace fademl::attacks
