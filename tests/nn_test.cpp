#include <cmath>
#include <cstdio>
#include <filesystem>

#include <gtest/gtest.h>

#include "fademl/autograd/ops.hpp"
#include "fademl/nn/checkpoint.hpp"
#include "fademl/nn/layers.hpp"
#include "fademl/nn/module.hpp"
#include "fademl/nn/optimizer.hpp"
#include "fademl/nn/trainer.hpp"
#include "fademl/nn/vggnet.hpp"
#include "fademl/tensor/error.hpp"
#include "fademl/tensor/ops.hpp"

namespace fademl::nn {
namespace {

TEST(Conv2dLayer, ShapesAndParams) {
  Rng rng(1);
  Conv2d conv(3, 8, 3, 1, 1, rng);
  Variable x{rng.normal_tensor(Shape{2, 3, 8, 8}, 0, 1)};
  const Variable y = conv.forward(x);
  EXPECT_EQ(y.value().shape(), Shape({2, 8, 8, 8}));
  const auto params = conv.named_parameters();
  ASSERT_EQ(params.size(), 2u);
  EXPECT_EQ(params[0].name, "weight");
  EXPECT_EQ(params[1].name, "bias");
  EXPECT_EQ(conv.parameter_count(), 8 * 3 * 3 * 3 + 8);
  EXPECT_EQ(conv.name(), "Conv2d(3->8, k3)");
}

TEST(Conv2dLayer, KaimingInitIsBoundedAndNonDegenerate) {
  Rng rng(2);
  Conv2d conv(16, 16, 3, 1, 1, rng);
  const Tensor& w = conv.weight().value();
  const float bound = std::sqrt(6.0f / (16 * 9));
  EXPECT_LE(max(w), bound);
  EXPECT_GE(min(w), -bound);
  EXPECT_GT(norm_l2(w), 0.1f);  // not all zeros
  // Bias starts at zero.
  EXPECT_FLOAT_EQ(norm_l2(conv.bias().value()), 0.0f);
}

TEST(LinearLayer, ForwardMatchesManual) {
  Rng rng(3);
  Linear fc(4, 2, rng);
  fc.weight().mutable_value().copy_from(
      Tensor{Shape{2, 4}, {1, 0, 0, 0, 0, 1, 0, 0}});
  fc.bias().mutable_value().copy_from(Tensor{10.0f, 20.0f});
  Variable x{Tensor{Shape{1, 4}, {1, 2, 3, 4}}};
  const Variable y = fc.forward(x);
  EXPECT_FLOAT_EQ(y.value().at({0, 0}), 11.0f);
  EXPECT_FLOAT_EQ(y.value().at({0, 1}), 22.0f);
}

TEST(Layers, ReLUMaxPoolFlatten) {
  Rng rng(4);
  ReLU relu_layer;
  Variable x{Tensor{Shape{1, 1, 2, 2}, {-1, 2, -3, 4}}};
  const Variable r = relu_layer.forward(x);
  EXPECT_FLOAT_EQ(r.value().at(0), 0.0f);
  EXPECT_FLOAT_EQ(r.value().at(1), 2.0f);

  MaxPool2d pool(2);
  const Variable p = pool.forward(x);
  EXPECT_EQ(p.value().shape(), Shape({1, 1, 1, 1}));
  EXPECT_FLOAT_EQ(p.value().item(), 4.0f);

  Flatten flat;
  const Variable f = flat.forward(x);
  EXPECT_EQ(f.value().shape(), Shape({1, 4}));
}

TEST(Sequential, ChainsAndNamesParameters) {
  Rng rng(5);
  Sequential net;
  net.add(std::make_shared<Conv2d>(1, 2, 3, 1, 1, rng))
      .add(std::make_shared<ReLU>())
      .add(std::make_shared<Flatten>())
      .add(std::make_shared<Linear>(2 * 4 * 4, 3, rng));
  Variable x{rng.normal_tensor(Shape{2, 1, 4, 4}, 0, 1)};
  const Variable y = net.forward(x);
  EXPECT_EQ(y.value().shape(), Shape({2, 3}));
  const auto params = net.named_parameters();
  ASSERT_EQ(params.size(), 4u);
  EXPECT_EQ(params[0].name, "0.weight");
  EXPECT_EQ(params[3].name, "3.bias");
  EXPECT_EQ(net.size(), 4u);
  EXPECT_THROW(Sequential({nullptr}), Error);
}

TEST(VggConfig, FactoriesAndScaling) {
  const VggConfig paper = VggConfig::paper();
  EXPECT_EQ(paper.channels, (std::vector<int64_t>{64, 128, 256, 512, 512}));
  const VggConfig scaled = VggConfig::scaled(8);
  EXPECT_EQ(scaled.channels, (std::vector<int64_t>{8, 16, 32, 64, 64}));
  const VggConfig tiny = VggConfig::tiny();
  EXPECT_EQ(tiny.channels.size(), 2u);
  EXPECT_THROW(VggConfig::scaled(0), Error);
}

TEST(VggNet, BuildsPaperTopology) {
  Rng rng(6);
  const auto net = make_vggnet(VggConfig::scaled(16), rng);
  // 5 x (Conv, ReLU, Pool) + Flatten + Linear = 17 modules.
  EXPECT_EQ(net->size(), 17u);
  Variable x{rng.uniform_tensor(Shape{1, 3, 32, 32}, 0, 1)};
  const Variable y = net->forward(x);
  EXPECT_EQ(y.value().shape(), Shape({1, 43}));
}

TEST(VggNet, RejectsIndivisibleInputSize) {
  Rng rng(7);
  VggConfig config = VggConfig::scaled(16);
  config.input_size = 48;  // 48 / 2^5 = 1.5: invalid
  EXPECT_THROW(make_vggnet(config, rng), Error);
}

TEST(SGDOptimizer, PlainStepDescends) {
  // One parameter, loss = 0.5 * w^2 -> gradient = w.
  Variable w{Tensor::scalar(4.0f), true};
  SGD::Config config;
  config.lr = 0.25f;
  config.momentum = 0.0f;
  SGD sgd({{"w", w}}, config);
  const Variable loss = autograd::mul_scalar(autograd::mul(w, w), 0.5f);
  loss.backward();
  sgd.step();
  EXPECT_FLOAT_EQ(w.value().item(), 3.0f);  // 4 - 0.25*4
}

TEST(SGDOptimizer, MomentumAccumulates) {
  Variable w{Tensor::scalar(1.0f), true};
  SGD::Config config;
  config.lr = 0.1f;
  config.momentum = 0.5f;
  SGD sgd({{"w", w}}, config);
  // Constant gradient of 1 applied twice: v1=1, v2=1.5.
  w.zero_grad();
  const Variable l1 = autograd::sum(w);
  l1.backward();
  sgd.step();
  EXPECT_NEAR(w.value().item(), 0.9f, 1e-6f);
  sgd.zero_grad();
  const Variable l2 = autograd::sum(w);
  l2.backward();
  sgd.step();
  EXPECT_NEAR(w.value().item(), 0.9f - 0.1f * 1.5f, 1e-6f);
}

TEST(AdamOptimizer, ConvergesOnQuadratic) {
  Variable w{Tensor::scalar(5.0f), true};
  Adam::Config config;
  config.lr = 0.5f;
  Adam adam({{"w", w}}, config);
  for (int i = 0; i < 50; ++i) {
    adam.zero_grad();
    const Variable loss = autograd::mul_scalar(autograd::mul(w, w), 0.5f);
    loss.backward();
    adam.step();
  }
  EXPECT_NEAR(w.value().item(), 0.0f, 0.2f);
}

TEST(StackImages, LayoutAndValidation) {
  const Tensor a = Tensor::full(Shape{1, 2, 2}, 1.0f);
  const Tensor b = Tensor::full(Shape{1, 2, 2}, 2.0f);
  const Tensor batch = stack_images({a, b});
  EXPECT_EQ(batch.shape(), Shape({2, 1, 2, 2}));
  EXPECT_FLOAT_EQ(batch.at({1, 0, 1, 1}), 2.0f);
  EXPECT_THROW(stack_images({}), Error);
  EXPECT_THROW(stack_images({a, Tensor::zeros(Shape{1, 3, 3})}), Error);
}

/// Tiny synthetic task: each class is a distinct constant image + noise.
/// Any working conv net + trainer must overfit this easily.
struct ToyData {
  std::vector<Tensor> images;
  std::vector<int64_t> labels;
};

ToyData make_toy(int per_class, Rng& rng) {
  ToyData d;
  for (int64_t cls = 0; cls < 4; ++cls) {
    for (int i = 0; i < per_class; ++i) {
      Tensor img = rng.normal_tensor(Shape{3, 8, 8}, 0.0f, 0.05f);
      // Class signature: bright block in one of 4 quadrants.
      const int64_t oy = (cls / 2) * 4;
      const int64_t ox = (cls % 2) * 4;
      for (int64_t c = 0; c < 3; ++c) {
        for (int64_t y = 0; y < 4; ++y) {
          for (int64_t x = 0; x < 4; ++x) {
            img.at({c, oy + y, ox + x}) += 0.9f;
          }
        }
      }
      img.clamp_(0.0f, 1.0f);
      d.images.push_back(img);
      d.labels.push_back(cls);
    }
  }
  return d;
}

TEST(Trainer, OverfitsToyTask) {
  Rng rng(42);
  const auto net = make_vggnet(VggConfig::tiny(4, 8), rng);
  const ToyData train = make_toy(8, rng);

  SGD::Config sgd_config;
  sgd_config.lr = 0.08f;
  SGD sgd(net->named_parameters(), sgd_config);
  Trainer::Config tconfig;
  tconfig.epochs = 15;
  tconfig.batch_size = 8;
  Trainer trainer(*net, sgd, tconfig);
  Rng train_rng(1);
  std::vector<double> losses;
  trainer.fit(train.images, train.labels, train_rng,
              [&](int64_t, double loss, double) { losses.push_back(loss); });

  ASSERT_EQ(losses.size(), 15u);
  EXPECT_LT(losses.back(), losses.front() * 0.5);
  const EvalResult eval = evaluate(*net, train.images, train.labels);
  EXPECT_GT(eval.top1, 0.95);
  EXPECT_DOUBLE_EQ(eval.top5, 1.0);  // only 4 classes: top-5 is free
}

TEST(Evaluate, PerfectAndChanceBaselines) {
  Rng rng(9);
  const auto net = make_vggnet(VggConfig::tiny(4, 8), rng);
  const ToyData data = make_toy(4, rng);
  const EvalResult eval = evaluate(*net, data.images, data.labels);
  EXPECT_EQ(eval.count, 16);
  // Untrained net: top-5 over 4 classes is trivially 1.
  EXPECT_DOUBLE_EQ(eval.top5, 1.0);
  EXPECT_GE(eval.top1, 0.0);
  EXPECT_LE(eval.top1, 1.0);
}

TEST(Checkpoint, RoundtripRestoresExactWeights) {
  Rng rng(10);
  const auto net = make_vggnet(VggConfig::tiny(4, 8), rng);
  const std::string path =
      (std::filesystem::temp_directory_path() / "fademl_ckpt_test.fdml")
          .string();
  save_checkpoint(*net, path);

  Rng rng2(999);  // different init
  const auto net2 = make_vggnet(VggConfig::tiny(4, 8), rng2);
  load_checkpoint(*net2, path);

  const auto p1 = net->named_parameters();
  const auto p2 = net2->named_parameters();
  ASSERT_EQ(p1.size(), p2.size());
  for (size_t i = 0; i < p1.size(); ++i) {
    const Tensor& a = p1[i].param.value();
    const Tensor& b = p2[i].param.value();
    ASSERT_EQ(a.shape(), b.shape());
    for (int64_t j = 0; j < a.numel(); ++j) {
      ASSERT_FLOAT_EQ(a.at(j), b.at(j));
    }
  }
  std::remove(path.c_str());
}

TEST(Checkpoint, ArchitectureMismatchIsAnError) {
  Rng rng(11);
  const auto small = make_vggnet(VggConfig::tiny(4, 8), rng);
  const auto big = make_vggnet(VggConfig::tiny(8, 8), rng);
  const std::string path =
      (std::filesystem::temp_directory_path() / "fademl_ckpt_mismatch.fdml")
          .string();
  save_checkpoint(*small, path);
  EXPECT_THROW(load_checkpoint(*big, path), Error);
  std::remove(path.c_str());
}

TEST(Checkpoint, ExistsProbe) {
  EXPECT_FALSE(checkpoint_exists("/nonexistent/nowhere.fdml"));
  const std::string path =
      (std::filesystem::temp_directory_path() / "fademl_ckpt_probe.fdml")
          .string();
  Rng rng(12);
  const auto net = make_vggnet(VggConfig::tiny(4, 8), rng);
  save_checkpoint(*net, path);
  EXPECT_TRUE(checkpoint_exists(path));
  std::remove(path.c_str());
}

}  // namespace
}  // namespace fademl::nn
