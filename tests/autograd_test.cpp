#include "fademl/autograd/ops.hpp"

#include <cmath>
#include <functional>

#include <gtest/gtest.h>

#include "fademl/autograd/variable.hpp"
#include "fademl/tensor/error.hpp"
#include "fademl/tensor/ops.hpp"
#include "fademl/tensor/random.hpp"

namespace fademl::autograd {
namespace {

/// Compare the analytic gradient of `scalar_of(x)` at `x0` against central
/// differences, elementwise with mixed tolerance.
void expect_gradient_matches(
    const std::function<Variable(const Variable&)>& scalar_of,
    const Tensor& x0, float rtol = 2e-2f, float atol = 2e-3f) {
  Variable x{x0.clone(), /*requires_grad=*/true};
  const Variable y = scalar_of(x);
  ASSERT_EQ(y.value().numel(), 1);
  y.backward();
  const Tensor analytic = x.grad();

  const Tensor numeric = numerical_gradient(
      [&](const Tensor& probe) {
        Variable v{probe.clone()};
        return scalar_of(v).value().item();
      },
      x0);

  ASSERT_EQ(analytic.numel(), numeric.numel());
  for (int64_t i = 0; i < analytic.numel(); ++i) {
    const float a = analytic.at(i);
    const float n = numeric.at(i);
    EXPECT_NEAR(a, n, rtol * std::fabs(n) + atol)
        << "component " << i;
  }
}

TEST(Variable, LeafBasics) {
  Variable v{Tensor::ones(Shape{3}), true};
  EXPECT_TRUE(v.defined());
  EXPECT_TRUE(v.requires_grad());
  EXPECT_FALSE(v.grad().defined());
  Variable u;
  EXPECT_FALSE(u.defined());
  EXPECT_THROW(u.value(), Error);
}

TEST(Variable, BackwardRequiresScalarWithoutSeed) {
  Variable v{Tensor::ones(Shape{3}), true};
  EXPECT_THROW(v.backward(), Error);
}

TEST(Variable, GradAccumulatesAcrossBackwards) {
  Variable x{Tensor::ones(Shape{2}), true};
  const Variable y = sum(mul_scalar(x, 3.0f));
  y.backward();
  y.backward();
  EXPECT_FLOAT_EQ(x.grad().at(0), 6.0f);  // 3 + 3
  x.zero_grad();
  EXPECT_FLOAT_EQ(x.grad().at(0), 0.0f);
}

TEST(Variable, DiamondGraphGradients) {
  // y = sum((x + x) * x) = sum(2x^2), dy/dx = 4x.
  Variable x{Tensor{2.0f, 3.0f}, true};
  const Variable two_x = add(x, x);
  const Variable y = sum(mul(two_x, x));
  y.backward();
  EXPECT_FLOAT_EQ(x.grad().at(0), 8.0f);
  EXPECT_FLOAT_EQ(x.grad().at(1), 12.0f);
}

TEST(Variable, NoGradLeafStaysUntouched) {
  Variable x{Tensor{1.0f, 2.0f}, true};
  Variable c{Tensor{5.0f, 6.0f}, false};
  const Variable y = sum(mul(x, c));
  y.backward();
  EXPECT_FALSE(c.grad().defined());
  EXPECT_FLOAT_EQ(x.grad().at(0), 5.0f);
}

TEST(GradCheck, AddSubMul) {
  Rng rng(1);
  const Tensor x0 = rng.normal_tensor(Shape{6}, 0, 1);
  const Tensor c = rng.normal_tensor(Shape{6}, 0, 1);
  expect_gradient_matches(
      [&](const Variable& x) {
        Variable cv{c.clone()};
        return sum(mul(add(x, cv), sub(x, cv)));
      },
      x0);
}

TEST(GradCheck, ScalarOps) {
  Rng rng(2);
  const Tensor x0 = rng.normal_tensor(Shape{5}, 0, 1);
  expect_gradient_matches(
      [](const Variable& x) {
        return sum(add_scalar(mul_scalar(x, 2.5f), -1.0f));
      },
      x0);
}

TEST(GradCheck, Relu) {
  // Points away from the kink so finite differences are valid.
  const Tensor x0{-1.5f, -0.5f, 0.5f, 1.5f, 2.5f};
  expect_gradient_matches([](const Variable& x) { return sum(relu(x)); }, x0);
}

TEST(GradCheck, Tanh) {
  Rng rng(3);
  const Tensor x0 = rng.normal_tensor(Shape{5}, 0, 1);
  expect_gradient_matches([](const Variable& x) { return sum(tanh(x)); }, x0);
}

TEST(GradCheck, MeanAndReshape) {
  Rng rng(4);
  const Tensor x0 = rng.normal_tensor(Shape{2, 6}, 0, 1);
  expect_gradient_matches(
      [](const Variable& x) { return mean(reshape(x, Shape{3, 4})); }, x0);
}

TEST(GradCheck, Matmul) {
  Rng rng(5);
  const Tensor x0 = rng.normal_tensor(Shape{3, 4}, 0, 1);
  const Tensor w = rng.normal_tensor(Shape{4, 2}, 0, 1);
  expect_gradient_matches(
      [&](const Variable& x) {
        Variable wv{w.clone()};
        return sum(matmul(x, wv));
      },
      x0);
}

TEST(GradCheck, MatmulWeightSide) {
  Rng rng(6);
  const Tensor a = rng.normal_tensor(Shape{2, 3}, 0, 1);
  const Tensor w0 = rng.normal_tensor(Shape{3, 4}, 0, 1);
  expect_gradient_matches(
      [&](const Variable& w) {
        Variable av{a.clone()};
        return sum(matmul(av, w));
      },
      w0);
}

TEST(GradCheck, LinearAllInputs) {
  Rng rng(7);
  const Tensor x0 = rng.normal_tensor(Shape{3, 4}, 0, 1);
  const Tensor w0 = rng.normal_tensor(Shape{2, 4}, 0, 1);
  const Tensor b0 = rng.normal_tensor(Shape{2}, 0, 1);
  expect_gradient_matches(
      [&](const Variable& x) {
        Variable w{w0.clone()};
        Variable b{b0.clone()};
        return sum(linear(x, w, b));
      },
      x0);
  expect_gradient_matches(
      [&](const Variable& w) {
        Variable x{x0.clone()};
        Variable b{b0.clone()};
        return sum(linear(x, w, b));
      },
      w0);
  expect_gradient_matches(
      [&](const Variable& b) {
        Variable x{x0.clone()};
        Variable w{w0.clone()};
        return sum(linear(x, w, b));
      },
      b0);
}

TEST(GradCheck, Conv2dInput) {
  Rng rng(8);
  const Tensor x0 = rng.normal_tensor(Shape{1, 2, 5, 5}, 0, 1);
  const Tensor w0 = rng.normal_tensor(Shape{3, 2, 3, 3}, 0, 0.5f);
  const Tensor b0 = rng.normal_tensor(Shape{3}, 0, 0.5f);
  Conv2dSpec spec;
  expect_gradient_matches(
      [&](const Variable& x) {
        Variable w{w0.clone()};
        Variable b{b0.clone()};
        return sum(conv2d(x, w, b, spec));
      },
      x0, 3e-2f, 5e-3f);
}

TEST(GradCheck, Conv2dWeightAndBias) {
  Rng rng(9);
  const Tensor x0 = rng.normal_tensor(Shape{2, 2, 4, 4}, 0, 1);
  const Tensor w0 = rng.normal_tensor(Shape{2, 2, 3, 3}, 0, 0.5f);
  const Tensor b0 = rng.normal_tensor(Shape{2}, 0, 0.5f);
  Conv2dSpec spec;
  expect_gradient_matches(
      [&](const Variable& w) {
        Variable x{x0.clone()};
        Variable b{b0.clone()};
        return sum(conv2d(x, w, b, spec));
      },
      w0, 3e-2f, 5e-3f);
  expect_gradient_matches(
      [&](const Variable& b) {
        Variable x{x0.clone()};
        Variable w{w0.clone()};
        return sum(conv2d(x, w, b, spec));
      },
      b0, 3e-2f, 5e-3f);
}

TEST(GradCheck, MaxPool) {
  // Distinct values so the argmax is stable under the probe perturbation.
  Tensor x0{Shape{1, 1, 4, 4}};
  for (int64_t i = 0; i < 16; ++i) {
    x0.at(i) = static_cast<float>(i) * 0.37f;
  }
  expect_gradient_matches(
      [](const Variable& x) { return sum(maxpool2d(x, 2)); }, x0);
}

TEST(GradCheck, SoftmaxRows) {
  Rng rng(10);
  const Tensor x0 = rng.normal_tensor(Shape{2, 5}, 0, 1);
  const Tensor w = rng.normal_tensor(Shape{2, 5}, 0, 1);
  expect_gradient_matches(
      [&](const Variable& x) { return dot_const(softmax_rows(x), w); }, x0);
}

TEST(GradCheck, CrossEntropy) {
  Rng rng(11);
  const Tensor x0 = rng.normal_tensor(Shape{3, 6}, 0, 2);
  expect_gradient_matches(
      [](const Variable& x) { return cross_entropy(x, {1, 4, 0}); }, x0);
}

TEST(GradCheck, DotConst) {
  Rng rng(12);
  const Tensor x0 = rng.normal_tensor(Shape{7}, 0, 1);
  const Tensor w = rng.normal_tensor(Shape{7}, 0, 1);
  expect_gradient_matches(
      [&](const Variable& x) { return dot_const(x, w); }, x0);
}

TEST(CrossEntropy, ValueMatchesManualComputation) {
  const Tensor logits{Shape{1, 3}, {1.0f, 2.0f, 3.0f}};
  Variable x{logits.clone()};
  const Variable loss = cross_entropy(x, {2});
  const float denom =
      std::exp(1.0f) + std::exp(2.0f) + std::exp(3.0f);
  EXPECT_NEAR(loss.value().item(), -std::log(std::exp(3.0f) / denom), 1e-5f);
}

TEST(CrossEntropy, RejectsBadLabels) {
  Variable x{Tensor::zeros(Shape{2, 3})};
  EXPECT_THROW(cross_entropy(x, {0}), Error);      // count mismatch
  EXPECT_THROW(cross_entropy(x, {0, 3}), Error);   // label out of range
  EXPECT_THROW(cross_entropy(x, {0, -1}), Error);  // negative label
}

TEST(Autograd, DeepChainDoesNotOverflowStack) {
  // 20k-node chain exercises the iterative topological sort.
  Variable x{Tensor::scalar(1.0f), true};
  Variable y = x;
  for (int i = 0; i < 20000; ++i) {
    y = add_scalar(y, 0.0f);
  }
  const Variable loss = sum(y);
  loss.backward();
  EXPECT_FLOAT_EQ(x.grad().item(), 1.0f);
}

}  // namespace
}  // namespace fademl::autograd
