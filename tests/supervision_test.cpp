// Self-healing chaos tests: the supervisor (heartbeats, abandon, respawn,
// restart budget + backoff), the poison-input quarantine, and the hot-swap
// vs worker-restart race. Every fault is driven deterministically through
// the io::FaultInjector compute failpoints (worker-wedge:N, poison-input:C,
// restart-storm:N). The suite must stay clean under ASan/UBSan *and* TSan
// (scripts/check.sh --tsan runs exactly this binary).

#include <atomic>
#include <chrono>
#include <cstring>
#include <filesystem>
#include <future>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "fademl/io/failpoint.hpp"
#include "fademl/net/registry.hpp"
#include "fademl/nn/checkpoint.hpp"
#include "fademl/nn/vggnet.hpp"
#include "fademl/serve/errors.hpp"
#include "fademl/serve/quarantine.hpp"
#include "fademl/serve/service.hpp"
#include "fademl/serve/stats.hpp"
#include "fademl/tensor/random.hpp"

namespace fademl::serve {
namespace {

using std::chrono::milliseconds;

constexpr int64_t kSide = 8;
constexpr int64_t kClasses = 4;

/// One fully independent pipeline replica (untrained — supervision
/// semantics do not depend on accuracy, and skipping training keeps this
/// suite fast enough to run under TSan).
std::unique_ptr<core::InferencePipeline> make_replica() {
  Rng rng(99);  // same seed -> identical weights across replicas
  auto model = nn::make_vggnet(nn::VggConfig::tiny(kClasses, kSide), rng);
  return std::make_unique<core::InferencePipeline>(std::move(model),
                                                   filters::make_lap(4));
}

std::vector<std::unique_ptr<core::InferencePipeline>> make_replicas(
    size_t count) {
  std::vector<std::unique_ptr<core::InferencePipeline>> replicas;
  for (size_t i = 0; i < count; ++i) {
    replicas.push_back(make_replica());
  }
  return replicas;
}

Tensor valid_image(uint64_t seed = 5) {
  Rng rng(seed);
  return rng.uniform_tensor(Shape{3, kSide, kSide}, 0.0f, 1.0f);
}

/// Supervised service config with timeouts sized for tests. The circuit
/// breaker threshold is pushed out of reach: these tests study the
/// supervisor and the quarantine, and a tripped breaker would turn every
/// later submit into CircuitOpenError noise.
ServiceConfig supervised_config(int max_restarts = 8,
                                bool with_factory = true) {
  ServiceConfig config;
  config.admission.expected_height = kSide;
  config.admission.expected_width = kSide;
  config.breaker.failure_threshold = 1 << 20;
  config.supervisor.enabled = true;
  config.supervisor.poll_interval = milliseconds(5);
  config.supervisor.stall_timeout = milliseconds(150);
  config.supervisor.max_restarts = max_restarts;
  config.supervisor.restart_backoff = milliseconds(5);
  config.supervisor.max_restart_backoff = milliseconds(60);
  if (with_factory) {
    config.replica_factory = [] { return make_replica(); };
  }
  return config;
}

bool bitwise_equal(const Tensor& a, const Tensor& b) {
  if (a.numel() != b.numel()) {
    return false;
  }
  return std::memcmp(a.data(), b.data(),
                     sizeof(float) * static_cast<size_t>(a.numel())) == 0;
}

/// Poll until `pred` holds (the only non-determinism here is supervisor
/// scan scheduling; this bounds it).
template <typename Pred>
::testing::AssertionResult eventually(Pred pred,
                                      milliseconds timeout = milliseconds(
                                          10000)) {
  const auto until = std::chrono::steady_clock::now() + timeout;
  while (std::chrono::steady_clock::now() < until) {
    if (pred()) {
      return ::testing::AssertionSuccess();
    }
    std::this_thread::sleep_for(milliseconds(1));
  }
  return ::testing::AssertionFailure() << "condition not reached in time";
}

/// Every test leaves the process-wide injector disarmed (disarm also
/// releases any thread still blocked in a wedge).
class SupervisionTest : public ::testing::Test {
 protected:
  void SetUp() override { io::FaultInjector::instance().disarm(); }
  void TearDown() override { io::FaultInjector::instance().disarm(); }
};

// ---- supervisor: abandon / respawn ----------------------------------------

TEST_F(SupervisionTest, WedgedWorkerIsAbandonedTypedErrorAndPoolRefills) {
  InferenceService service(make_replicas(2), supervised_config());
  io::FaultInjector::instance().arm("worker-wedge:1");

  // The wedged worker's in-flight request fails with the typed, retryable
  // error — the caller is not left hanging for the release.
  auto future = service.submit(valid_image());
  EXPECT_THROW(future.get(), WorkerLostError);

  // The supervisor abandons the stuck replica and refills the slot.
  EXPECT_TRUE(eventually([&] {
    const ServiceStats s = service.stats();
    return s.workers_live == 2 && s.workers_restarted >= 1;
  }));
  const ServiceStats stats = service.stats();
  EXPECT_GE(stats.workers_lost, 1);
  EXPECT_GE(stats.requests_worker_lost, 1);
  EXPECT_EQ(stats.workers, 2);

  // The healed pool serves again (the zombie stays wedged until the
  // fixture's disarm; it must not be needed for fresh traffic).
  EXPECT_NO_THROW(service.classify(valid_image(7)));
}

TEST_F(SupervisionTest, RestartBudgetBoundsRespawnsThenPoolShrinks) {
  InferenceService service(make_replicas(2),
                           supervised_config(/*max_restarts=*/1));
  io::FaultInjector::instance().arm("worker-wedge:2");

  auto f1 = service.submit(valid_image(1));
  auto f2 = service.submit(valid_image(2));
  EXPECT_THROW(f1.get(), WorkerLostError);
  EXPECT_THROW(f2.get(), WorkerLostError);

  // Two losses against a budget of one: exactly one replacement, and the
  // pool stays shrunk — a crash loop must not respawn forever.
  EXPECT_TRUE(eventually([&] {
    const ServiceStats s = service.stats();
    return s.workers_lost == 2 && s.workers_restarted == 1;
  }));
  EXPECT_TRUE(eventually([&] { return service.live_workers() == 1; }));
  std::this_thread::sleep_for(milliseconds(50));
  EXPECT_EQ(service.live_workers(), 1u);
  EXPECT_EQ(service.stats().workers_restarted, 1);

  // The survivor still serves.
  io::FaultInjector::instance().release_wedges();
  EXPECT_NO_THROW(service.classify(valid_image(3)));
}

TEST_F(SupervisionTest, CrashDuringBackoffWindowIsDeferredNotDropped) {
  // Regression: a worker lost while another loss's backoff window was
  // still open used to null its slot without ever being revisited — the
  // pool shrank permanently even with budget to spare. Losses inside the
  // window must be deferred to a later refill pass instead.
  //
  // No replica factory here: crashed workers respawn on their own
  // salvaged pipelines (the crash fires at the compute hook, before the
  // model runs), which must work without any factory configured.
  ServiceConfig config = supervised_config(8, /*with_factory=*/false);
  config.supervisor.restart_backoff = milliseconds(60);
  config.supervisor.max_restart_backoff = milliseconds(60);
  InferenceService service(make_replicas(2), config);

  io::FaultInjector::instance().arm("restart-storm:2");
  auto f1 = service.submit(valid_image(1));
  auto f2 = service.submit(valid_image(2));
  EXPECT_THROW(f1.get(), WorkerLostError);
  EXPECT_THROW(f2.get(), WorkerLostError);

  // Both crashes land within one backoff window; both slots must come
  // back once their windows elapse.
  EXPECT_TRUE(eventually([&] {
    const ServiceStats s = service.stats();
    return s.workers_restarted == 2 && s.workers_live == 2;
  }));
  EXPECT_EQ(service.stats().worker_crashes, 2);
  EXPECT_NO_THROW(service.classify(valid_image(3)));
}

// ---- poison-input quarantine ----------------------------------------------

TEST_F(SupervisionTest, QuarantineBansExactlyThePoisonFingerprint) {
  ServiceConfig config;
  config.admission.expected_height = kSide;
  config.admission.expected_width = kSide;
  config.breaker.failure_threshold = 1 << 20;
  config.quarantine.strikes = 2;
  InferenceService service(make_replicas(1), config);

  const Tensor poison = valid_image(1234);
  const uint32_t crc = input_fingerprint(poison);
  io::FaultInjector::instance().arm("poison-input:" + std::to_string(crc));

  EXPECT_THROW(service.classify(poison), Error);              // strike 1
  EXPECT_NO_THROW(service.classify(valid_image(5)));          // innocents pass
  EXPECT_THROW(service.classify(poison), Error);              // strike 2: banned
  EXPECT_THROW(service.classify(poison), QuarantinedInputError);
  EXPECT_NO_THROW(service.classify(valid_image(6)));

  const std::vector<uint32_t> banned = service.quarantined();
  ASSERT_EQ(banned.size(), 1u);
  EXPECT_EQ(banned[0], crc);
  const ServiceStats stats = service.stats();
  EXPECT_EQ(stats.quarantine_hits, 1);
  EXPECT_EQ(stats.quarantined_inputs, 1);
  EXPECT_EQ(stats.quarantine_strikes, 2);
}

TEST_F(SupervisionTest, StrikesSurviveWorkerRestarts) {
  ServiceConfig config = supervised_config();
  config.quarantine.strikes = 2;
  InferenceService service(make_replicas(2), config);

  const Tensor poison = valid_image(4321);
  const uint32_t crc = input_fingerprint(poison);

  // Strike 1: the poison kills its worker outright.
  io::FaultInjector::instance().arm("restart-storm:1");
  EXPECT_THROW(service.classify(poison), WorkerLostError);
  EXPECT_TRUE(
      eventually([&] { return service.stats().workers_restarted >= 1; }));

  // Strike 2, against a fresh jailer: the ledger lives in the service,
  // not the worker, so the fingerprint is banned — a poison input gets no
  // fresh budget just because it already killed one replica.
  io::FaultInjector::instance().arm("poison-input:" + std::to_string(crc));
  EXPECT_THROW(service.classify(poison), Error);
  EXPECT_THROW(service.classify(poison), QuarantinedInputError);
  const std::vector<uint32_t> banned = service.quarantined();
  ASSERT_EQ(banned.size(), 1u);
  EXPECT_EQ(banned[0], crc);
}

// ---- hot swap racing worker restarts (the TSan target) ---------------------

std::string make_checkpoint(uint64_t seed, const std::string& name) {
  Rng rng(seed);
  auto model = nn::make_vggnet(nn::VggConfig::tiny(kClasses, kSide), rng);
  const std::string path =
      (std::filesystem::temp_directory_path() / name).string();
  nn::save_checkpoint(*model, path);
  return path;
}

Tensor reference_probs(const std::string& checkpoint, const Tensor& image) {
  auto replicas = make_replicas(1);
  nn::load_checkpoint(replicas[0]->model(), checkpoint);
  ServiceConfig config;
  config.admission.expected_height = kSide;
  config.admission.expected_width = kSide;
  InferenceService service(std::move(replicas), config);
  return service.classify(image).prediction.probs;
}

TEST_F(SupervisionTest, HotSwapRacingRestartsServesOnlyPublishedWeights) {
  const std::string ckpt_a =
      make_checkpoint(99, "fademl_supervision_swap_a.fdml");
  const std::string ckpt_b =
      make_checkpoint(1234, "fademl_supervision_swap_b.fdml");
  const Tensor image = valid_image();
  const Tensor ref_a = reference_probs(ckpt_a, image);
  const Tensor ref_b = reference_probs(ckpt_b, image);
  ASSERT_FALSE(bitwise_equal(ref_a, ref_b));

  // No explicit replica_factory: the registry must synthesize one that
  // loads this service's published checkpoint, so every respawn serves
  // the same weights as the pool it joins. A generous restart budget and
  // a bounded deadline keep the run live through constant crashes.
  net::ModelSpec spec;
  spec.name = "vgg";
  spec.checkpoint_path = ckpt_a;
  spec.factory = [] { return make_replicas(2); };
  spec.service = supervised_config(/*max_restarts=*/1000,
                                   /*with_factory=*/false);
  spec.service.default_deadline = milliseconds(5000);
  net::ModelRegistry registry;
  registry.install(std::move(spec));

  // Crasher: keep one lethal fault chambered so replicas keep dying and
  // respawning throughout the run, with clear air in between so some
  // predictions actually land.
  std::atomic<bool> stop{false};
  std::thread crasher([&] {
    while (!stop.load()) {
      if (!io::FaultInjector::instance().armed()) {
        io::FaultInjector::instance().arm("restart-storm:1");
      }
      std::this_thread::sleep_for(milliseconds(20));
    }
  });

  std::atomic<int> served{0};
  std::atomic<int> mismatches{0};
  std::vector<std::thread> clients;
  for (int c = 0; c < 2; ++c) {
    clients.emplace_back([&] {
      for (int i = 0; i < 30; ++i) {
        auto service = registry.lookup("vgg");
        ASSERT_NE(service, nullptr);
        try {
          const Tensor probs = service->classify(image).prediction.probs;
          // Every successful prediction must come from a fully-published
          // model — one of the two checkpoints, never a half-loaded or
          // fresh-random replica.
          if (!bitwise_equal(probs, ref_a) && !bitwise_equal(probs, ref_b)) {
            mismatches.fetch_add(1);
          }
          served.fetch_add(1);
        } catch (const Error&) {
          // Injected losses (WorkerLostError, deadline) are expected;
          // only successes carry the bitwise obligation.
        }
      }
    });
  }

  for (int s = 0; s < 6; ++s) {
    registry.swap("vgg", (s % 2 == 0) ? ckpt_b : ckpt_a);
    std::this_thread::sleep_for(milliseconds(10));
  }
  for (auto& t : clients) {
    t.join();
  }
  stop.store(true);
  crasher.join();
  io::FaultInjector::instance().disarm();

  EXPECT_EQ(mismatches.load(), 0);
  EXPECT_GT(served.load(), 0);
  registry.clear();
}

}  // namespace
}  // namespace fademl::serve
