// Regression pin for the parallel compute layer's determinism contract:
// training the same model from the same seed must produce bitwise-equal
// parameters at 1 thread and at N threads. Every kernel on the training
// path (conv2d forward/backward, matmul, elementwise, maxpool) chunks its
// work as a pure function of (range, grain), and batch-reductions sum
// per-chunk partials in chunk order — so there is no tolerance here: any
// drift is a scheduling leak into the arithmetic, not float noise.

#include <vector>

#include <gtest/gtest.h>

#include "fademl/data/dataset.hpp"
#include "fademl/nn/optimizer.hpp"
#include "fademl/nn/trainer.hpp"
#include "fademl/nn/vggnet.hpp"
#include "fademl/parallel/parallel.hpp"
#include "reference_kernels.hpp"

namespace fademl {
namespace {

/// Two epochs of tiny-VGG training at the given thread count; returns the
/// final parameter tensors in declaration order.
std::vector<Tensor> train_and_snapshot(int threads) {
  parallel::set_num_threads(threads);
  Rng init_rng(91);
  auto model = nn::make_vggnet(nn::VggConfig::tiny(), init_rng);

  std::vector<Tensor> images;
  std::vector<int64_t> labels;
  for (int64_t cls = 0; cls < 4; ++cls) {
    for (int rep = 0; rep < 3; ++rep) {
      images.push_back(data::canonical_sample(cls, 8));
      labels.push_back(cls);
    }
  }

  nn::SGD sgd(model->named_parameters(), {});
  nn::Trainer::Config config;
  config.epochs = 2;
  config.batch_size = 4;
  nn::Trainer trainer(*model, sgd, config);
  Rng shuffle_rng(17);
  trainer.fit(images, labels, shuffle_rng);

  std::vector<Tensor> params;
  for (const nn::NamedParam& p : model->named_parameters()) {
    params.push_back(p.param.value().clone());
  }
  parallel::set_num_threads(0);
  return params;
}

TEST(TrainDeterminism, TwoEpochsBitwiseEqualAcrossThreadCounts) {
  const std::vector<Tensor> base = train_and_snapshot(1);
  ASSERT_FALSE(base.empty());
  for (int threads : {2, 7}) {
    const std::vector<Tensor> other = train_and_snapshot(threads);
    ASSERT_EQ(other.size(), base.size());
    for (size_t i = 0; i < base.size(); ++i) {
      EXPECT_TRUE(testing::bitwise_equal(base[i], other[i]))
          << "parameter " << i << " diverged at " << threads << " threads";
    }
  }
}

TEST(TrainDeterminism, RetrainAtSameThreadCountIsBitwiseStable) {
  const std::vector<Tensor> first = train_and_snapshot(2);
  const std::vector<Tensor> second = train_and_snapshot(2);
  ASSERT_EQ(first.size(), second.size());
  for (size_t i = 0; i < first.size(); ++i) {
    EXPECT_TRUE(testing::bitwise_equal(first[i], second[i]))
        << "parameter " << i;
  }
}

}  // namespace
}  // namespace fademl
