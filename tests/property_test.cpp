// Cross-cutting property-based suites: invariants that must hold across
// the whole attack library, the Eq.-2 cost on random distributions,
// smoothing-filter fixed-point behaviour, and serialization over random
// geometries.

#include <cmath>

#include <gtest/gtest.h>

#include "fademl/attacks/bim.hpp"
#include "fademl/attacks/cw.hpp"
#include "fademl/attacks/deepfool.hpp"
#include "fademl/attacks/fademl_attack.hpp"
#include "fademl/attacks/fgsm.hpp"
#include "fademl/attacks/jsma.hpp"
#include "fademl/attacks/lbfgs.hpp"
#include "fademl/attacks/onepixel.hpp"
#include "fademl/attacks/zoo.hpp"
#include "fademl/core/cost.hpp"
#include "fademl/tensor/ops.hpp"
#include "fademl/tensor/serialize.hpp"
#include "test_fixtures.hpp"

namespace fademl {
namespace {

using fademl::testing::tiny_pipeline;

// ---- attack-library-wide invariants ----------------------------------------

struct NamedAttack {
  const char* label;
  attacks::AttackPtr attack;
};

std::vector<NamedAttack> full_attack_library() {
  attacks::AttackConfig config;
  config.epsilon = 0.15f;
  config.max_iterations = 8;  // keep the sweep quick
  attacks::OnePixelOptions op;
  op.population = 8;
  op.generations = 3;
  attacks::ZooOptions zoo;
  zoo.coords_per_step = 16;
  return {
      {"fgsm", std::make_shared<attacks::FgsmAttack>(config)},
      {"bim", std::make_shared<attacks::BimAttack>(config)},
      {"lbfgs", std::make_shared<attacks::LbfgsAttack>(config)},
      {"cw", std::make_shared<attacks::CwAttack>(config)},
      {"jsma", std::make_shared<attacks::JsmaAttack>(config)},
      {"deepfool", std::make_shared<attacks::DeepFoolAttack>(config)},
      {"onepixel", std::make_shared<attacks::OnePixelAttack>(config, op)},
      {"zoo", std::make_shared<attacks::ZooAttack>(config, zoo)},
      {"fademl_bim",
       attacks::make_fademl(attacks::AttackKind::kBim, config)},
  };
}

class AttackLibraryTest : public ::testing::TestWithParam<NamedAttack> {};

TEST_P(AttackLibraryTest, OutputStaysInPixelBox) {
  const auto pipeline = tiny_pipeline(filters::make_lap(4));
  const Tensor src = data::canonical_sample(14, 16);
  const attacks::AttackResult r = GetParam().attack->run(pipeline, src, 3);
  EXPECT_GE(min(r.adversarial), 0.0f) << GetParam().label;
  EXPECT_LE(max(r.adversarial), 1.0f) << GetParam().label;
  EXPECT_EQ(r.adversarial.shape(), src.shape());
}

TEST_P(AttackLibraryTest, DeterministicAcrossRuns) {
  const auto pipeline = tiny_pipeline(filters::make_lap(4));
  const Tensor src = data::canonical_sample(14, 16);
  const attacks::AttackResult a = GetParam().attack->run(pipeline, src, 3);
  const attacks::AttackResult b = GetParam().attack->run(pipeline, src, 3);
  EXPECT_FLOAT_EQ(norm_linf(sub(a.adversarial, b.adversarial)), 0.0f)
      << GetParam().label;
  EXPECT_EQ(a.iterations, b.iterations) << GetParam().label;
}

TEST_P(AttackLibraryTest, MetricsConsistentWithNoise) {
  const auto pipeline = tiny_pipeline(filters::make_identity());
  const Tensor src = data::canonical_sample(17, 16);
  const attacks::AttackResult r = GetParam().attack->run(pipeline, src, 3);
  EXPECT_NEAR(norm_l2(r.noise), r.l2, 1e-3f) << GetParam().label;
  EXPECT_NEAR(norm_linf(r.noise), r.linf, 1e-5f) << GetParam().label;
  EXPECT_LT(norm_linf(sub(add(src, r.noise), r.adversarial)), 1e-5f)
      << GetParam().label;
  EXPECT_GE(r.iterations, 1) << GetParam().label;
}

TEST_P(AttackLibraryTest, DoesNotMutateTheSource) {
  const auto pipeline = tiny_pipeline(filters::make_identity());
  const Tensor src = data::canonical_sample(14, 16);
  const Tensor snapshot = src.clone();
  (void)GetParam().attack->run(pipeline, src, 3);
  EXPECT_FLOAT_EQ(norm_linf(sub(src, snapshot)), 0.0f) << GetParam().label;
}

INSTANTIATE_TEST_SUITE_P(
    WholeLibrary, AttackLibraryTest,
    ::testing::ValuesIn(full_attack_library()),
    [](const ::testing::TestParamInfo<NamedAttack>& info) {
      return info.param.label;
    });

// ---- Eq.-2 cost properties on random distributions --------------------------

class Eq2PropertyTest : public ::testing::TestWithParam<uint64_t> {};

Tensor random_distribution(Rng& rng, int64_t classes) {
  Tensor t = rng.uniform_tensor(Shape{classes}, 0.0f, 1.0f);
  t.apply_([](float v) { return v * v; });  // skew some mass
  const float total = sum(t);
  t.mul_(1.0f / total);
  return t;
}

TEST_P(Eq2PropertyTest, BoundedByPlusMinusOne) {
  Rng rng(GetParam());
  const Tensor a = random_distribution(rng, 16);
  const Tensor b = random_distribution(rng, 16);
  const float cost = core::eq2_cost(a, b);
  // Σ_{top5} P_a ∈ [0,1] and Σ over the same classes of P_b ∈ [0,1].
  EXPECT_LE(cost, 1.0f);
  EXPECT_GE(cost, -1.0f);
}

TEST_P(Eq2PropertyTest, SelfCostIsZeroAndWeightVectorAgrees) {
  Rng rng(GetParam() ^ 0xABCDu);
  const Tensor a = random_distribution(rng, 12);
  const Tensor b = random_distribution(rng, 12);
  EXPECT_FLOAT_EQ(core::eq2_cost(a, a), 0.0f);
  const Tensor w = core::top5_weight_vector(a);
  EXPECT_NEAR(dot(a, w) - dot(b, w), core::eq2_cost(a, b), 1e-5f);
}

INSTANTIATE_TEST_SUITE_P(Seeds, Eq2PropertyTest,
                         ::testing::Values(1u, 2u, 3u, 5u, 8u, 13u, 21u, 34u));

// ---- smoothing filters approach a fixed point --------------------------------

TEST(FilterFixedPoint, RepeatedSmoothingConvergesTowardFlat) {
  Rng rng(9);
  Tensor x = rng.uniform_tensor(Shape{1, 12, 12}, 0.0f, 1.0f);
  const filters::LapFilter f(8);
  float prev_spread = max(x) - min(x);
  for (int i = 0; i < 10; ++i) {
    x = f.apply(x);
    const float spread = max(x) - min(x);
    EXPECT_LE(spread, prev_spread + 1e-6f) << "iteration " << i;
    prev_spread = spread;
  }
  EXPECT_LT(prev_spread, 0.2f);  // strongly contracted after 10 passes
}

TEST(FilterFixedPoint, MeanIsApproximatelyPreservedInTheInterior) {
  // Away from borders the averaging kernels are doubly stochastic, so the
  // image mean barely moves under one application.
  Rng rng(10);
  const Tensor x = rng.uniform_tensor(Shape{3, 16, 16}, 0.2f, 0.8f);
  for (const filters::FilterPtr& f :
       {filters::make_lap(8), filters::make_lar(2),
        filters::make_gaussian(1.0f)}) {
    const float before = mean(x);
    const float after = mean(f->apply(x));
    EXPECT_NEAR(before, after, 0.01f) << f->name();
  }
}

// ---- serialization over random geometries ------------------------------------

class SerializeRoundtripTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(SerializeRoundtripTest, RandomShapeRoundtrip) {
  Rng rng(GetParam());
  const int rank = 1 + static_cast<int>(rng.uniform_int(4));
  std::vector<int64_t> dims;
  for (int i = 0; i < rank; ++i) {
    dims.push_back(1 + rng.uniform_int(7));
  }
  const Tensor t = rng.normal_tensor(Shape{dims}, 0.0f, 10.0f);
  std::stringstream ss;
  write_tensor(ss, t);
  const Tensor back = read_tensor(ss);
  ASSERT_EQ(back.shape(), t.shape());
  EXPECT_FLOAT_EQ(norm_linf(sub(back, t)), 0.0f);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SerializeRoundtripTest,
                         ::testing::Values(11u, 22u, 33u, 44u, 55u, 66u));

// ---- renderer statistics stay sane across all classes -------------------------

TEST(RendererStats, EveryClassHasReasonableBrightnessAndContrast) {
  for (int64_t cls = 0; cls < data::kGtsrbNumClasses; ++cls) {
    const Tensor img = data::canonical_sample(cls, 24);
    const float m = mean(img);
    EXPECT_GT(m, 0.15f) << "class " << cls << " too dark";
    EXPECT_LT(m, 0.85f) << "class " << cls << " too bright";
    EXPECT_GT(max(img) - min(img), 0.3f)
        << "class " << cls << " has no contrast";
  }
}

}  // namespace
}  // namespace fademl
