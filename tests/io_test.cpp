#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>

#include <gtest/gtest.h>

#include "fademl/io/image_io.hpp"
#include "fademl/io/table.hpp"
#include "fademl/tensor/error.hpp"
#include "fademl/tensor/ops.hpp"
#include "fademl/tensor/random.hpp"

namespace fademl::io {
namespace {

std::string temp_path(const char* name) {
  return (std::filesystem::temp_directory_path() / name).string();
}

TEST(ImageIo, PpmRoundtripWithin8BitQuantization) {
  Rng rng(1);
  const Tensor img = rng.uniform_tensor(Shape{3, 7, 9}, 0.0f, 1.0f);
  const std::string path = temp_path("fademl_io_test.ppm");
  write_ppm(path, img);
  const Tensor back = read_ppm(path);
  ASSERT_EQ(back.shape(), img.shape());
  EXPECT_LE(norm_linf(sub(back, img)), 0.5f / 255.0f + 1e-6f);
  std::remove(path.c_str());
}

TEST(ImageIo, PpmClampsOutOfRangeValues) {
  Tensor img = Tensor::full(Shape{3, 2, 2}, 2.0f);
  img.at(0) = -1.0f;
  const std::string path = temp_path("fademl_io_clamp.ppm");
  write_ppm(path, img);
  const Tensor back = read_ppm(path);
  EXPECT_FLOAT_EQ(back.at(0), 0.0f);
  EXPECT_FLOAT_EQ(back.at(1), 1.0f);
  std::remove(path.c_str());
}

TEST(ImageIo, PpmRejectsBadShapes) {
  EXPECT_THROW(write_ppm(temp_path("x.ppm"), Tensor::ones(Shape{1, 4, 4})),
               Error);
  EXPECT_THROW(write_ppm(temp_path("x.ppm"), Tensor::ones(Shape{3, 4})),
               Error);
}

TEST(ImageIo, PgmAcceptsGrayscaleShapes) {
  const std::string path = temp_path("fademl_io_test.pgm");
  write_pgm(path, Tensor::full(Shape{4, 4}, 0.5f));
  write_pgm(path, Tensor::full(Shape{1, 4, 4}, 0.5f));
  EXPECT_THROW(write_pgm(path, Tensor::ones(Shape{3, 4, 4})), Error);
  std::remove(path.c_str());
}

TEST(ImageIo, ReadRejectsNonPpm) {
  const std::string path = temp_path("fademl_io_bad.ppm");
  {
    std::ofstream os(path);
    os << "definitely not a ppm";
  }
  EXPECT_THROW(read_ppm(path), Error);
  std::remove(path.c_str());
}

TEST(Table, AlignedPrint) {
  Table t({"Attack", "Top-5"});
  t.add_row({"FGSM", "93.1%"});
  t.add_row({"L-BFGS", "90.2%"});
  std::ostringstream os;
  t.print(os);
  const std::string s = os.str();
  EXPECT_NE(s.find("| Attack "), std::string::npos);
  EXPECT_NE(s.find("| L-BFGS "), std::string::npos);
  EXPECT_NE(s.find("+--------"), std::string::npos);
  EXPECT_EQ(t.rows(), 2u);
  EXPECT_EQ(t.cols(), 2u);
}

TEST(Table, ArityIsEnforced) {
  Table t({"a", "b"});
  EXPECT_THROW(t.add_row({"only one"}), Error);
  EXPECT_THROW(Table({}), Error);
}

TEST(Table, CsvEscaping) {
  Table t({"name", "value"});
  t.add_row({"with, comma", "with \"quote\""});
  std::ostringstream os;
  t.write_csv(os);
  EXPECT_EQ(os.str(),
            "name,value\n\"with, comma\",\"with \"\"quote\"\"\"\n");
}

TEST(Table, Formatters) {
  EXPECT_EQ(Table::fmt(3.14159, 2), "3.14");
  EXPECT_EQ(Table::fmt(3.14159, 4), "3.1416");
  EXPECT_EQ(Table::pct(0.9731), "97.31%");
  EXPECT_EQ(Table::pct(1.0, 0), "100%");
}

TEST(Table, SaveCsvWritesFile) {
  Table t({"x"});
  t.add_row({"1"});
  const std::string path = temp_path("fademl_table.csv");
  t.save_csv(path);
  std::ifstream is(path);
  std::string line;
  std::getline(is, line);
  EXPECT_EQ(line, "x");
  std::remove(path.c_str());
}

}  // namespace
}  // namespace fademl::io
