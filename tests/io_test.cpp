#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>

#include <gtest/gtest.h>

#include "fademl/io/image_io.hpp"
#include "fademl/io/table.hpp"
#include "fademl/tensor/error.hpp"
#include "fademl/tensor/ops.hpp"
#include "fademl/tensor/random.hpp"

namespace fademl::io {
namespace {

std::string temp_path(const char* name) {
  return (std::filesystem::temp_directory_path() / name).string();
}

TEST(ImageIo, PpmRoundtripWithin8BitQuantization) {
  Rng rng(1);
  const Tensor img = rng.uniform_tensor(Shape{3, 7, 9}, 0.0f, 1.0f);
  const std::string path = temp_path("fademl_io_test.ppm");
  write_ppm(path, img);
  const Tensor back = read_ppm(path);
  ASSERT_EQ(back.shape(), img.shape());
  EXPECT_LE(norm_linf(sub(back, img)), 0.5f / 255.0f + 1e-6f);
  std::remove(path.c_str());
}

TEST(ImageIo, PpmClampsOutOfRangeValues) {
  Tensor img = Tensor::full(Shape{3, 2, 2}, 2.0f);
  img.at(0) = -1.0f;
  const std::string path = temp_path("fademl_io_clamp.ppm");
  write_ppm(path, img);
  const Tensor back = read_ppm(path);
  EXPECT_FLOAT_EQ(back.at(0), 0.0f);
  EXPECT_FLOAT_EQ(back.at(1), 1.0f);
  std::remove(path.c_str());
}

TEST(ImageIo, PpmRejectsBadShapes) {
  EXPECT_THROW(write_ppm(temp_path("x.ppm"), Tensor::ones(Shape{1, 4, 4})),
               Error);
  EXPECT_THROW(write_ppm(temp_path("x.ppm"), Tensor::ones(Shape{3, 4})),
               Error);
}

TEST(ImageIo, PgmAcceptsGrayscaleShapes) {
  const std::string path = temp_path("fademl_io_test.pgm");
  write_pgm(path, Tensor::full(Shape{4, 4}, 0.5f));
  write_pgm(path, Tensor::full(Shape{1, 4, 4}, 0.5f));
  EXPECT_THROW(write_pgm(path, Tensor::ones(Shape{3, 4, 4})), Error);
  std::remove(path.c_str());
}

TEST(ImageIo, ReadRejectsNonPpm) {
  const std::string path = temp_path("fademl_io_bad.ppm");
  {
    std::ofstream os(path);
    os << "definitely not a ppm";
  }
  EXPECT_THROW(read_ppm(path), Error);
  std::remove(path.c_str());
}

// ---- adversarial PPM inputs (the serve-batch boundary) ---------------------

/// Write raw bytes and return the path; the loader must reject each of
/// these with a *typed* error — never crash or allocate unbounded memory.
std::string write_bytes(const char* name, const std::string& bytes) {
  const std::string path = temp_path(name);
  std::ofstream os(path, std::ios::binary);
  os.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  return path;
}

TEST(ImageIoAdversarial, MissingFileIsIoError) {
  EXPECT_THROW(read_ppm(temp_path("fademl_io_does_not_exist.ppm")), IoError);
}

TEST(ImageIoAdversarial, EmptyFileIsCorruption) {
  const std::string path = write_bytes("fademl_io_empty.ppm", "");
  EXPECT_THROW(read_ppm(path), CorruptionError);
  std::remove(path.c_str());
}

TEST(ImageIoAdversarial, TruncatedHeaderIsCorruption) {
  const std::string path = write_bytes("fademl_io_trunc_hdr.ppm", "P6\n4 ");
  EXPECT_THROW(read_ppm(path), CorruptionError);
  std::remove(path.c_str());
}

TEST(ImageIoAdversarial, NonNumericHeaderFieldsAreCorruption) {
  const std::string path =
      write_bytes("fademl_io_nan_hdr.ppm", "P6\nfour four\n255\n");
  EXPECT_THROW(read_ppm(path), CorruptionError);
  std::remove(path.c_str());
}

TEST(ImageIoAdversarial, AbsurdDimensionsNeverAllocate) {
  // A 12-byte header claiming a multi-terabyte payload: must be rejected
  // by the geometry bound before any allocation is sized from it.
  for (const char* header :
       {"P6\n99999999 99999999\n255\n", "P6\n-3 7\n255\n",
        "P6\n0 0\n255\n", "P6\n16385 16385\n255\n"}) {
    const std::string path = write_bytes("fademl_io_absurd.ppm", header);
    EXPECT_THROW(read_ppm(path), CorruptionError) << header;
    std::remove(path.c_str());
  }
}

TEST(ImageIoAdversarial, UnsupportedMaxvalIsCorruption) {
  const std::string path =
      write_bytes("fademl_io_maxval.ppm", "P6\n2 2\n65535\n");
  EXPECT_THROW(read_ppm(path), CorruptionError);
  std::remove(path.c_str());
}

TEST(ImageIoAdversarial, TruncatedPayloadIsCorruption) {
  // Header promises 2x2 (12 payload bytes) but only 5 arrive.
  const std::string path = write_bytes("fademl_io_trunc_payload.ppm",
                                       std::string("P6\n2 2\n255\n") +
                                           std::string(5, '\x42'));
  try {
    read_ppm(path);
    FAIL() << "truncated payload was accepted";
  } catch (const CorruptionError& e) {
    EXPECT_NE(std::string(e.what()).find("truncated"), std::string::npos);
    EXPECT_EQ(e.record(), path);
  }
  std::remove(path.c_str());
}

TEST(ImageIoAdversarial, ExactPayloadStillLoads) {
  const std::string path = write_bytes(
      "fademl_io_exact.ppm",
      std::string("P6\n2 2\n255\n") + std::string(12, '\x80'));
  const Tensor img = read_ppm(path);
  EXPECT_EQ(img.shape(), Shape({3, 2, 2}));
  EXPECT_NEAR(img.at(0), 128.0f / 255.0f, 1e-6f);
  std::remove(path.c_str());
}

TEST(Table, AlignedPrint) {
  Table t({"Attack", "Top-5"});
  t.add_row({"FGSM", "93.1%"});
  t.add_row({"L-BFGS", "90.2%"});
  std::ostringstream os;
  t.print(os);
  const std::string s = os.str();
  EXPECT_NE(s.find("| Attack "), std::string::npos);
  EXPECT_NE(s.find("| L-BFGS "), std::string::npos);
  EXPECT_NE(s.find("+--------"), std::string::npos);
  EXPECT_EQ(t.rows(), 2u);
  EXPECT_EQ(t.cols(), 2u);
}

TEST(Table, ArityIsEnforced) {
  Table t({"a", "b"});
  EXPECT_THROW(t.add_row({"only one"}), Error);
  EXPECT_THROW(Table({}), Error);
}

TEST(Table, CsvEscaping) {
  Table t({"name", "value"});
  t.add_row({"with, comma", "with \"quote\""});
  std::ostringstream os;
  t.write_csv(os);
  EXPECT_EQ(os.str(),
            "name,value\n\"with, comma\",\"with \"\"quote\"\"\"\n");
}

TEST(Table, Formatters) {
  EXPECT_EQ(Table::fmt(3.14159, 2), "3.14");
  EXPECT_EQ(Table::fmt(3.14159, 4), "3.1416");
  EXPECT_EQ(Table::pct(0.9731), "97.31%");
  EXPECT_EQ(Table::pct(1.0, 0), "100%");
}

TEST(Table, SaveCsvWritesFile) {
  Table t({"x"});
  t.add_row({"1"});
  const std::string path = temp_path("fademl_table.csv");
  t.save_csv(path);
  std::ifstream is(path);
  std::string line;
  std::getline(is, line);
  EXPECT_EQ(line, "x");
  std::remove(path.c_str());
}

}  // namespace
}  // namespace fademl::io
