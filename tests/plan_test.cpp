// Compiled-plan tests: plan replay must be *bitwise* identical to the
// autograd-tape forward for every batch size, thread count, and dispatch
// tier (the serving layer switches between the two paths freely, so any
// divergence would leak into published predictions); warm replay must do
// zero heap allocation; and every staleness edge — in-place weight
// updates, filter swaps, model hot swaps — must either flow through the
// plan's shallow handles or invalidate the cache. The swap chaos test
// runs under TSan (scripts/check.sh --tsan includes this binary).

#include <atomic>
#include <cstring>
#include <filesystem>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "fademl/core/pipeline.hpp"
#include "fademl/filters/filter.hpp"
#include "fademl/net/client.hpp"
#include "fademl/net/registry.hpp"
#include "fademl/net/server.hpp"
#include "fademl/nn/checkpoint.hpp"
#include "fademl/nn/trainer.hpp"
#include "fademl/nn/vggnet.hpp"
#include "fademl/parallel/parallel.hpp"
#include "fademl/plan/plan.hpp"
#include "fademl/simd/arena.hpp"
#include "fademl/simd/cpu.hpp"
#include "fademl/tensor/random.hpp"
#include "test_fixtures.hpp"

namespace fademl {
namespace {

using core::InferencePipeline;
using core::ThreatModel;

class ThreadGuard {
 public:
  explicit ThreadGuard(int n) { parallel::set_num_threads(n); }
  ~ThreadGuard() { parallel::set_num_threads(0); }
};

class LevelGuard {
 public:
  explicit LevelGuard(simd::CpuLevel level) {
    simd::set_level_override(level);
  }
  ~LevelGuard() { simd::clear_level_override(); }
};

bool bitwise_equal(const Tensor& a, const Tensor& b) {
  return a.shape() == b.shape() &&
         std::memcmp(a.data(), b.data(),
                     sizeof(float) * static_cast<size_t>(a.numel())) == 0;
}

/// A batch of `n` tiny-world training images (cycling when n exceeds the
/// set) stacked into [n, C, H, W].
Tensor world_batch(int64_t n) {
  const auto& world = testing::tiny_world();
  std::vector<Tensor> images;
  for (int64_t i = 0; i < n; ++i) {
    images.push_back(
        world.train_images[static_cast<size_t>(i) %
                           world.train_images.size()]);
  }
  return nn::stack_images(images);
}

/// Twin pipelines over the shared tiny model: one forced onto the plan
/// path, one forced onto the tape.
struct Twins {
  InferencePipeline plan;
  InferencePipeline tape;
  explicit Twins(const filters::FilterPtr& filter)
      : plan(testing::tiny_pipeline(filter)),
        tape(testing::tiny_pipeline(filter)) {
    plan.set_plan_enabled(true);
    tape.set_plan_enabled(false);
  }
};

// ---- identity sweep --------------------------------------------------------

TEST(PlanIdentity, MatchesTapeBitwiseAcrossBatchesThreadsAndTiers) {
  const std::vector<int64_t> batches = {1, 4, 8, 16};
  const std::vector<int> threads = {1, 2, 7};
  // Scalar pins the arithmetic floor; the hardware's best tier exercises
  // the widest kernels. Intermediate tiers are covered by CI's
  // FADEML_CPU_LEVEL matrix.
  const std::vector<simd::CpuLevel> levels = {simd::CpuLevel::kScalar,
                                              simd::hardware_level()};
  const std::vector<ThreatModel> tms = {ThreatModel::kI, ThreatModel::kIII};

  Twins twins(filters::make_lap(8));
  for (simd::CpuLevel level : levels) {
    LevelGuard level_guard(level);
    for (int n_threads : threads) {
      ThreadGuard thread_guard(n_threads);
      for (int64_t batch : batches) {
        const Tensor x = world_batch(batch);
        for (ThreatModel tm : tms) {
          const Tensor plan_probs = twins.plan.predict_probs_batch(x, tm);
          const Tensor tape_probs = twins.tape.predict_probs_batch(x, tm);
          EXPECT_EQ(twins.plan.last_exec_path(), plan::ExecPath::kPlan);
          EXPECT_EQ(twins.tape.last_exec_path(), plan::ExecPath::kTape);
          EXPECT_TRUE(bitwise_equal(plan_probs, tape_probs))
              << "tier=" << simd::level_name(level)
              << " threads=" << n_threads << " batch=" << batch
              << " tm=" << static_cast<int>(tm);
        }
      }
    }
  }
  const plan::PlanStats stats = twins.plan.plan_stats();
  EXPECT_GT(stats.plan_batches, 0u);
  EXPECT_EQ(twins.plan.plan_stats().tape_batches, 0u);
  EXPECT_EQ(twins.tape.plan_stats().plan_batches, 0u);
}

// A BlurNet-style model (nn::FeatureBlur between ReLU and pool) must
// *compile* — not silently fall back to the tape — and replay bitwise
// identically to the tape: both paths call the same raw::feature_blur3.
TEST(PlanIdentity, FeatureBlurModelCompilesAndMatchesTapeBitwise) {
  Rng rng(91);
  nn::VggConfig config = nn::VggConfig::tiny(43, 16);
  config.channels = {6, 12};
  config.feature_blur = true;
  const auto model = nn::make_vggnet(config, rng);
  model->set_training(false);

  InferencePipeline plan_pipe(model, filters::make_lap(8));
  InferencePipeline tape_pipe(model, filters::make_lap(8));
  plan_pipe.set_plan_enabled(true);
  tape_pipe.set_plan_enabled(false);

  for (int n_threads : {1, 2, 7}) {
    ThreadGuard thread_guard(n_threads);
    for (int64_t batch : {int64_t{1}, int64_t{5}}) {
      const Tensor x = world_batch(batch);
      for (ThreatModel tm : {ThreatModel::kI, ThreatModel::kIII}) {
        const Tensor plan_probs = plan_pipe.predict_probs_batch(x, tm);
        const Tensor tape_probs = tape_pipe.predict_probs_batch(x, tm);
        ASSERT_EQ(plan_pipe.last_exec_path(), plan::ExecPath::kPlan)
            << "FeatureBlur model fell back to the tape";
        ASSERT_EQ(tape_pipe.last_exec_path(), plan::ExecPath::kTape);
        EXPECT_TRUE(bitwise_equal(plan_probs, tape_probs))
            << "threads=" << n_threads << " batch=" << batch
            << " tm=" << static_cast<int>(tm);
      }
    }
  }
  // The compiled op list names the lowered blur op explicitly.
  const auto plan =
      plan_pipe.compile_plan(Shape{1, 3, 16, 16}, ThreatModel::kI);
  ASSERT_NE(plan, nullptr);
  EXPECT_NE(plan->describe().find("featureblur"), std::string::npos);
}

TEST(PlanIdentity, PlanDisabledEnvPipelineOverrideStillWins) {
  // set_plan_enabled(true) must force the plan path even when the
  // process-wide default (FADEML_DISABLE_PLAN) says tape, and vice
  // versa — CI's tier1-noplan job relies on the env side, these tests on
  // the override side.
  Twins twins(filters::make_identity());
  const Tensor x = world_batch(2);
  (void)twins.plan.predict_probs_batch(x, ThreatModel::kI);
  EXPECT_EQ(twins.plan.last_exec_path(), plan::ExecPath::kPlan);
  (void)twins.tape.predict_probs_batch(x, ThreatModel::kI);
  EXPECT_EQ(twins.tape.last_exec_path(), plan::ExecPath::kTape);
}

TEST(PlanIdentity, CacheHitsAfterFirstCompile) {
  InferencePipeline pipe = testing::tiny_pipeline(filters::make_identity());
  pipe.set_plan_enabled(true);
  const Tensor x = world_batch(4);
  (void)pipe.predict_probs_batch(x, ThreatModel::kI);
  const plan::PlanStats first = pipe.plan_stats();
  EXPECT_EQ(first.compiles, 1u);
  for (int i = 0; i < 3; ++i) {
    (void)pipe.predict_probs_batch(x, ThreatModel::kI);
  }
  const plan::PlanStats after = pipe.plan_stats();
  EXPECT_EQ(after.compiles, 1u);
  EXPECT_GE(after.cache_hits, first.cache_hits + 3);
}

// ---- steady-state allocation ----------------------------------------------

TEST(PlanMemory, WarmReplayDoesZeroHeapAllocation) {
  ThreadGuard threads(1);  // the pool's task boxes are not the plan's to fix
  InferencePipeline pipe = testing::tiny_pipeline(filters::make_lap(8));
  pipe.set_plan_enabled(true);
  const Tensor x = world_batch(8);
  Tensor sink;
  for (int i = 0; i < 3; ++i) {
    sink = pipe.predict_probs_batch(x, ThreatModel::kIII);  // warm
  }
  const std::uint64_t tensor_allocs = simd::tensor_heap_allocations();
  const std::uint64_t arena_allocs = simd::Arena::heap_allocations();
  for (int i = 0; i < 5; ++i) {
    sink = pipe.predict_probs_batch(x, ThreatModel::kIII);
  }
  EXPECT_EQ(simd::tensor_heap_allocations(), tensor_allocs)
      << "warm plan replay allocated tensor buffers";
  EXPECT_EQ(simd::Arena::heap_allocations(), arena_allocs)
      << "warm plan replay grew an arena";
  ASSERT_GT(sink.numel(), 0);
}

// ---- staleness -------------------------------------------------------------

TEST(PlanStaleness, InPlaceWeightUpdateFlowsThroughSharedHandles) {
  // Optimizers and checkpoint loads mutate parameter storage in place;
  // the plan holds shallow handles, so no invalidation is needed — or
  // wanted, recompiling per training step would be pathological.
  Rng rng(17);
  auto model = nn::make_vggnet(nn::VggConfig::tiny(4, 8), rng);
  model->set_training(false);
  InferencePipeline pipe(model, filters::make_identity());
  pipe.set_plan_enabled(true);
  Rng data_rng(3);
  const Tensor x =
      nn::stack_images({data_rng.uniform_tensor(Shape{3, 8, 8}, 0.0f, 1.0f)});

  const Tensor before = pipe.predict_probs_batch(x, ThreatModel::kI);

  // load_checkpoint copies into the existing parameter storage — the same
  // in-place path optimizers use.
  Rng other_rng(4242);
  auto donor = nn::make_vggnet(nn::VggConfig::tiny(4, 8), other_rng);
  const std::string donor_ckpt =
      (std::filesystem::temp_directory_path() / "fademl_plan_donor.fdml")
          .string();
  nn::save_checkpoint(*donor, donor_ckpt);
  nn::load_checkpoint(*model, donor_ckpt);

  const Tensor after = pipe.predict_probs_batch(x, ThreatModel::kI);
  EXPECT_EQ(pipe.plan_stats().compiles, 1u) << "weight update forced recompile";
  EXPECT_FALSE(bitwise_equal(before, after))
      << "new weights did not reach the compiled plan";

  // And the mutated plan still matches a tape run exactly.
  InferencePipeline tape(model, filters::make_identity());
  tape.set_plan_enabled(false);
  EXPECT_TRUE(
      bitwise_equal(after, tape.predict_probs_batch(x, ThreatModel::kI)));
}

TEST(PlanStaleness, SetFilterInvalidatesCachedPlans) {
  InferencePipeline pipe = testing::tiny_pipeline(filters::make_lap(8));
  pipe.set_plan_enabled(true);
  const Tensor x = world_batch(2);
  const Tensor with_lap = pipe.predict_probs_batch(x, ThreatModel::kIII);
  EXPECT_EQ(pipe.plan_stats().compiles, 1u);

  pipe.set_filter(filters::make_identity());
  const Tensor with_identity = pipe.predict_probs_batch(x, ThreatModel::kIII);
  EXPECT_EQ(pipe.plan_stats().compiles, 2u)
      << "filter swap did not invalidate the plan cache";
  EXPECT_FALSE(bitwise_equal(with_lap, with_identity));

  InferencePipeline tape = testing::tiny_pipeline(filters::make_identity());
  tape.set_plan_enabled(false);
  EXPECT_TRUE(bitwise_equal(with_identity,
                            tape.predict_probs_batch(x, ThreatModel::kIII)));
}

TEST(PlanStaleness, SwapGenerationBumpDropsEveryCachedPlan) {
  InferencePipeline pipe = testing::tiny_pipeline(filters::make_identity());
  pipe.set_plan_enabled(true);
  const Tensor x = world_batch(2);
  (void)pipe.predict_probs_batch(x, ThreatModel::kI);
  const plan::PlanStats before = pipe.plan_stats();
  EXPECT_EQ(before.compiles, 1u);

  plan::bump_swap_generation();  // what ModelRegistry::swap does

  const Tensor after = pipe.predict_probs_batch(x, ThreatModel::kI);
  EXPECT_EQ(pipe.plan_stats().compiles, 2u)
      << "swap generation bump did not invalidate";
  // Same weights, same shape: the recompiled plan must reproduce the old
  // bits exactly.
  InferencePipeline tape = testing::tiny_pipeline(filters::make_identity());
  tape.set_plan_enabled(false);
  EXPECT_TRUE(
      bitwise_equal(after, tape.predict_probs_batch(x, ThreatModel::kI)));
}

// ---- swap under load (chaos) ----------------------------------------------

constexpr int64_t kSide = 8;
constexpr int kClasses = 4;

std::string plan_checkpoint(uint64_t seed, const std::string& name) {
  Rng rng(seed);
  auto model = nn::make_vggnet(nn::VggConfig::tiny(kClasses, kSide), rng);
  const std::string path =
      (std::filesystem::temp_directory_path() / name).string();
  nn::save_checkpoint(*model, path);
  return path;
}

net::ModelSpec plan_spec(const std::string& name,
                         const std::string& checkpoint) {
  net::ModelSpec spec;
  spec.name = name;
  spec.checkpoint_path = checkpoint;
  spec.factory = [] {
    std::vector<std::unique_ptr<InferencePipeline>> replicas;
    for (int i = 0; i < 2; ++i) {
      Rng rng(99);
      auto model = nn::make_vggnet(nn::VggConfig::tiny(kClasses, kSide), rng);
      replicas.push_back(std::make_unique<InferencePipeline>(
          std::move(model), filters::make_lap(4)));
    }
    return replicas;
  };
  serve::ServiceConfig service;
  service.admission.expected_height = kSide;
  service.admission.expected_width = kSide;
  spec.service = service;
  return spec;
}

TEST(PlanSwapChaos, HotSwapsUnderLoadNeverServeStalePlans) {
  // Hammer predictions from client threads while the main thread hot-swaps
  // checkpoints. Every response must be bitwise identical to one of the
  // two installed weight sets — a plan compiled against pre-swap modules
  // serving post-swap traffic would produce a third, impossible output.
  const std::string ckpt_a = plan_checkpoint(99, "fademl_plan_swap_a.fdml");
  const std::string ckpt_b = plan_checkpoint(1234, "fademl_plan_swap_b.fdml");

  net::ModelRegistry registry;
  registry.install(plan_spec("vgg", ckpt_a));
  net::ServerConfig server_config;
  server_config.read_timeout_ms = 10000;
  net::Server server(registry, server_config);
  server.start();

  Rng rng(5);
  const Tensor image = rng.uniform_tensor(Shape{3, kSide, kSide}, 0.0f, 1.0f);

  // References for both weight sets through a local plan-enabled pipeline.
  auto reference = [&](const std::string& ckpt) {
    Rng model_rng(99);
    auto model = nn::make_vggnet(nn::VggConfig::tiny(kClasses, kSide),
                                 model_rng);
    nn::load_checkpoint(*model, ckpt);
    InferencePipeline pipe(std::move(model), filters::make_lap(4));
    return pipe.predict_probs(image, ThreatModel::kIII);
  };
  const Tensor probs_a = reference(ckpt_a);
  const Tensor probs_b = reference(ckpt_b);
  ASSERT_FALSE(bitwise_equal(probs_a, probs_b));

  constexpr int kThreads = 3;
  constexpr int kRequestsPerThread = 8;
  std::atomic<int> matched{0};
  std::atomic<int> impossible{0};
  std::vector<std::thread> clients;
  for (int t = 0; t < kThreads; ++t) {
    clients.emplace_back([&, t] {
      net::ClientConfig config;
      config.port = server.port();
      config.connect_timeout_ms = 2000;
      config.io_timeout_ms = 5000;
      config.retry.max_attempts = 6;
      config.retry.initial_backoff_ms = 1;
      config.retry.max_backoff_ms = 20;
      config.retry.jitter_seed = 0xF00Du + static_cast<uint64_t>(t);
      net::Client client(config);
      for (int i = 0; i < kRequestsPerThread; ++i) {
        const Tensor probs =
            client.predict("vgg", image).prediction.probs;
        if (bitwise_equal(probs, probs_a) || bitwise_equal(probs, probs_b)) {
          matched.fetch_add(1);
        } else {
          impossible.fetch_add(1);
        }
      }
    });
  }

  // Interleave swaps with the in-flight load: a -> b -> a -> b.
  const std::string* ckpts[] = {&ckpt_b, &ckpt_a, &ckpt_b};
  std::uint64_t generation = 1;
  for (const std::string* ckpt : ckpts) {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    generation = registry.swap("vgg", *ckpt);
  }
  EXPECT_EQ(generation, 4u);

  for (auto& thread : clients) {
    thread.join();
  }
  EXPECT_EQ(matched.load(), kThreads * kRequestsPerThread);
  EXPECT_EQ(impossible.load(), 0)
      << "a response matched neither weight set: stale plan suspected";

  // The swaps really did invalidate: the post-swap handle reports fresh
  // compiles, and final predictions match the last installed checkpoint.
  net::ClientConfig config;
  config.port = server.port();
  net::Client client(config);
  EXPECT_TRUE(bitwise_equal(client.predict("vgg", image).prediction.probs,
                            probs_b));
  if (plan::plans_enabled()) {
    const net::StatusResponse status = client.status("vgg");
    EXPECT_GT(status.plan_batches, 0);
    EXPECT_GE(status.plan_cache_misses, 1);
  }
  server.stop();
  registry.clear();
}

}  // namespace
}  // namespace fademl
