#include "fademl/parallel/parallel.hpp"

#include <atomic>
#include <cstdint>
#include <numeric>
#include <stdexcept>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "fademl/tensor/ops.hpp"
#include "fademl/tensor/random.hpp"
#include "reference_kernels.hpp"

namespace fademl {
namespace {

/// Restores the previous thread-count override on scope exit, so a failing
/// assertion in one test cannot leak its thread setting into the next.
class ThreadGuard {
 public:
  explicit ThreadGuard(int n) { parallel::set_num_threads(n); }
  ~ThreadGuard() { parallel::set_num_threads(0); }
};

// ---- chunk decomposition (the determinism contract) ------------------------

TEST(ParallelChunks, CountIsPureFunctionOfRangeAndGrain) {
  EXPECT_EQ(parallel::chunk_count(0, 4), 0);
  EXPECT_EQ(parallel::chunk_count(-5, 4), 0);
  EXPECT_EQ(parallel::chunk_count(1, 4), 1);
  EXPECT_EQ(parallel::chunk_count(4, 4), 1);
  EXPECT_EQ(parallel::chunk_count(5, 4), 2);
  EXPECT_EQ(parallel::chunk_count(8, 4), 2);
  EXPECT_EQ(parallel::chunk_count(9, 4), 3);
  // Degenerate grains count as 1.
  EXPECT_EQ(parallel::chunk_count(7, 0), 7);
  EXPECT_EQ(parallel::chunk_count(7, -3), 7);
}

TEST(ParallelChunks, BoundariesCoverTheRangeExactlyOnce) {
  for (int threads : {1, 2, 7}) {
    ThreadGuard guard(threads);
    for (int64_t range : {1, 5, 16, 100, 1000}) {
      for (int64_t grain : {1, 3, 16, 1000}) {
        std::vector<std::atomic<int>> hits(static_cast<size_t>(range));
        for (auto& h : hits) {
          h.store(0);
        }
        parallel::parallel_for(0, range, grain,
                               [&](int64_t lo, int64_t hi) {
                                 for (int64_t i = lo; i < hi; ++i) {
                                   hits[static_cast<size_t>(i)].fetch_add(1);
                                 }
                               });
        for (int64_t i = 0; i < range; ++i) {
          ASSERT_EQ(hits[static_cast<size_t>(i)].load(), 1)
              << "index " << i << " range " << range << " grain " << grain
              << " threads " << threads;
        }
      }
    }
  }
}

TEST(ParallelChunks, ChunkIndexMatchesDocumentedBoundaries) {
  ThreadGuard guard(3);
  const int64_t begin = 10, end = 47, grain = 8;
  const int64_t nchunks = parallel::chunk_count(end - begin, grain);
  std::vector<std::atomic<int64_t>> lo_of(static_cast<size_t>(nchunks));
  std::vector<std::atomic<int64_t>> hi_of(static_cast<size_t>(nchunks));
  parallel::parallel_for_chunks(begin, end, grain,
                                [&](int64_t c, int64_t lo, int64_t hi) {
                                  lo_of[static_cast<size_t>(c)].store(lo);
                                  hi_of[static_cast<size_t>(c)].store(hi);
                                });
  for (int64_t c = 0; c < nchunks; ++c) {
    EXPECT_EQ(lo_of[static_cast<size_t>(c)].load(), begin + c * grain);
    EXPECT_EQ(hi_of[static_cast<size_t>(c)].load(),
              std::min(end, begin + (c + 1) * grain));
  }
}

// ---- edge cases ------------------------------------------------------------

TEST(ParallelEdge, ZeroAndNegativeRangesNeverInvokeTheBody) {
  for (int threads : {1, 4}) {
    ThreadGuard guard(threads);
    std::atomic<int> calls{0};
    parallel::parallel_for(0, 0, 1, [&](int64_t, int64_t) { ++calls; });
    parallel::parallel_for(5, 5, 1, [&](int64_t, int64_t) { ++calls; });
    parallel::parallel_for(9, 2, 1, [&](int64_t, int64_t) { ++calls; });
    EXPECT_EQ(calls.load(), 0);
  }
}

TEST(ParallelEdge, GrainLargerThanRangeIsOneChunk) {
  ThreadGuard guard(4);
  std::atomic<int> calls{0};
  int64_t seen_lo = -1, seen_hi = -1;
  parallel::parallel_for(3, 10, 1000, [&](int64_t lo, int64_t hi) {
    ++calls;
    seen_lo = lo;
    seen_hi = hi;
  });
  EXPECT_EQ(calls.load(), 1);
  EXPECT_EQ(seen_lo, 3);
  EXPECT_EQ(seen_hi, 10);
}

TEST(ParallelEdge, NestedParallelForRunsInlineWithoutDeadlock) {
  ThreadGuard guard(4);
  std::atomic<int64_t> total{0};
  parallel::parallel_for(0, 8, 1, [&](int64_t lo, int64_t hi) {
    for (int64_t i = lo; i < hi; ++i) {
      EXPECT_TRUE(parallel::in_parallel_region());
      // The inner loop must complete inline on this thread; a second
      // fan-out attempt from inside a worker would deadlock a naive pool.
      parallel::parallel_for(0, 100, 10, [&](int64_t ilo, int64_t ihi) {
        total.fetch_add(ihi - ilo);
      });
    }
  });
  EXPECT_FALSE(parallel::in_parallel_region());
  EXPECT_EQ(total.load(), 8 * 100);
}

TEST(ParallelEdge, ExceptionPropagatesToCaller) {
  for (int threads : {1, 4}) {
    ThreadGuard guard(threads);
    EXPECT_THROW(
        parallel::parallel_for(0, 64, 1,
                               [&](int64_t lo, int64_t) {
                                 if (lo == 13) {
                                   throw std::runtime_error("chunk 13 died");
                                 }
                               }),
        std::runtime_error);
    // The pool must stay usable after a failed loop.
    std::atomic<int64_t> sum{0};
    parallel::parallel_for(0, 100, 7, [&](int64_t lo, int64_t hi) {
      sum.fetch_add(hi - lo);
    });
    EXPECT_EQ(sum.load(), 100);
  }
}

TEST(ParallelEdge, ConcurrentTopLevelCallsBothComplete) {
  ThreadGuard guard(4);
  // Two plain threads race into parallel_for at the same time; the loser
  // of the pool race runs inline. Either way both loops must finish with
  // every index visited exactly once.
  std::vector<std::atomic<int>> hits_a(512), hits_b(512);
  for (auto& h : hits_a) h.store(0);
  for (auto& h : hits_b) h.store(0);
  std::thread racer([&] {
    parallel::parallel_for(0, 512, 8, [&](int64_t lo, int64_t hi) {
      for (int64_t i = lo; i < hi; ++i) {
        hits_a[static_cast<size_t>(i)].fetch_add(1);
      }
    });
  });
  parallel::parallel_for(0, 512, 8, [&](int64_t lo, int64_t hi) {
    for (int64_t i = lo; i < hi; ++i) {
      hits_b[static_cast<size_t>(i)].fetch_add(1);
    }
  });
  racer.join();
  for (int i = 0; i < 512; ++i) {
    ASSERT_EQ(hits_a[static_cast<size_t>(i)].load(), 1);
    ASSERT_EQ(hits_b[static_cast<size_t>(i)].load(), 1);
  }
}

// ---- thread-count resolution ----------------------------------------------

TEST(ParallelConfig, ParseThreadSpec) {
  using parallel::detail::parse_thread_spec;
  EXPECT_EQ(parse_thread_spec(nullptr), 0);
  EXPECT_EQ(parse_thread_spec(""), 0);
  EXPECT_EQ(parse_thread_spec("4"), 4);
  EXPECT_EQ(parse_thread_spec("1"), 1);
  EXPECT_EQ(parse_thread_spec("0"), 0);      // non-positive -> unset
  EXPECT_EQ(parse_thread_spec("-3"), 0);     // non-positive -> unset
  EXPECT_EQ(parse_thread_spec("abc"), 0);    // malformed -> unset
  EXPECT_EQ(parse_thread_spec("4x"), 0);     // trailing junk -> unset
  EXPECT_EQ(parse_thread_spec("99999"), 256);  // clamped to the pool cap
}

TEST(ParallelConfig, SetNumThreadsOverridesAndClears) {
  parallel::set_num_threads(3);
  EXPECT_EQ(parallel::num_threads(), 3);
  parallel::set_num_threads(1);
  EXPECT_EQ(parallel::num_threads(), 1);
  parallel::set_num_threads(0);  // back to env/hardware default
  EXPECT_GE(parallel::num_threads(), 1);
}

// ---- differential: parallel kernels vs naive references --------------------

TEST(ParallelDifferential, MatmulMatchesReferenceOverRandomShapes) {
  Rng rng(101);
  Rng shape_rng(17);
  for (int threads : {1, 2, 7}) {
    ThreadGuard guard(threads);
    for (int trial = 0; trial < 8; ++trial) {
      const int64_t m = 1 + static_cast<int64_t>(shape_rng.uniform() * 40);
      const int64_t k = 1 + static_cast<int64_t>(shape_rng.uniform() * 40);
      const int64_t n = 1 + static_cast<int64_t>(shape_rng.uniform() * 40);
      const Tensor a = rng.normal_tensor(Shape{m, k}, 0.0f, 1.0f);
      const Tensor b = rng.normal_tensor(Shape{k, n}, 0.0f, 1.0f);
      const Tensor fast = matmul(a, b);
      const Tensor ref = testing::matmul_reference(a, b);
      ASSERT_EQ(fast.shape(), ref.shape());
      for (int64_t i = 0; i < fast.numel(); ++i) {
        // The production kernel reorders the k-reduction (i-k-j); allow
        // the documented accumulation-order bound.
        ASSERT_NEAR(fast.at(i), ref.at(i), 1e-4f * k + 1e-4f)
            << m << "x" << k << "x" << n << " at " << i << " (threads "
            << threads << ")";
      }
    }
  }
}

TEST(ParallelDifferential, MaxpoolMatchesReferenceExactly) {
  Rng rng(55);
  for (int threads : {1, 2, 7}) {
    ThreadGuard guard(threads);
    const Tensor input = rng.normal_tensor(Shape{3, 5, 8, 8}, 0.0f, 1.0f);
    const Tensor fast = maxpool2d(input, 2, nullptr);
    const Tensor ref = testing::maxpool2d_reference(input, 2);
    // Max is order-independent: exact equality at every thread count.
    EXPECT_TRUE(testing::bitwise_equal(fast, ref));
  }
}

// ---- bitwise run-to-run and cross-thread-count determinism -----------------

TEST(ParallelDeterminism, KernelsBitwiseIdenticalAcrossThreadCounts) {
  Rng rng(202);
  const Tensor a = rng.normal_tensor(Shape{64, 48}, 0.0f, 1.0f);
  const Tensor b = rng.normal_tensor(Shape{48, 56}, 0.0f, 1.0f);
  const Tensor batch = rng.normal_tensor(Shape{5, 3, 16, 16}, 0.0f, 1.0f);
  const Tensor weight = rng.normal_tensor(Shape{6, 3, 3, 3}, 0.0f, 0.5f);
  const Tensor bias = rng.normal_tensor(Shape{6}, 0.0f, 0.5f);
  const Tensor big = rng.normal_tensor(Shape{100000}, 0.0f, 1.0f);
  Conv2dSpec spec;

  Tensor mm1, conv1, add1, pool1;
  {
    ThreadGuard guard(1);
    mm1 = matmul(a, b);
    conv1 = conv2d(batch, weight, bias, spec);
    add1 = add(big, big);
    pool1 = maxpool2d(batch, 2, nullptr);
  }
  for (int threads : {2, 7}) {
    ThreadGuard guard(threads);
    // Determinism contract: chunking depends only on (range, grain), so
    // the parallel runs must reproduce the 1-thread results bit for bit.
    EXPECT_TRUE(testing::bitwise_equal(matmul(a, b), mm1))
        << "matmul at " << threads << " threads";
    EXPECT_TRUE(
        testing::bitwise_equal(conv2d(batch, weight, bias, spec), conv1))
        << "conv2d at " << threads << " threads";
    EXPECT_TRUE(testing::bitwise_equal(add(big, big), add1))
        << "elementwise add at " << threads << " threads";
    EXPECT_TRUE(testing::bitwise_equal(maxpool2d(batch, 2, nullptr), pool1))
        << "maxpool2d at " << threads << " threads";
  }
}

// ---- gather grain (machine-adaptive fan-out for gather loops) --------------

TEST(GatherGrain, DegenerateInputsStayInline) {
  ThreadGuard guard(4);
  // range <= 1 returns grain 1 (chunk_count(0, 1) is still 0 chunks).
  EXPECT_EQ(parallel::gather_grain(0, 100), 1);
  EXPECT_EQ(parallel::gather_grain(1, 1'000'000), 1);
  // ops_per_item <= 0 is treated as 1 op: tiny total work stays inline.
  EXPECT_EQ(parallel::gather_grain(100, 0), 100);
  EXPECT_EQ(parallel::gather_grain(100, -5), 100);
}

TEST(GatherGrain, SingleThreadMeansOneChunk) {
  ThreadGuard guard(1);
  // With one usable thread the grain must be the whole range, so the
  // caller's parallel_for runs inline without waking the pool.
  const int64_t grain = parallel::gather_grain(768, 1056);
  EXPECT_EQ(grain, 768);
  EXPECT_EQ(parallel::chunk_count(768, grain), 1);
}

TEST(GatherGrain, OversubscribedPoolDoesNotFanOut) {
  // The BENCH_tensor lap32_batch8 regression: a 2-thread pool on a
  // 1-core machine made the batch 0.71x SLOWER than single-image. The
  // grain must cap effective width at hardware_concurrency, so on any
  // machine, threads > cores cannot produce more chunks than cores
  // justify.
  const auto hw =
      static_cast<int64_t>(std::thread::hardware_concurrency());
  if (hw != 1) {
    GTEST_SKIP() << "needs a 1-core machine to reproduce exactly";
  }
  ThreadGuard guard(2);
  // LAP(32) over an 8x3x16x16 batch: 768 gathered rows, ~1056 ops each.
  EXPECT_EQ(parallel::gather_grain(768, 1056), 768)
      << "2 pool threads time-slicing 1 core must not fan out";
}

TEST(GatherGrain, SmallTotalsRunInline) {
  ThreadGuard guard(4);
  // 100 rows x 100 ops = 10k scalar ops: far below the ~128k fan-out
  // threshold, so the pool must not be woken for it.
  EXPECT_EQ(parallel::gather_grain(100, 100), 100);
}

TEST(GatherGrain, ParallelGeometryTargetsBigChunks) {
  const auto hw =
      static_cast<int64_t>(std::thread::hardware_concurrency());
  if (hw < 2) {
    GTEST_SKIP() << "needs >= 2 cores to fan out at all";
  }
  ThreadGuard guard(static_cast<int>(hw));
  const int64_t range = 100'000;
  const int64_t ops = 64;
  const int64_t grain = parallel::gather_grain(range, ops);
  ASSERT_GT(grain, 0);
  const int64_t chunks = parallel::chunk_count(range, grain);
  EXPECT_GE(chunks, 2) << "big gather should fan out on a multicore box";
  EXPECT_LE(chunks, 4 * hw) << "at most 4 chunks per usable thread";
  EXPECT_GE(grain * ops, int64_t{1} << 15)
      << "each chunk must carry >= ~32k scalar ops";
}

TEST(ParallelDeterminism, RunToRunStableAtFixedThreadCount) {
  Rng rng(303);
  const Tensor a = rng.normal_tensor(Shape{33, 29}, 0.0f, 1.0f);
  const Tensor b = rng.normal_tensor(Shape{29, 31}, 0.0f, 1.0f);
  ThreadGuard guard(7);
  const Tensor first = matmul(a, b);
  for (int run = 0; run < 5; ++run) {
    EXPECT_TRUE(testing::bitwise_equal(matmul(a, b), first)) << "run " << run;
  }
}

}  // namespace
}  // namespace fademl
