// Chaos and protocol tests for the fademl::net serving front-end: the
// FNET frame codec under adversarial bytes (truncation, forged lengths,
// corrupted CRCs, version skew), the retrying client against injected
// transport faults (net-reset / net-partial / net-slow), hot checkpoint
// swap — including a swap-corrupt load that must leave the old model
// serving — and a multi-threaded zero-loss hammer. Runs under ASan/UBSan
// and TSan (scripts/check.sh --tsan includes this binary).

#include <atomic>
#include <chrono>
#include <cstring>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "fademl/io/failpoint.hpp"
#include "fademl/net/client.hpp"
#include "fademl/net/errors.hpp"
#include "fademl/net/frame.hpp"
#include "fademl/net/registry.hpp"
#include "fademl/net/server.hpp"
#include "fademl/net/socket.hpp"
#include "fademl/nn/checkpoint.hpp"
#include "fademl/nn/vggnet.hpp"
#include "fademl/tensor/random.hpp"

namespace fademl::net {
namespace {

using std::chrono::milliseconds;

constexpr int64_t kSide = 8;
constexpr int kClasses = 4;

std::unique_ptr<core::InferencePipeline> make_replica() {
  Rng rng(99);  // same seed -> identical weights across replicas
  auto model = nn::make_vggnet(nn::VggConfig::tiny(kClasses, kSide), rng);
  return std::make_unique<core::InferencePipeline>(std::move(model),
                                                   filters::make_lap(4));
}

std::vector<std::unique_ptr<core::InferencePipeline>> make_replicas(
    size_t count) {
  std::vector<std::unique_ptr<core::InferencePipeline>> replicas;
  for (size_t i = 0; i < count; ++i) {
    replicas.push_back(make_replica());
  }
  return replicas;
}

Tensor valid_image(uint64_t seed = 5) {
  Rng rng(seed);
  return rng.uniform_tensor(Shape{3, kSide, kSide}, 0.0f, 1.0f);
}

/// Write a checkpoint whose weights come from `seed`, so two seeds give
/// observably different served predictions.
std::string make_checkpoint(uint64_t seed, const std::string& name) {
  Rng rng(seed);
  auto model = nn::make_vggnet(nn::VggConfig::tiny(kClasses, kSide), rng);
  const std::string path =
      (std::filesystem::temp_directory_path() / name).string();
  nn::save_checkpoint(*model, path);
  return path;
}

serve::ServiceConfig tiny_service_config() {
  serve::ServiceConfig config;
  config.admission.expected_height = kSide;
  config.admission.expected_width = kSide;
  return config;
}

ModelSpec tiny_spec(const std::string& model_name,
                    const std::string& checkpoint) {
  ModelSpec spec;
  spec.name = model_name;
  spec.checkpoint_path = checkpoint;
  spec.factory = [] { return make_replicas(2); };
  spec.service = tiny_service_config();
  return spec;
}

/// Reference result computed through a local (no-network) service over
/// the same checkpoint — the wire path must be bitwise identical to it.
Tensor reference_probs(const std::string& checkpoint, const Tensor& image) {
  auto replicas = make_replicas(1);
  nn::load_checkpoint(replicas[0]->model(), checkpoint);
  serve::InferenceService service(std::move(replicas),
                                  tiny_service_config());
  return service.classify(image).prediction.probs;
}

ClientConfig fast_client(uint16_t port, int max_attempts = 4) {
  ClientConfig config;
  config.port = port;
  config.connect_timeout_ms = 2000;
  config.io_timeout_ms = 5000;
  config.retry.max_attempts = max_attempts;
  config.retry.initial_backoff_ms = 1;
  config.retry.max_backoff_ms = 20;
  return config;
}

bool bitwise_equal(const Tensor& a, const Tensor& b) {
  if (a.numel() != b.numel()) {
    return false;
  }
  return std::memcmp(a.data(), b.data(),
                     sizeof(float) * static_cast<size_t>(a.numel())) == 0;
}

/// Every test leaves the process-wide injector disarmed.
class NetTest : public ::testing::Test {
 protected:
  void SetUp() override { io::FaultInjector::instance().disarm(); }
  void TearDown() override { io::FaultInjector::instance().disarm(); }
};

// ---- payload primitives ----------------------------------------------------

TEST(Cursor, PrimitivesRoundTrip) {
  std::string buf;
  append_u8(buf, 0xAB);
  append_u16(buf, 0xBEEF);
  append_u32(buf, 0xDEADBEEFu);
  append_u64(buf, 0x0123456789ABCDEFull);
  append_f64(buf, -2.5);
  append_string(buf, "fademl");
  Cursor cur(buf);
  EXPECT_EQ(cur.read_u8(), 0xAB);
  EXPECT_EQ(cur.read_u16(), 0xBEEF);
  EXPECT_EQ(cur.read_u32(), 0xDEADBEEFu);
  EXPECT_EQ(cur.read_u64(), 0x0123456789ABCDEFull);
  EXPECT_EQ(cur.read_f64(), -2.5);
  EXPECT_EQ(cur.read_string(), "fademl");
  EXPECT_NO_THROW(cur.expect_end());
}

TEST(Cursor, TruncationAndTrailingGarbageAreTyped) {
  std::string buf;
  append_u32(buf, 7);
  Cursor short_read(std::string_view(buf).substr(0, 2));
  EXPECT_THROW(short_read.read_u32(), ProtocolError);

  std::string with_tail = buf + "x";
  Cursor tail(with_tail);
  tail.read_u32();
  EXPECT_THROW(tail.expect_end(), ProtocolError);

  // A string whose declared length exceeds the remaining bytes.
  std::string lying;
  append_u32(lying, 1000);
  lying += "abc";
  Cursor cur(lying);
  EXPECT_THROW(cur.read_string(), ProtocolError);
}

TEST(Cursor, ForgedTensorDimsRejectedBeforeAllocation) {
  // A tensor header declaring ~16G elements backed by a handful of
  // bytes: the decoder must reject from the length cross-check, not
  // attempt the allocation.
  std::string buf;
  buf.append("FDML", 4);
  append_u32(buf, 1);  // version
  append_u32(buf, 4);  // rank
  for (int i = 0; i < 4; ++i) {
    append_u64(buf, 65536);  // 65536^4 elements
  }
  Cursor cur(buf);
  EXPECT_THROW(cur.read_tensor_bounded(), ProtocolError);

  // Also with a plausible product that still exceeds the actual bytes.
  std::string small;
  small.append("FDML", 4);
  append_u32(small, 1);
  append_u32(small, 1);
  append_u64(small, 1024);  // declares 4 KiB of floats, provides none
  Cursor cur2(small);
  EXPECT_THROW(cur2.read_tensor_bounded(), ProtocolError);
}

TEST(Cursor, TensorRoundTripIsExact) {
  const Tensor t = valid_image(11);
  std::string buf;
  append_tensor(buf, t);
  Cursor cur(buf);
  const Tensor back = cur.read_tensor_bounded();
  EXPECT_NO_THROW(cur.expect_end());
  ASSERT_EQ(back.numel(), t.numel());
  EXPECT_TRUE(bitwise_equal(back, t));
}

// ---- frame codec over a socketpair ----------------------------------------

TEST_F(NetTest, FrameRoundTripOverSocketPair) {
  auto [a, b] = Socket::pair();
  Frame out;
  out.type = FrameType::kPredictRequest;
  out.request_id = 42;
  out.payload = encode_predict_request({"vgg", valid_image()});
  write_frame(a, out, 1000);
  const Frame in = read_frame(b, 1000);
  EXPECT_EQ(in.type, FrameType::kPredictRequest);
  EXPECT_EQ(in.request_id, 42u);
  EXPECT_EQ(in.payload, out.payload);
  const PredictRequest req = decode_predict_request(in.payload);
  EXPECT_EQ(req.model, "vgg");
  EXPECT_EQ(req.image.numel(), 3 * kSide * kSide);
}

TEST_F(NetTest, TruncatedHeaderIsAReset) {
  auto [a, b] = Socket::pair();
  const std::string bytes = encode_frame({FrameType::kPing, 1, ""});
  a.write_all(bytes.data(), 10, 1000);  // partial header
  a.close();
  EXPECT_THROW(read_frame(b, 1000), ConnectionResetError);
}

TEST_F(NetTest, TruncatedPayloadIsAReset) {
  auto [a, b] = Socket::pair();
  Frame frame;
  frame.type = FrameType::kPing;
  frame.request_id = 9;
  frame.payload = std::string(100, 'x');
  const std::string bytes = encode_frame(frame);
  a.write_all(bytes.data(), kFrameHeaderBytes + 30, 1000);
  a.close();
  EXPECT_THROW(read_frame(b, 1000), ConnectionResetError);
}

TEST_F(NetTest, BadMagicIsAProtocolError) {
  auto [a, b] = Socket::pair();
  std::string bytes = encode_frame({FrameType::kPing, 1, ""});
  bytes[0] = 'X';
  a.write_all(bytes.data(), bytes.size(), 1000);
  EXPECT_THROW(read_frame(b, 1000), ProtocolError);
}

TEST_F(NetTest, VersionSkewIsAProtocolError) {
  auto [a, b] = Socket::pair();
  std::string bytes = encode_frame({FrameType::kPing, 1, ""});
  bytes[4] = 9;  // future protocol version
  a.write_all(bytes.data(), bytes.size(), 1000);
  try {
    read_frame(b, 1000);
    FAIL() << "version skew must throw";
  } catch (const ProtocolError& e) {
    EXPECT_NE(std::string(e.what()).find("version skew"), std::string::npos);
    EXPECT_FALSE(e.retryable());
  }
}

TEST_F(NetTest, UnknownFrameTypeIsAProtocolError) {
  auto [a, b] = Socket::pair();
  std::string bytes = encode_frame({FrameType::kPing, 1, ""});
  bytes[5] = 99;
  a.write_all(bytes.data(), bytes.size(), 1000);
  EXPECT_THROW(read_frame(b, 1000), ProtocolError);
}

TEST_F(NetTest, AbsurdDeclaredLengthRejectedBeforeAllocation) {
  auto [a, b] = Socket::pair();
  std::string bytes = encode_frame({FrameType::kPing, 1, ""});
  const uint32_t absurd = 0xF0000000u;  // ~3.75 GiB
  std::memcpy(bytes.data() + 16, &absurd, sizeof(absurd));
  a.write_all(bytes.data(), bytes.size(), 1000);
  try {
    read_frame(b, 1000);
    FAIL() << "absurd length must throw";
  } catch (const ProtocolError& e) {
    EXPECT_NE(std::string(e.what()).find("bound"), std::string::npos);
  }
}

TEST_F(NetTest, CorruptedPayloadCrcIsAProtocolError) {
  auto [a, b] = Socket::pair();
  Frame frame;
  frame.type = FrameType::kPing;
  frame.request_id = 3;
  frame.payload = "payload-bytes";
  std::string bytes = encode_frame(frame);
  bytes[kFrameHeaderBytes + 4] ^= 0x01;  // flip one payload bit
  a.write_all(bytes.data(), bytes.size(), 1000);
  try {
    read_frame(b, 1000);
    FAIL() << "CRC mismatch must throw";
  } catch (const ProtocolError& e) {
    EXPECT_NE(std::string(e.what()).find("CRC"), std::string::npos);
  }
}

TEST_F(NetTest, ReadDeadlineFires) {
  auto [a, b] = Socket::pair();
  const auto start = std::chrono::steady_clock::now();
  EXPECT_THROW(read_frame(b, 50), TimeoutError);
  EXPECT_LT(std::chrono::steady_clock::now() - start, milliseconds(4000));
}

TEST(WireErrors, RetryabilityTable) {
  EXPECT_TRUE(wire_error_retryable(WireError::kQueueFull));
  EXPECT_TRUE(wire_error_retryable(WireError::kServerBusy));
  EXPECT_TRUE(wire_error_retryable(WireError::kShuttingDown));
  EXPECT_TRUE(wire_error_retryable(WireError::kCircuitOpen));
  EXPECT_TRUE(wire_error_retryable(WireError::kDeadlineExceeded));
  // A lost replica is blameless for the request: retry lands on a fresh
  // worker. A quarantined input is the opposite — the same bytes hit the
  // same ban, so retrying is wasted.
  EXPECT_TRUE(wire_error_retryable(WireError::kWorkerLost));
  EXPECT_FALSE(wire_error_retryable(WireError::kQuarantinedInput));
  EXPECT_FALSE(wire_error_retryable(WireError::kUnknownModel));
  EXPECT_FALSE(wire_error_retryable(WireError::kInvalidInput));
  EXPECT_FALSE(wire_error_retryable(WireError::kBadRequest));
  EXPECT_FALSE(wire_error_retryable(WireError::kSwapFailed));
  EXPECT_FALSE(wire_error_retryable(WireError::kInternal));

  ErrorPayload err;
  err.code = WireError::kQueueFull;
  err.retryable = true;
  err.message = "queue full";
  const ErrorPayload back = decode_error_payload(encode_error_payload(err));
  EXPECT_EQ(back.code, WireError::kQueueFull);
  EXPECT_TRUE(back.retryable);
  EXPECT_EQ(back.message, "queue full");
}

// ---- registry --------------------------------------------------------------

TEST_F(NetTest, RegistryInstallLookupAndGeneration) {
  const std::string ckpt = make_checkpoint(99, "fademl_net_reg_a.fdml");
  ModelRegistry registry;
  registry.install(tiny_spec("vgg", ckpt));
  EXPECT_NE(registry.lookup("vgg"), nullptr);
  EXPECT_EQ(registry.lookup("nope"), nullptr);
  EXPECT_EQ(registry.generation("vgg"), 1);
  EXPECT_EQ(registry.checkpoint_path("vgg"), ckpt);
  EXPECT_THROW(registry.install(tiny_spec("vgg", ckpt)), SwapError);
  EXPECT_THROW(static_cast<void>(registry.generation("nope")),
               UnknownModelError);
  registry.clear();
  EXPECT_EQ(registry.lookup("vgg"), nullptr);
}

TEST_F(NetTest, RegistrySwapPublishesNewModelAtomically) {
  const std::string ckpt_a = make_checkpoint(99, "fademl_net_swap_a.fdml");
  const std::string ckpt_b = make_checkpoint(1234, "fademl_net_swap_b.fdml");
  ModelRegistry registry;
  registry.install(tiny_spec("vgg", ckpt_a));
  const Tensor image = valid_image();

  auto before = registry.lookup("vgg");
  const Tensor probs_a = before->classify(image).prediction.probs;
  EXPECT_TRUE(bitwise_equal(probs_a, reference_probs(ckpt_a, image)));

  EXPECT_EQ(registry.swap("vgg", ckpt_b), 2);
  // The pre-swap handle keeps serving the old model for its holder...
  EXPECT_TRUE(bitwise_equal(before->classify(image).prediction.probs,
                            probs_a));
  // ...while new lookups get the new checkpoint's weights.
  const Tensor probs_b =
      registry.lookup("vgg")->classify(image).prediction.probs;
  EXPECT_FALSE(bitwise_equal(probs_b, probs_a));
  EXPECT_TRUE(bitwise_equal(probs_b, reference_probs(ckpt_b, image)));
}

TEST_F(NetTest, FailedSwapLeavesOldModelServing) {
  const std::string ckpt = make_checkpoint(99, "fademl_net_swapfail.fdml");
  ModelRegistry registry;
  registry.install(tiny_spec("vgg", ckpt));
  const Tensor image = valid_image();
  const Tensor probs_before =
      registry.lookup("vgg")->classify(image).prediction.probs;

  // Missing checkpoint.
  EXPECT_THROW(registry.swap("vgg", "/nonexistent/ckpt.fdml"), SwapError);
  EXPECT_EQ(registry.generation("vgg"), 1);
  EXPECT_EQ(registry.checkpoint_path("vgg"), ckpt);

  // Failpoint-injected corrupt load.
  io::FaultInjector::instance().arm("swap-corrupt:1");
  EXPECT_THROW(registry.swap("vgg", ckpt), SwapError);
  EXPECT_GE(io::FaultInjector::instance().faults_fired(), 1);
  EXPECT_EQ(registry.generation("vgg"), 1);

  // Unknown model name.
  EXPECT_THROW(registry.swap("nope", ckpt), UnknownModelError);

  // The entry is untouched and still bitwise-identical.
  EXPECT_TRUE(bitwise_equal(
      registry.lookup("vgg")->classify(image).prediction.probs,
      probs_before));
}

// ---- client/server integration --------------------------------------------

/// Server over one installed tiny model, started on an ephemeral port.
class ServerTest : public NetTest {
 protected:
  void SetUp() override {
    NetTest::SetUp();
    ckpt_ = make_checkpoint(99, "fademl_net_server_a.fdml");
    registry_.install(tiny_spec("vgg", ckpt_));
    ServerConfig config;
    config.read_timeout_ms = 10000;
    server_ = std::make_unique<Server>(registry_, config);
    server_->start();
  }

  void TearDown() override {
    server_->stop();
    registry_.clear();
    NetTest::TearDown();
  }

  std::string ckpt_;
  ModelRegistry registry_;
  std::unique_ptr<Server> server_;
};

TEST_F(ServerTest, PredictMatchesLocalReferenceBitwise) {
  Client client(fast_client(server_->port()));
  const Tensor image = valid_image();
  const PredictResult result = client.predict("vgg", image);
  EXPECT_TRUE(bitwise_equal(result.prediction.probs,
                            reference_probs(ckpt_, image)));
  EXPECT_EQ(result.attempts, 1);
  EXPECT_FALSE(result.degraded);
  EXPECT_EQ(client.stats().retries, 0);
  const ServerStats stats = server_->stats();
  EXPECT_EQ(stats.connections_accepted, 1);
  EXPECT_EQ(stats.frames_served, 1);
}

TEST_F(ServerTest, PingAndConnectionReuse) {
  Client client(fast_client(server_->port()));
  client.ping();
  client.ping();
  client.predict("vgg", valid_image());
  EXPECT_EQ(client.stats().attempts, 3);
  EXPECT_EQ(client.stats().reconnects, 0);
  EXPECT_EQ(server_->stats().connections_accepted, 1);
}

TEST_F(ServerTest, UnknownModelIsTerminal) {
  Client client(fast_client(server_->port()));
  try {
    client.predict("not-a-model", valid_image());
    FAIL() << "unknown model must throw";
  } catch (const RemoteError& e) {
    EXPECT_EQ(e.code(), WireError::kUnknownModel);
    EXPECT_FALSE(e.retryable());
  }
  // Terminal: exactly one wire attempt, no retries.
  EXPECT_EQ(client.stats().attempts, 1);
  EXPECT_EQ(client.stats().failures, 1);
}

TEST_F(ServerTest, InvalidInputIsTerminal) {
  Client client(fast_client(server_->port()));
  Rng rng(1);
  const Tensor wrong_shape =
      rng.uniform_tensor(Shape{3, kSide * 2, kSide * 2}, 0.0f, 1.0f);
  try {
    client.predict("vgg", wrong_shape);
    FAIL() << "admission failure must throw";
  } catch (const RemoteError& e) {
    EXPECT_EQ(e.code(), WireError::kInvalidInput);
    EXPECT_FALSE(e.retryable());
  }
  EXPECT_EQ(client.stats().attempts, 1);
}

TEST_F(ServerTest, ClientRecoversFromInjectedReset) {
  Client client(fast_client(server_->port()));
  client.ping();  // establish the connection first
  io::FaultInjector::instance().arm("net-reset:1");
  const Tensor image = valid_image();
  const PredictResult result = client.predict("vgg", image);
  EXPECT_TRUE(bitwise_equal(result.prediction.probs,
                            reference_probs(ckpt_, image)));
  EXPECT_GE(result.attempts, 2);
  EXPECT_GE(client.stats().retries, 1);
  EXPECT_GE(client.stats().reconnects, 1);
  EXPECT_GE(io::FaultInjector::instance().faults_fired(), 1);
  EXPECT_FALSE(io::FaultInjector::instance().armed());  // disarmed at zero
}

TEST_F(ServerTest, ClientRecoversFromInjectedPartialFrame) {
  Client client(fast_client(server_->port()));
  client.ping();
  io::FaultInjector::instance().arm("net-partial:1");
  const Tensor image = valid_image();
  const PredictResult result = client.predict("vgg", image);
  EXPECT_TRUE(bitwise_equal(result.prediction.probs,
                            reference_probs(ckpt_, image)));
  EXPECT_GE(client.stats().retries, 1);
  EXPECT_GE(io::FaultInjector::instance().faults_fired(), 1);
}

TEST_F(ServerTest, SlowPeerTripsReadDeadlineThenRecovers) {
  ClientConfig config = fast_client(server_->port(), /*max_attempts=*/2);
  config.io_timeout_ms = 60;
  Client client(config);
  client.ping();
  io::FaultInjector::instance().arm("net-slow:500");
  EXPECT_THROW(client.predict("vgg", valid_image()), TimeoutError);
  EXPECT_EQ(client.stats().attempts, 3);  // ping + both predict attempts
  EXPECT_EQ(client.stats().failures, 1);
  io::FaultInjector::instance().disarm();
  // The next request reconnects and succeeds.
  const PredictResult result = client.predict("vgg", valid_image());
  EXPECT_GE(result.prediction.confidence, 0.0f);
}

TEST_F(ServerTest, SwapOverTheWireChangesServedModel) {
  const std::string ckpt_b =
      make_checkpoint(1234, "fademl_net_server_b.fdml");
  Client client(fast_client(server_->port()));
  const Tensor image = valid_image();
  const Tensor probs_a = client.predict("vgg", image).prediction.probs;

  const SwapResult swapped = client.swap("vgg", ckpt_b);
  EXPECT_EQ(swapped.generation, 2);

  const Tensor probs_b = client.predict("vgg", image).prediction.probs;
  EXPECT_FALSE(bitwise_equal(probs_b, probs_a));
  EXPECT_TRUE(bitwise_equal(probs_b, reference_probs(ckpt_b, image)));
}

TEST_F(ServerTest, CorruptSwapOverTheWireIsNotRetriedAndOldModelServes) {
  Client client(fast_client(server_->port()));
  const Tensor image = valid_image();
  const Tensor probs_before = client.predict("vgg", image).prediction.probs;
  const int64_t attempts_before = client.stats().attempts;

  io::FaultInjector::instance().arm("swap-corrupt:1");
  try {
    client.swap("vgg", ckpt_);
    FAIL() << "corrupt swap must throw";
  } catch (const RemoteError& e) {
    EXPECT_EQ(e.code(), WireError::kSwapFailed);
    EXPECT_FALSE(e.retryable());
  }
  // Non-idempotent: exactly one wire attempt for the swap.
  EXPECT_EQ(client.stats().attempts, attempts_before + 1);
  EXPECT_EQ(registry_.generation("vgg"), 1);

  // The old model is still serving, bitwise unchanged.
  EXPECT_TRUE(bitwise_equal(client.predict("vgg", image).prediction.probs,
                            probs_before));
}

TEST_F(ServerTest, StoppedServerYieldsTypedConnectError) {
  Client client(fast_client(server_->port(), /*max_attempts=*/2));
  client.ping();
  server_->stop();
  EXPECT_THROW(client.predict("vgg", valid_image()), NetError);
  EXPECT_EQ(client.stats().failures, 1);
}

TEST_F(NetTest, ConnectionLimitRefusalIsRetryableServerBusy) {
  const std::string ckpt = make_checkpoint(99, "fademl_net_busy.fdml");
  ModelRegistry registry;
  registry.install(tiny_spec("vgg", ckpt));
  ServerConfig config;
  config.max_connections = 0;  // refuse everything
  Server server(registry, config);
  server.start();
  Client client(fast_client(server.port(), /*max_attempts=*/2));
  try {
    client.ping();
    FAIL() << "refused connection must throw";
  } catch (const RemoteError& e) {
    EXPECT_EQ(e.code(), WireError::kServerBusy);
    EXPECT_TRUE(e.retryable());
  }
  EXPECT_EQ(client.stats().attempts, 2);  // retried, then budget exhausted
  EXPECT_GE(server.stats().connections_refused, 2);
  server.stop();
  registry.clear();
}

TEST_F(ServerTest, HammerWithInjectedResetsLosesNothing) {
  constexpr int kThreads = 3;
  constexpr int kRequestsPerThread = 6;
  io::FaultInjector::instance().arm("net-reset:3");
  std::atomic<int> succeeded{0};
  std::atomic<int> total_retries{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      ClientConfig config = fast_client(server_->port(), /*max_attempts=*/6);
      config.retry.jitter_seed = 0x5EEDu + static_cast<uint64_t>(t);
      Client client(config);
      for (int i = 0; i < kRequestsPerThread; ++i) {
        const PredictResult result =
            client.predict("vgg", valid_image(static_cast<uint64_t>(i)));
        if (result.prediction.probs.numel() > 0) {
          succeeded.fetch_add(1);
        }
      }
      total_retries.fetch_add(static_cast<int>(client.stats().retries));
    });
  }
  for (auto& thread : threads) {
    thread.join();
  }
  // Zero loss: every request eventually produced a prediction.
  EXPECT_EQ(succeeded.load(), kThreads * kRequestsPerThread);
  EXPECT_GE(total_retries.load(), 1);
  EXPECT_GE(io::FaultInjector::instance().faults_fired(), 3);
}

TEST_F(ServerTest, StatusRoundTripReportsServiceAndSupervisorState) {
  Client client(fast_client(server_->port()));
  client.predict("vgg", valid_image());

  const StatusResponse status = client.status("vgg");
  EXPECT_EQ(status.generation, 1);
  EXPECT_EQ(status.checkpoint_path, ckpt_);
  EXPECT_EQ(status.breaker_state, "closed");
  EXPECT_EQ(status.workers, 2);
  EXPECT_EQ(status.workers_live, 2);
  EXPECT_EQ(status.workers_lost, 0);
  EXPECT_GE(status.submitted, 1);
  EXPECT_GE(status.completed, 1);
  EXPECT_EQ(status.quarantined_inputs, 0);
  EXPECT_GT(status.p50_ms, 0.0);

  // Status is idempotent and terminal on unknown names, like predict.
  try {
    client.status("not-a-model");
    FAIL() << "unknown model status must throw";
  } catch (const RemoteError& e) {
    EXPECT_EQ(e.code(), WireError::kUnknownModel);
    EXPECT_FALSE(e.retryable());
  }
}

TEST_F(ServerTest, HedgeFiresOnWedgedWorkerAndWins) {
  // Wedge the first inference: the primary attempt is stuck server-side,
  // so the hedged twin — served by the model's second replica over its
  // own connection — must win.
  ClientConfig config = fast_client(server_->port());
  config.hedge.enabled = true;
  config.hedge.initial_delay_ms = 30;
  config.hedge.min_delay_ms = 30;
  config.hedge.budget = 1.0;
  Client client(config);
  io::FaultInjector::instance().arm("worker-wedge:1");

  const Tensor image = valid_image();
  const PredictResult result = client.predict("vgg", image);
  EXPECT_TRUE(bitwise_equal(result.prediction.probs,
                            reference_probs(ckpt_, image)));
  EXPECT_TRUE(result.hedged);
  EXPECT_EQ(result.attempts, 2);  // the wedged primary + the hedge
  const ClientStats stats = client.stats();
  EXPECT_EQ(stats.hedges, 1);
  EXPECT_EQ(stats.hedge_wins, 1);
  EXPECT_EQ(stats.failures, 0);  // a cancelled loser is not a failure

  // Release the wedged worker before teardown so the server's drain (which
  // waits on the stuck request) can finish.
  io::FaultInjector::instance().disarm();
}

TEST_F(ServerTest, HedgeBudgetZeroNeverHedges) {
  // With a zero budget the delay elapsing must not launch a second
  // attempt, however slow the primary is.
  ClientConfig config = fast_client(server_->port());
  config.hedge.enabled = true;
  config.hedge.initial_delay_ms = 10;
  config.hedge.min_delay_ms = 10;
  config.hedge.budget = 0.0;
  Client client(config);
  io::FaultInjector::instance().arm("net-slow:100");

  const PredictResult result = client.predict("vgg", valid_image());
  EXPECT_FALSE(result.hedged);
  EXPECT_EQ(result.attempts, 1);
  EXPECT_EQ(client.stats().hedges, 0);
  io::FaultInjector::instance().disarm();
}

TEST_F(ServerTest, DrainShutdownWithLiveIdleConnections) {
  Client a(fast_client(server_->port()));
  Client b(fast_client(server_->port()));
  a.ping();
  b.predict("vgg", valid_image());
  EXPECT_EQ(server_->active_connections(), 2);
  // stop() must not hang on the two idle-but-open connections, and the
  // handler threads must all have exited.
  server_->stop();
  EXPECT_EQ(server_->active_connections(), 0);
}

}  // namespace
}  // namespace fademl::net
