#include <set>

#include <gtest/gtest.h>

#include "fademl/data/canvas.hpp"
#include "fademl/data/dataset.hpp"
#include "fademl/data/gtsrb.hpp"
#include "fademl/tensor/error.hpp"
#include "fademl/tensor/ops.hpp"

namespace fademl::data {
namespace {

TEST(Canvas, FillAndTensorLayout) {
  Canvas canvas(4, 6);
  canvas.fill({0.25f, 0.5f, 0.75f});
  const Tensor t = canvas.to_tensor();
  EXPECT_EQ(t.shape(), Shape({3, 4, 6}));
  EXPECT_FLOAT_EQ(t.at({0, 0, 0}), 0.25f);
  EXPECT_FLOAT_EQ(t.at({1, 2, 3}), 0.5f);
  EXPECT_FLOAT_EQ(t.at({2, 3, 5}), 0.75f);
}

TEST(Canvas, GradientIsMonotoneVertically) {
  Canvas canvas(8, 4);
  canvas.fill_vertical_gradient({0.0f, 0.0f, 0.0f}, {1.0f, 1.0f, 1.0f});
  const Tensor t = canvas.to_tensor();
  for (int64_t y = 1; y < 8; ++y) {
    EXPECT_GT(t.at({0, y, 2}), t.at({0, y - 1, 2}));
  }
}

TEST(Canvas, DiscCoversCenterNotCorners) {
  Canvas canvas(16, 16);
  canvas.fill({0, 0, 0});
  canvas.draw_disc(8.0f, 8.0f, 5.0f, {1, 0, 0});
  const Tensor t = canvas.to_tensor();
  EXPECT_FLOAT_EQ(t.at({0, 8, 8}), 1.0f);
  EXPECT_FLOAT_EQ(t.at({0, 0, 0}), 0.0f);
  EXPECT_FLOAT_EQ(t.at({0, 15, 15}), 0.0f);
}

TEST(Canvas, DiscEdgesAreAntialiased) {
  Canvas canvas(32, 32);
  canvas.fill({0, 0, 0});
  canvas.draw_disc(16.0f, 16.0f, 8.0f, {1, 1, 1});
  const Tensor t = canvas.to_tensor();
  // Somewhere on the rim coverage must be fractional.
  bool fractional = false;
  for (int64_t y = 0; y < 32 && !fractional; ++y) {
    for (int64_t x = 0; x < 32; ++x) {
      const float v = t.at({0, y, x});
      if (v > 0.05f && v < 0.95f) {
        fractional = true;
        break;
      }
    }
  }
  EXPECT_TRUE(fractional);
}

TEST(Canvas, RingHasHole) {
  Canvas canvas(16, 16);
  canvas.fill({0, 0, 0});
  canvas.draw_ring(8.0f, 8.0f, 4.0f, 7.0f, {0, 1, 0});
  const Tensor t = canvas.to_tensor();
  EXPECT_FLOAT_EQ(t.at({1, 8, 8}), 0.0f);   // hole
  EXPECT_GT(t.at({1, 8, 13}), 0.5f);        // ring body
}

TEST(Canvas, PolygonEvenOddRule) {
  Canvas canvas(16, 16);
  canvas.fill({0, 0, 0});
  canvas.draw_polygon({{2, 2}, {14, 2}, {14, 14}, {2, 14}}, {1, 1, 1});
  const Tensor t = canvas.to_tensor();
  EXPECT_GT(t.at({0, 8, 8}), 0.9f);
  EXPECT_FLOAT_EQ(t.at({0, 0, 0}), 0.0f);
  EXPECT_THROW(canvas.draw_polygon({{0, 0}, {1, 1}}, {1, 1, 1}), Error);
}

TEST(Canvas, RegularPolygonApexUp) {
  Canvas canvas(32, 32);
  canvas.fill({0, 0, 0});
  canvas.draw_regular_polygon(16, 18, 12, 3, -1.5707963f, {1, 1, 1});
  const Tensor t = canvas.to_tensor();
  EXPECT_GT(t.at({0, 16, 16}), 0.5f);   // interior
  EXPECT_LT(t.at({0, 8, 4}), 0.1f);     // outside near top-left
}

TEST(Canvas, LineAndArrow) {
  Canvas canvas(16, 16);
  canvas.fill({0, 0, 0});
  canvas.draw_line(2, 8, 14, 8, 2.0f, {1, 1, 1});
  const Tensor t = canvas.to_tensor();
  EXPECT_GT(t.at({0, 8, 8}), 0.9f);
  EXPECT_LT(t.at({0, 2, 8}), 0.1f);

  Canvas canvas2(16, 16);
  canvas2.fill({0, 0, 0});
  canvas2.draw_arrow(8, 14, 8, 2, 2.0f, {1, 1, 1});
  const Tensor t2 = canvas2.to_tensor();
  EXPECT_GT(t2.at({0, 8, 8}), 0.5f);  // shaft
  EXPECT_GT(t2.at({0, 3, 8}), 0.2f);  // head
  EXPECT_THROW(canvas2.draw_arrow(1, 1, 1, 1, 1.0f, {1, 1, 1}), Error);
}

TEST(Canvas, TextRendersSupportedGlyphsOnly) {
  Canvas canvas(32, 32);
  canvas.fill({0, 0, 0});
  canvas.draw_text("80", 16, 16, 2.0f, {1, 1, 1});
  const Tensor t = canvas.to_tensor();
  EXPECT_GT(sum(t), 10.0f);  // something was drawn
  EXPECT_THROW(canvas.draw_text("a", 16, 16, 2.0f, {1, 1, 1}), Error);
}

TEST(Gtsrb, ClassNamesCoverAll43) {
  std::set<std::string> names;
  for (int64_t c = 0; c < kGtsrbNumClasses; ++c) {
    names.insert(gtsrb_class_name(c));
  }
  EXPECT_EQ(names.size(), static_cast<size_t>(kGtsrbNumClasses));
  EXPECT_EQ(gtsrb_class_name(14), "Stop");
  EXPECT_EQ(gtsrb_class_name(3), "Speed limit (60km/h)");
  EXPECT_THROW(gtsrb_class_name(43), Error);
  EXPECT_THROW(gtsrb_class_name(-1), Error);
}

TEST(Gtsrb, RenderIsDeterministic) {
  RenderParams params;
  const Tensor a = render_sign(14, params, 32);
  const Tensor b = render_sign(14, params, 32);
  for (int64_t i = 0; i < a.numel(); ++i) {
    ASSERT_FLOAT_EQ(a.at(i), b.at(i));
  }
}

TEST(Gtsrb, RenderedValuesStayInUnitRange) {
  Rng rng(3);
  for (int64_t cls = 0; cls < kGtsrbNumClasses; ++cls) {
    const RenderParams params = RenderParams::randomize(rng, 0.05f);
    const Tensor img = render_sign(cls, params, 24);
    EXPECT_GE(min(img), 0.0f) << "class " << cls;
    EXPECT_LE(max(img), 1.0f) << "class " << cls;
  }
}

TEST(Gtsrb, EveryClassRendersDistinctly) {
  // Pairwise L2 distance between canonical class images must be clearly
  // nonzero — the classifier's task is well-posed.
  std::vector<Tensor> canon;
  for (int64_t cls = 0; cls < kGtsrbNumClasses; ++cls) {
    canon.push_back(canonical_sample(cls, 32));
  }
  for (size_t i = 0; i < canon.size(); ++i) {
    for (size_t j = i + 1; j < canon.size(); ++j) {
      EXPECT_GT(norm_l2(sub(canon[i], canon[j])), 0.5f)
          << "classes " << i << " and " << j << " are too similar";
    }
  }
}

TEST(Gtsrb, NoiseParamAddsNoise) {
  RenderParams clean;
  RenderParams noisy;
  noisy.noise_std = 0.05f;
  noisy.noise_seed = 7;
  const Tensor a = render_sign(1, clean, 32);
  const Tensor b = render_sign(1, noisy, 32);
  EXPECT_GT(norm_l2(sub(a, b)), 0.5f);
}

TEST(Gtsrb, RandomizeVariesPose) {
  Rng rng(5);
  const RenderParams p1 = RenderParams::randomize(rng, 0.0f);
  const RenderParams p2 = RenderParams::randomize(rng, 0.0f);
  const Tensor a = render_sign(14, p1, 32);
  const Tensor b = render_sign(14, p2, 32);
  EXPECT_GT(norm_l2(sub(a, b)), 0.1f);
}

TEST(Gtsrb, RejectsBadArguments) {
  RenderParams params;
  EXPECT_THROW(render_sign(99, params, 32), Error);
  EXPECT_THROW(render_sign(0, params, 4), Error);
  params.background = 17;
  EXPECT_THROW(render_sign(0, params, 32), Error);
}

TEST(Dataset, SyntheticGtsrbCoversEveryClass) {
  SynthConfig config;
  config.train_per_class = 2;
  config.test_per_class = 1;
  config.image_size = 16;
  const SynthGtsrb data = make_synthetic_gtsrb(config);
  EXPECT_EQ(data.train.size(), 2 * kGtsrbNumClasses);
  EXPECT_EQ(data.test.size(), kGtsrbNumClasses);
  const auto hist = data.train.class_histogram();
  for (int64_t c = 0; c < kGtsrbNumClasses; ++c) {
    EXPECT_EQ(hist[static_cast<size_t>(c)], 2) << "class " << c;
  }
}

TEST(Dataset, DeterministicInSeed) {
  SynthConfig config;
  config.train_per_class = 1;
  config.test_per_class = 1;
  config.image_size = 16;
  const SynthGtsrb a = make_synthetic_gtsrb(config);
  const SynthGtsrb b = make_synthetic_gtsrb(config);
  ASSERT_EQ(a.train.size(), b.train.size());
  for (int64_t i = 0; i < a.train.size(); ++i) {
    ASSERT_FLOAT_EQ(
        norm_l2(sub(a.train.images[static_cast<size_t>(i)],
                    b.train.images[static_cast<size_t>(i)])),
        0.0f);
  }
  config.seed = 43;
  const SynthGtsrb c = make_synthetic_gtsrb(config);
  EXPECT_GT(norm_l2(sub(a.train.images[0], c.train.images[0])), 0.0f);
}

TEST(Dataset, TrainAndTestSplitsDiffer) {
  SynthConfig config;
  config.train_per_class = 1;
  config.test_per_class = 1;
  config.image_size = 16;
  const SynthGtsrb data = make_synthetic_gtsrb(config);
  // Same class, different split -> different augmentation draw.
  EXPECT_GT(norm_l2(sub(data.train.images[0], data.test.images[0])), 0.01f);
}

TEST(Dataset, SubsetAndLookups) {
  Dataset d;
  d.num_classes = 3;
  d.images = {Tensor::zeros(Shape{1, 2, 2}), Tensor::ones(Shape{1, 2, 2}),
              Tensor::full(Shape{1, 2, 2}, 2.0f)};
  d.labels = {0, 2, 2};
  EXPECT_EQ(d.find_class(2), 1);
  EXPECT_EQ(d.find_class(1), -1);
  EXPECT_EQ(d.indices_of_class(2), (std::vector<int64_t>{1, 2}));
  const Dataset sub = d.subset({2, 0});
  EXPECT_EQ(sub.size(), 2);
  EXPECT_EQ(sub.labels[0], 2);
  EXPECT_FLOAT_EQ(sub.images[0].at(0), 2.0f);
  EXPECT_THROW(d.subset({5}), Error);
}

TEST(Dataset, CanonicalSampleIsCleanAndCentered) {
  const Tensor img = canonical_sample(14, 32);
  EXPECT_EQ(img.shape(), Shape({3, 32, 32}));
  // Stop sign: strongly red inside the octagon, above the "STOP" glyphs.
  const float r = img.at({0, 8, 16});
  const float g = img.at({1, 8, 16});
  EXPECT_GT(r, 0.5f);
  EXPECT_GT(r, g + 0.2f);
}

}  // namespace
}  // namespace fademl::data
