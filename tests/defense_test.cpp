// Tests for the defense subsystem: adversarial training, the
// feature-squeezing detector (paper ref [10]) and randomized smoothing.

#include <gtest/gtest.h>

#include "fademl/attacks/bim.hpp"
#include "fademl/defense/adversarial_training.hpp"
#include "fademl/defense/detector.hpp"
#include "fademl/tensor/error.hpp"
#include "fademl/tensor/ops.hpp"
#include "test_fixtures.hpp"

namespace fademl::defense {
namespace {

using core::ThreatModel;
using fademl::testing::tiny_pipeline;
using fademl::testing::tiny_world;

attacks::AttackConfig budget() {
  attacks::AttackConfig config;
  config.epsilon = 0.18f;
  config.step_size = 0.02f;
  config.max_iterations = 25;
  return config;
}

TEST(FeatureSqueezeDetector, ValidatesConstruction) {
  EXPECT_THROW(FeatureSqueezeDetector({}, 0.5f), Error);
  EXPECT_THROW(FeatureSqueezeDetector(-1.0f), Error);
  EXPECT_FLOAT_EQ(FeatureSqueezeDetector(0.3f).threshold(), 0.3f);
}

TEST(FeatureSqueezeDetector, ScoresAdversarialAboveBenign) {
  const auto pipeline = tiny_pipeline(filters::make_identity());
  const FeatureSqueezeDetector detector;
  const Tensor benign = data::canonical_sample(14, 16);
  const attacks::BimAttack attack(budget());
  const attacks::AttackResult r = attack.run(pipeline, benign, 3);

  const float benign_score =
      detector.score(pipeline, benign, ThreatModel::kI);
  const float adv_score =
      detector.score(pipeline, r.adversarial, ThreatModel::kI);
  EXPECT_GT(adv_score, benign_score);
}

TEST(FeatureSqueezeDetector, CatchesTheBimExample) {
  const auto pipeline = tiny_pipeline(filters::make_identity());
  const FeatureSqueezeDetector detector(0.4f);
  const Tensor benign = data::canonical_sample(14, 16);
  const attacks::BimAttack attack(budget());
  const attacks::AttackResult r = attack.run(pipeline, benign, 3);
  EXPECT_TRUE(detector.is_adversarial(pipeline, r.adversarial,
                                      ThreatModel::kI));
  EXPECT_FALSE(detector.is_adversarial(pipeline, benign, ThreatModel::kI));
}

TEST(SmoothedPredict, AgreesWithPlainPredictionOnCleanInput) {
  const auto pipeline = tiny_pipeline(filters::make_identity());
  const Tensor x = data::canonical_sample(14, 16);
  const SmoothedPrediction smoothed =
      smoothed_predict(pipeline, x, ThreatModel::kI, 11, 0.03f, 7);
  EXPECT_EQ(smoothed.label, pipeline.predict(x, ThreatModel::kI).label);
  EXPECT_GT(smoothed.vote_share, 0.5f);
}

TEST(SmoothedPredict, ValidatesArguments) {
  const auto pipeline = tiny_pipeline(filters::make_identity());
  const Tensor x = data::canonical_sample(14, 16);
  EXPECT_THROW(smoothed_predict(pipeline, x, ThreatModel::kI, 0, 0.1f, 1),
               Error);
  EXPECT_THROW(smoothed_predict(pipeline, x, ThreatModel::kI, 3, -0.1f, 1),
               Error);
}

TEST(SmoothedPredict, HighNoiseReducesVoteShare) {
  const auto pipeline = tiny_pipeline(filters::make_identity());
  const Tensor x = data::canonical_sample(14, 16);
  const SmoothedPrediction low =
      smoothed_predict(pipeline, x, ThreatModel::kI, 15, 0.01f, 3);
  const SmoothedPrediction high =
      smoothed_predict(pipeline, x, ThreatModel::kI, 15, 0.6f, 3);
  EXPECT_GE(low.vote_share, high.vote_share);
}

TEST(AdversarialTrainer, ValidatesConfig) {
  auto model = tiny_world().model;  // shared, but only ctor checks run here
  AdversarialTrainer::Config bad;
  bad.adversarial_fraction = 1.5f;
  EXPECT_THROW(
      AdversarialTrainer(model, attacks::AttackKind::kFgsm, bad), Error);
  EXPECT_THROW(AdversarialTrainer(nullptr, attacks::AttackKind::kFgsm, {}),
               Error);
}

TEST(AdversarialTrainer, HardensModelAgainstFgsm) {
  // Train two small models on the same data: one plain, one adversarial.
  // The adversarially trained one must resist untargeted FGSM better.
  const auto& w = tiny_world();
  const auto train_model = [&](bool adversarial) {
    Rng rng(77);
    nn::VggConfig config = nn::VggConfig::tiny(43, 16);
    config.channels = {6, 12};
    auto model = nn::make_vggnet(config, rng);
    Rng train_rng(5);
    if (adversarial) {
      AdversarialTrainer::Config at;
      at.epochs = 12;
      at.adversarial_fraction = 0.5f;
      at.attack.epsilon = 0.1f;
      AdversarialTrainer trainer(model, attacks::AttackKind::kFgsm, at);
      trainer.fit(w.train_images, w.train_labels, train_rng);
    } else {
      nn::SGD sgd(model->named_parameters(), {.lr = 0.01f});
      nn::Trainer::Config tc;
      tc.epochs = 12;
      nn::Trainer trainer(*model, sgd, tc);
      trainer.fit(w.train_images, w.train_labels, train_rng);
    }
    return model;
  };

  const auto plain = train_model(false);
  const auto hardened = train_model(true);

  // Untargeted FGSM sweep over the training set's first image per class.
  const auto robustness = [&](const std::shared_ptr<nn::Sequential>& model) {
    core::InferencePipeline pipeline(model, filters::make_identity());
    int correct = 0;
    int total = 0;
    for (int64_t cls : w.classes) {
      const Tensor x = data::canonical_sample(cls, 16);
      // One ascending FGSM step on the true class.
      const core::LossGrad lg = pipeline.loss_and_grad(
          x, attacks::targeted_cross_entropy(cls), ThreatModel::kI);
      Tensor adv = add(x, mul(sign(lg.grad), 0.08f));
      adv.clamp_(0.0f, 1.0f);
      if (pipeline.predict(adv, ThreatModel::kI).label == cls) {
        ++correct;
      }
      ++total;
    }
    return static_cast<double>(correct) / total;
  };

  EXPECT_GE(robustness(hardened), robustness(plain));
}

}  // namespace
}  // namespace fademl::defense
