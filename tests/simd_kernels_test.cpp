// Differential test harness for the fademl::simd kernel layer.
//
// Three rings of defense, inside out:
//  1. Kernel ring — every KernelTable entry at every hardware-supported
//     dispatch tier is fuzzed against the scalar golden table across
//     randomized shapes, strides, alignments, and NaN/Inf/denormal
//     payloads. Everything except gemm must be BITWISE identical (the
//     kernels avoid FMA and reassociation for exactly this reason); gemm
//     is pinned to a double-precision definition-order reference with a
//     scaled absolute bound, plus a bitwise chunk-stability check (the
//     thread-determinism contract).
//  2. Op/filter ring — whole tensor ops and filters run under each tier
//     override and are compared across tiers (bitwise for elementwise and
//     filters, tolerance for matmul/conv2d which ride on gemm).
//  3. Pipeline ring — predict_probs_batch at the scalar tier reproduces
//     the pre-SIMD golden CRC bit for bit, and the vector tiers stay
//     within the gemm tolerance of it.

#include "fademl/simd/kernels.hpp"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstring>
#include <functional>
#include <limits>
#include <random>
#include <vector>

#include <gtest/gtest.h>

#include "fademl/core/pipeline.hpp"
#include "fademl/data/dataset.hpp"
#include "fademl/filters/filter.hpp"
#include "fademl/nn/trainer.hpp"
#include "fademl/nn/vggnet.hpp"
#include "fademl/parallel/parallel.hpp"
#include "fademl/simd/cpu.hpp"
#include "fademl/tensor/error.hpp"
#include "fademl/tensor/ops.hpp"
#include "fademl/tensor/random.hpp"
#include "fademl/tensor/serialize.hpp"

namespace fademl {
namespace {

using simd::CpuLevel;
using simd::GatherDivide;
using simd::KernelTable;

/// RAII tier override (clears on scope exit, so a failed assertion cannot
/// leak a tier into later tests).
class LevelGuard {
 public:
  explicit LevelGuard(CpuLevel level) { simd::set_level_override(level); }
  ~LevelGuard() { simd::clear_level_override(); }
};

class ThreadGuard {
 public:
  explicit ThreadGuard(int n) { parallel::set_num_threads(n); }
  ~ThreadGuard() { parallel::set_num_threads(0); }
};

// ---- dispatcher ------------------------------------------------------------

TEST(CpuDispatch, LevelNamesAreTheDocumentedStrings) {
  EXPECT_STREQ(simd::level_name(CpuLevel::kScalar), "scalar");
  EXPECT_STREQ(simd::level_name(CpuLevel::kSse42), "sse42");
  EXPECT_STREQ(simd::level_name(CpuLevel::kAvx2), "avx2");
  EXPECT_STREQ(simd::level_name(CpuLevel::kAvx512), "avx512");
}

TEST(CpuDispatch, SupportedLevelsAscendFromScalarToHardware) {
  const std::vector<CpuLevel> levels = simd::supported_levels();
  ASSERT_FALSE(levels.empty());
  EXPECT_EQ(levels.front(), CpuLevel::kScalar);
  EXPECT_EQ(levels.back(), simd::hardware_level());
  for (size_t i = 1; i < levels.size(); ++i) {
    EXPECT_EQ(static_cast<int>(levels[i]),
              static_cast<int>(levels[i - 1]) + 1);
  }
}

TEST(CpuDispatch, ParseIsStrictLikeFaultSpec) {
  // Unset means "hardware decides".
  EXPECT_EQ(simd::detail::parse_cpu_level(nullptr), simd::hardware_level());
  EXPECT_EQ(simd::detail::parse_cpu_level(""), simd::hardware_level());
  // Every supported tier parses to itself.
  for (const CpuLevel level : simd::supported_levels()) {
    EXPECT_EQ(simd::detail::parse_cpu_level(simd::level_name(level)), level);
  }
  // Unknown tiers are loud errors, not silent fallbacks.
  for (const char* bad : {"neon", "avx", "AVX2", "Scalar", "sse", "scalar ",
                          "avx512vnni", "0", "best"}) {
    EXPECT_THROW((void)simd::detail::parse_cpu_level(bad), Error) << bad;
  }
  // A real tier above the hardware is rejected too — a silently clamped
  // test matrix would claim coverage it never ran.
  if (simd::hardware_level() < CpuLevel::kAvx512) {
    EXPECT_THROW((void)simd::detail::parse_cpu_level("avx512"), Error);
  }
}

TEST(CpuDispatch, ParseErrorNamesTheAcceptedTiers) {
  try {
    (void)simd::detail::parse_cpu_level("turbo");
    FAIL() << "expected fademl::Error";
  } catch (const Error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("turbo"), std::string::npos) << what;
    EXPECT_NE(what.find("scalar"), std::string::npos) << what;
  }
}

TEST(CpuDispatch, OverrideWinsAndClears) {
  const CpuLevel before = simd::active_level();
  {
    LevelGuard guard(CpuLevel::kScalar);
    EXPECT_EQ(simd::active_level(), CpuLevel::kScalar);
    EXPECT_EQ(simd::kernels().level, CpuLevel::kScalar);
  }
  EXPECT_EQ(simd::active_level(), before);
}

TEST(CpuDispatch, OverrideAboveHardwareThrows) {
  if (simd::hardware_level() == CpuLevel::kAvx512) {
    GTEST_SKIP() << "no tier above hardware on this machine";
  }
  const auto above =
      static_cast<CpuLevel>(static_cast<int>(simd::hardware_level()) + 1);
  EXPECT_THROW(simd::set_level_override(above), Error);
  EXPECT_THROW((void)simd::kernels_for(above), Error);
}

TEST(CpuDispatch, ScalarTierIsTheGoldenTable) {
  // "Dispatcher selects scalar" must mean the pre-SIMD reference code,
  // not a copy that could drift: same table object, bit for bit.
  EXPECT_EQ(&simd::kernels_for(CpuLevel::kScalar),
            &simd::detail::scalar_table());
}

// ---- kernel-level differential fuzz ---------------------------------------

/// Deterministic fuzz payload: mostly uniform values, with occasional
/// NaN / ±Inf / denormal / ±0.0 / huge specials so every lane of a
/// vector kernel has to reproduce the scalar kernel's IEEE edge
/// behavior, not just its happy path.
std::vector<float> fuzz_values(std::mt19937& gen, size_t n,
                               bool specials = true) {
  std::uniform_real_distribution<float> uni(-2.0f, 2.0f);
  std::uniform_int_distribution<int> roll(0, 19);
  static const float kSpecials[] = {
      std::numeric_limits<float>::quiet_NaN(),
      std::numeric_limits<float>::infinity(),
      -std::numeric_limits<float>::infinity(),
      1e-41f,
      -1e-41f,
      0.0f,
      -0.0f,
      3.0e38f,
      -3.0e38f,
  };
  std::uniform_int_distribution<size_t> pick(0, std::size(kSpecials) - 1);
  std::vector<float> out(n);
  for (float& v : out) {
    v = (specials && roll(gen) == 0) ? kSpecials[pick(gen)] : uni(gen);
  }
  return out;
}

constexpr int kFuzzCases = 200;

/// Randomized length plus a 0..3 element start offset so vector kernels
/// see unaligned pointers and every tail length.
struct SpanCase {
  size_t n;
  size_t offset;
};

SpanCase span_case(std::mt19937& gen) {
  // Mix of tiny (all-tail), prime, and multi-vector lengths.
  static const size_t kLens[] = {0,  1,  2,  3,   5,   7,   8,   13,  16, 17,
                                 31, 32, 33, 61, 64,  97,  128, 251, 257, 530};
  std::uniform_int_distribution<size_t> len(0, std::size(kLens) - 1);
  std::uniform_int_distribution<size_t> off(0, 3);
  return {kLens[len(gen)], off(gen)};
}

bool bitwise_equal_spans(const float* a, const float* b, size_t n) {
  // n == 0 spans may have null data() pointers; memcmp's arguments are
  // declared non-null, so UBSan flags even the zero-length call.
  return n == 0 || std::memcmp(a, b, n * sizeof(float)) == 0;
}

/// One elementwise kernel, fuzzed across every supported tier: the tier
/// output must equal the scalar-golden output bitwise, including in-place
/// (dst == a) invocation.
void fuzz_elementwise(
    const char* name,
    const std::function<void(const KernelTable&, const float* a,
                             const float* b, float s, float lo, float hi,
                             float* dst, int64_t n)>& run,
    bool needs_b = true, bool specials = true) {
  const KernelTable& golden = simd::kernels_for(CpuLevel::kScalar);
  for (const CpuLevel level : simd::supported_levels()) {
    const KernelTable& kt = simd::kernels_for(level);
    std::mt19937 gen(1234u + static_cast<unsigned>(level));
    for (int c = 0; c < kFuzzCases; ++c) {
      const SpanCase sc = span_case(gen);
      std::uniform_real_distribution<float> scalar(-3.0f, 3.0f);
      const float s = scalar(gen);
      float lo = scalar(gen);
      float hi = scalar(gen);
      if (lo > hi) {
        std::swap(lo, hi);
      }
      const std::vector<float> a =
          fuzz_values(gen, sc.n + sc.offset, specials);
      const std::vector<float> b =
          fuzz_values(gen, sc.n + sc.offset, specials);
      std::vector<float> want(sc.n + sc.offset, 42.0f);
      std::vector<float> got(sc.n + sc.offset, 42.0f);
      const auto n = static_cast<int64_t>(sc.n);
      run(golden, a.data() + sc.offset, b.data() + sc.offset, s, lo, hi,
          want.data() + sc.offset, n);
      run(kt, a.data() + sc.offset, b.data() + sc.offset, s, lo, hi,
          got.data() + sc.offset, n);
      ASSERT_TRUE(bitwise_equal_spans(want.data(), got.data(),
                                      sc.n + sc.offset))
          << name << " diverges from scalar at tier "
          << simd::level_name(level) << ", case " << c << ", n " << sc.n
          << ", offset " << sc.offset;
      // In-place: dst aliasing a must behave identically.
      std::vector<float> inplace_want(a);
      std::vector<float> inplace_got(a);
      run(golden, inplace_want.data() + sc.offset, b.data() + sc.offset, s,
          lo, hi, inplace_want.data() + sc.offset, n);
      run(kt, inplace_got.data() + sc.offset, b.data() + sc.offset, s, lo,
          hi, inplace_got.data() + sc.offset, n);
      ASSERT_TRUE(bitwise_equal_spans(inplace_want.data(), inplace_got.data(),
                                      sc.n + sc.offset))
          << name << " in-place diverges at tier " << simd::level_name(level)
          << ", case " << c;
      (void)needs_b;
    }
  }
}

TEST(KernelFuzz, Add) {
  fuzz_elementwise("add", [](const KernelTable& kt, const float* a,
                             const float* b, float, float, float, float* dst,
                             int64_t n) { kt.add(a, b, dst, n); });
}

TEST(KernelFuzz, Sub) {
  fuzz_elementwise("sub", [](const KernelTable& kt, const float* a,
                             const float* b, float, float, float, float* dst,
                             int64_t n) { kt.sub(a, b, dst, n); });
}

TEST(KernelFuzz, Mul) {
  fuzz_elementwise("mul", [](const KernelTable& kt, const float* a,
                             const float* b, float, float, float, float* dst,
                             int64_t n) { kt.mul(a, b, dst, n); });
}

TEST(KernelFuzz, Div) {
  fuzz_elementwise("div", [](const KernelTable& kt, const float* a,
                             const float* b, float, float, float, float* dst,
                             int64_t n) { kt.div(a, b, dst, n); });
}

TEST(KernelFuzz, AddScalar) {
  fuzz_elementwise("add_scalar",
                   [](const KernelTable& kt, const float* a, const float*,
                      float s, float, float, float* dst, int64_t n) {
                     kt.add_scalar(a, s, dst, n);
                   },
                   /*needs_b=*/false);
}

TEST(KernelFuzz, MulScalar) {
  fuzz_elementwise("mul_scalar",
                   [](const KernelTable& kt, const float* a, const float*,
                      float s, float, float, float* dst, int64_t n) {
                     kt.mul_scalar(a, s, dst, n);
                   },
                   /*needs_b=*/false);
}

TEST(KernelFuzz, Relu) {
  fuzz_elementwise("relu",
                   [](const KernelTable& kt, const float* a, const float*,
                      float, float, float, float* dst, int64_t n) {
                     kt.relu(a, dst, n);
                   },
                   /*needs_b=*/false);
}

TEST(KernelFuzz, Clamp) {
  fuzz_elementwise("clamp",
                   [](const KernelTable& kt, const float* a, const float*,
                      float, float lo, float hi, float* dst, int64_t n) {
                     kt.clamp(a, lo, hi, dst, n);
                   },
                   /*needs_b=*/false);
}

TEST(KernelFuzz, Sqrt) {
  fuzz_elementwise("sqrt",
                   [](const KernelTable& kt, const float* a, const float*,
                      float, float, float, float* dst, int64_t n) {
                     kt.sqrt(a, dst, n);
                   },
                   /*needs_b=*/false);
}

TEST(KernelFuzz, Abs) {
  fuzz_elementwise("abs",
                   [](const KernelTable& kt, const float* a, const float*,
                      float, float, float, float* dst, int64_t n) {
                     kt.abs(a, dst, n);
                   },
                   /*needs_b=*/false);
}

TEST(KernelFuzz, Neg) {
  fuzz_elementwise("neg",
                   [](const KernelTable& kt, const float* a, const float*,
                      float, float, float, float* dst, int64_t n) {
                     kt.neg(a, dst, n);
                   },
                   /*needs_b=*/false);
}

TEST(KernelFuzz, Sign) {
  fuzz_elementwise("sign",
                   [](const KernelTable& kt, const float* a, const float*,
                      float, float, float, float* dst, int64_t n) {
                     kt.sign(a, dst, n);
                   },
                   /*needs_b=*/false);
}

TEST(KernelFuzz, AddScaled) {
  fuzz_elementwise("add_scaled",
                   [](const KernelTable& kt, const float* a, const float* b,
                      float s, float, float, float* dst, int64_t n) {
                     kt.add_scaled(a, b, s, dst, n);
                   });
}

TEST(KernelFuzz, AddScaledClamp) {
  fuzz_elementwise("add_scaled_clamp",
                   [](const KernelTable& kt, const float* a, const float* b,
                      float s, float lo, float hi, float* dst, int64_t n) {
                     kt.add_scaled_clamp(a, b, s, lo, hi, dst, n);
                   });
}

TEST(KernelFuzz, Axpy) {
  // axpy mutates y, so route it through the in-place-shaped runner: a is
  // the y buffer, dst receives the result.
  fuzz_elementwise("axpy",
                   [](const KernelTable& kt, const float* a, const float* b,
                      float s, float, float, float* dst, int64_t n) {
                     if (dst != a) {
                       std::memcpy(dst, a,
                                   static_cast<size_t>(n) * sizeof(float));
                     }
                     kt.axpy(dst, b, s, n);
                   });
}

TEST(KernelFuzz, GatherRow) {
  const KernelTable& golden = simd::kernels_for(CpuLevel::kScalar);
  for (const CpuLevel level : simd::supported_levels()) {
    const KernelTable& kt = simd::kernels_for(level);
    std::mt19937 gen(777u + static_cast<unsigned>(level));
    for (int c = 0; c < kFuzzCases; ++c) {
      std::uniform_int_distribution<int64_t> hw_dist(5, 40);
      const int64_t h = hw_dist(gen);
      const int64_t w = hw_dist(gen);
      std::uniform_int_distribution<int> tap_count(1, 9);
      std::uniform_int_distribution<int> reach(-2, 2);
      const int n_taps = tap_count(gen);
      std::vector<int64_t> deltas(static_cast<size_t>(n_taps));
      std::vector<float> weights(static_cast<size_t>(n_taps));
      int maxdy = 0;
      int maxdx = 0;
      std::uniform_real_distribution<float> wdist(-1.5f, 1.5f);
      for (int t = 0; t < n_taps; ++t) {
        const int dy = reach(gen);
        const int dx = reach(gen);
        maxdy = std::max(maxdy, std::abs(dy));
        maxdx = std::max(maxdx, std::abs(dx));
        deltas[static_cast<size_t>(t)] = static_cast<int64_t>(dy) * w + dx;
        weights[static_cast<size_t>(t)] = wdist(gen);
      }
      if (h <= 2 * maxdy || w <= 2 * maxdx) {
        continue;  // no interior on this geometry
      }
      const std::vector<float> plane =
          fuzz_values(gen, static_cast<size_t>(h * w));
      std::uniform_int_distribution<int64_t> ydist(maxdy, h - maxdy - 1);
      const int64_t y = ydist(gen);
      std::uniform_real_distribution<float> ddist(0.5f, 9.0f);
      const float divisor = ddist(gen);
      const auto mode = static_cast<GatherDivide>(c % 3);
      std::vector<float> want(static_cast<size_t>(w), 42.0f);
      std::vector<float> got(static_cast<size_t>(w), 42.0f);
      golden.gather_row(plane.data() + y * w, want.data(), maxdx, w - maxdx,
                        deltas.data(), weights.data(), n_taps, divisor, mode);
      kt.gather_row(plane.data() + y * w, got.data(), maxdx, w - maxdx,
                    deltas.data(), weights.data(), n_taps, divisor, mode);
      ASSERT_TRUE(bitwise_equal_spans(want.data(), got.data(),
                                      static_cast<size_t>(w)))
          << "gather_row diverges at tier " << simd::level_name(level)
          << ", case " << c << ", h " << h << ", w " << w << ", taps "
          << n_taps << ", mode " << static_cast<int>(mode);
    }
  }
}

// ---- gemm: tolerance vs double reference + bitwise chunk stability ---------

/// Definition-order double-precision reference for C = A·B.
std::vector<double> gemm_reference(const std::vector<float>& a,
                                   const std::vector<float>& b, int64_t m,
                                   int64_t k, int64_t n) {
  std::vector<double> c(static_cast<size_t>(m * n), 0.0);
  for (int64_t i = 0; i < m; ++i) {
    for (int64_t l = 0; l < k; ++l) {
      const double av = a[static_cast<size_t>(i * k + l)];
      for (int64_t j = 0; j < n; ++j) {
        c[static_cast<size_t>(i * n + j)] +=
            av * static_cast<double>(b[static_cast<size_t>(l * n + j)]);
      }
    }
  }
  return c;
}

/// Finite, zero-free matrix entries: the scalar golden gemm skips exact
/// ±0.0 A entries (the historical sparsity shortcut), so injecting zeros
/// would make "reference" ill-defined when B carries Inf/NaN.
std::vector<float> gemm_values(std::mt19937& gen, size_t n) {
  std::uniform_real_distribution<float> mag(0.01f, 2.0f);
  std::uniform_int_distribution<int> coin(0, 1);
  std::vector<float> out(n);
  for (float& v : out) {
    v = coin(gen) ? mag(gen) : -mag(gen);
  }
  return out;
}

TEST(GemmFuzz, EveryTierWithinDoubleReferenceBound) {
  for (const CpuLevel level : simd::supported_levels()) {
    const KernelTable& kt = simd::kernels_for(level);
    std::mt19937 gen(4321u + static_cast<unsigned>(level));
    for (int c = 0; c < 60; ++c) {
      std::uniform_int_distribution<int64_t> dim(1, 40);
      const int64_t m = dim(gen);
      const int64_t k = dim(gen);
      const int64_t n = dim(gen);
      const std::vector<float> a =
          gemm_values(gen, static_cast<size_t>(m * k));
      const std::vector<float> b =
          gemm_values(gen, static_cast<size_t>(k * n));
      std::vector<float> got(static_cast<size_t>(m * n), 0.0f);
      kt.gemm(a.data(), b.data(), got.data(), m, k, n, 0, m);
      const std::vector<double> ref = gemm_reference(a, b, m, k, n);
      for (int64_t i = 0; i < m * n; ++i) {
        // Scaled absolute bound: k additions of magnitude <= 4 each, so
        // the worst-case float accumulation error is ~k * 4 * eps; 8x
        // headroom over that covers the reassociated vector orders.
        const double bound =
            8.0 * static_cast<double>(k) * 4.0 * 1.19e-7 + 1e-6;
        ASSERT_NEAR(static_cast<double>(got[static_cast<size_t>(i)]),
                    ref[static_cast<size_t>(i)], bound)
            << "gemm tier " << simd::level_name(level) << ", case " << c
            << ", m " << m << " k " << k << " n " << n << ", index " << i;
      }
    }
  }
}

TEST(GemmFuzz, RowChunkingIsBitwiseIrrelevantPerTier) {
  // The parallel_for over GEMM rows may cut the row range anywhere; a
  // row's bits must not depend on the cut. This is the kernel-level face
  // of the train-determinism contract.
  for (const CpuLevel level : simd::supported_levels()) {
    const KernelTable& kt = simd::kernels_for(level);
    std::mt19937 gen(9876u + static_cast<unsigned>(level));
    for (int c = 0; c < 20; ++c) {
      std::uniform_int_distribution<int64_t> dim(1, 33);
      const int64_t m = dim(gen);
      const int64_t k = dim(gen);
      const int64_t n = dim(gen);
      const std::vector<float> a =
          gemm_values(gen, static_cast<size_t>(m * k));
      const std::vector<float> b =
          gemm_values(gen, static_cast<size_t>(k * n));
      std::vector<float> whole(static_cast<size_t>(m * n), 0.0f);
      kt.gemm(a.data(), b.data(), whole.data(), m, k, n, 0, m);
      std::uniform_int_distribution<int64_t> cut_dist(0, m);
      const int64_t cut = cut_dist(gen);
      std::vector<float> split(static_cast<size_t>(m * n), 0.0f);
      kt.gemm(a.data(), b.data(), split.data(), m, k, n, 0, cut);
      kt.gemm(a.data(), b.data(), split.data(), m, k, n, cut, m);
      ASSERT_TRUE(bitwise_equal_spans(whole.data(), split.data(),
                                      static_cast<size_t>(m * n)))
          << "gemm row-chunk sensitivity at tier " << simd::level_name(level)
          << ", case " << c << ", cut " << cut << "/" << m;
    }
  }
}

// ---- op / filter ring: whole subsystems under each tier override -----------

TEST(TierSweep, ElementwiseTensorOpsBitwiseIdenticalAcrossTiers) {
  Rng rng(11);
  const Tensor a = rng.uniform_tensor(Shape{3, 37, 41}, -2.0f, 2.0f);
  const Tensor b = rng.uniform_tensor(Shape{3, 37, 41}, -2.0f, 2.0f);
  std::vector<Tensor> scalar_results;
  for (const CpuLevel level : simd::supported_levels()) {
    LevelGuard guard(level);
    std::vector<Tensor> results;
    results.push_back(add(a, b));
    results.push_back(sub(a, b));
    results.push_back(mul(a, b));
    results.push_back(div(a, b));
    results.push_back(add(a, 0.37f));
    results.push_back(mul(a, -1.7f));
    results.push_back(relu(a));
    results.push_back(clamp(a, -0.5f, 0.5f));
    results.push_back(fademl::abs(a));
    results.push_back(neg(a));
    results.push_back(sign(a));
    results.push_back(add_scaled(a, b, -0.25f));
    results.push_back(add_scaled_clamp(a, b, 0.25f, 0.0f, 1.0f));
    if (level == CpuLevel::kScalar) {
      scalar_results = std::move(results);
      continue;
    }
    ASSERT_EQ(results.size(), scalar_results.size());
    for (size_t i = 0; i < results.size(); ++i) {
      ASSERT_EQ(std::memcmp(results[i].data(), scalar_results[i].data(),
                            sizeof(float) *
                                static_cast<size_t>(results[i].numel())),
                0)
          << "tensor op " << i << " diverges at tier "
          << simd::level_name(level);
    }
  }
}

TEST(TierSweep, FiltersBitwiseIdenticalAcrossTiers) {
  // Filters are pure gather + elementwise — no gemm — so every tier must
  // agree bitwise on forward AND adjoint, borders included.
  Rng rng(23);
  const Tensor image = rng.uniform_tensor(Shape{3, 19, 23}, 0.0f, 1.0f);
  const Tensor grad = rng.uniform_tensor(Shape{3, 19, 23}, -1.0f, 1.0f);
  const Tensor batch = rng.uniform_tensor(Shape{4, 3, 19, 23}, 0.0f, 1.0f);
  const Tensor gbatch = rng.uniform_tensor(Shape{4, 3, 19, 23}, -1.0f, 1.0f);
  const std::vector<filters::FilterPtr> filters = {
      filters::make_lap(8),     filters::make_lap(32),
      filters::make_lar(2),     filters::make_lar(5),
      filters::make_gaussian(0.8f), filters::make_gaussian(1.6f)};
  for (const filters::FilterPtr& f : filters) {
    Tensor fwd_ref, vjp_ref, bfwd_ref, bvjp_ref;
    for (const CpuLevel level : simd::supported_levels()) {
      LevelGuard guard(level);
      const Tensor fwd = f->apply(image);
      const Tensor vjp = f->vjp(image, grad);
      const Tensor bfwd = f->apply_batch(batch);
      const Tensor bvjp = f->vjp_batch(batch, gbatch);
      if (level == CpuLevel::kScalar) {
        fwd_ref = fwd;
        vjp_ref = vjp;
        bfwd_ref = bfwd;
        bvjp_ref = bvjp;
        continue;
      }
      const auto same = [](const Tensor& x, const Tensor& y) {
        return std::memcmp(x.data(), y.data(),
                           sizeof(float) *
                               static_cast<size_t>(x.numel())) == 0;
      };
      EXPECT_TRUE(same(fwd, fwd_ref))
          << f->name() << " apply at " << simd::level_name(level);
      EXPECT_TRUE(same(vjp, vjp_ref))
          << f->name() << " vjp at " << simd::level_name(level);
      EXPECT_TRUE(same(bfwd, bfwd_ref))
          << f->name() << " apply_batch at " << simd::level_name(level);
      EXPECT_TRUE(same(bvjp, bvjp_ref))
          << f->name() << " vjp_batch at " << simd::level_name(level);
    }
  }
}

TEST(TierSweep, MatmulAndConvCloseAcrossTiers) {
  Rng rng(31);
  const Tensor a = rng.normal_tensor(Shape{37, 29}, 0.0f, 1.0f);
  const Tensor b = rng.normal_tensor(Shape{29, 43}, 0.0f, 1.0f);
  const Tensor batch = rng.normal_tensor(Shape{2, 3, 17, 19}, 0.0f, 1.0f);
  const Tensor weight = rng.normal_tensor(Shape{8, 3, 3, 3}, 0.0f, 0.3f);
  const Tensor bias = rng.normal_tensor(Shape{8}, 0.0f, 0.1f);
  Conv2dSpec spec;
  spec.kernel_h = 3;
  spec.kernel_w = 3;
  spec.pad = 1;
  Tensor mat_ref, conv_ref;
  for (const CpuLevel level : simd::supported_levels()) {
    LevelGuard guard(level);
    const Tensor mat = matmul(a, b);
    const Tensor conv = conv2d(batch, weight, bias, spec);
    if (level == CpuLevel::kScalar) {
      mat_ref = mat;
      conv_ref = conv;
      continue;
    }
    for (int64_t i = 0; i < mat.numel(); ++i) {
      ASSERT_NEAR(mat.at(i), mat_ref.at(i), 1e-3f)
          << "matmul tier " << simd::level_name(level) << " index " << i;
    }
    for (int64_t i = 0; i < conv.numel(); ++i) {
      ASSERT_NEAR(conv.at(i), conv_ref.at(i), 1e-3f)
          << "conv2d tier " << simd::level_name(level) << " index " << i;
    }
  }
}

// ---- pipeline ring ---------------------------------------------------------

/// The pre-SIMD prediction golden: predict_probs_batch over 7 canonical
/// GTSRB samples through LAP(32)+VGG/8 at TM-I then TM-III, CRC32-chained.
/// Captured from the tree immediately before the SIMD layer landed; the
/// scalar tier must reproduce it bit for bit, forever.
constexpr uint32_t kPredictionGoldenCrc = 0xdb83ad2fu;

uint32_t prediction_crc() {
  Rng rng(1);
  nn::VggConfig config = nn::VggConfig::scaled(8);
  auto model = nn::make_vggnet(config, rng);
  model->set_training(false);
  core::InferencePipeline pipeline(model, filters::make_lap(32));
  std::vector<Tensor> images;
  images.reserve(7);
  for (int i = 0; i < 7; ++i) {
    images.push_back(data::canonical_sample(i * 5 % 43, 32));
  }
  const Tensor batch = nn::stack_images(images);
  uint32_t crc = 0;
  for (const auto tm : {core::ThreatModel::kI, core::ThreatModel::kIII}) {
    const Tensor probs = pipeline.predict_probs_batch(batch, tm);
    crc = crc32(probs.data(),
                sizeof(float) * static_cast<size_t>(probs.numel()), crc);
  }
  return crc;
}

TEST(PredictionIdentity, ScalarTierReproducesPreSimdGoldenCrc) {
  ThreadGuard threads(1);
  LevelGuard guard(CpuLevel::kScalar);
  EXPECT_EQ(prediction_crc(), kPredictionGoldenCrc)
      << "scalar-tier predictions drifted from the pre-SIMD baseline";
}

TEST(PredictionIdentity, PredictBatchProbsCloseAcrossTiers) {
  ThreadGuard threads(1);
  Rng rng(1);
  nn::VggConfig config = nn::VggConfig::scaled(8);
  auto model = nn::make_vggnet(config, rng);
  model->set_training(false);
  core::InferencePipeline pipeline(model, filters::make_lap(32));
  std::vector<Tensor> images;
  for (int i = 0; i < 3; ++i) {
    images.push_back(data::canonical_sample(i * 7 % 43, 32));
  }
  const Tensor batch = nn::stack_images(images);
  Tensor ref;
  for (const CpuLevel level : simd::supported_levels()) {
    LevelGuard guard(level);
    const Tensor probs =
        pipeline.predict_probs_batch(batch, core::ThreatModel::kIII);
    if (level == CpuLevel::kScalar) {
      ref = probs;
      continue;
    }
    for (int64_t i = 0; i < probs.numel(); ++i) {
      // Softmax output differences across tiers come only from gemm's
      // reassociation — observed ~6e-8, bounded generously here.
      ASSERT_NEAR(probs.at(i), ref.at(i), 1e-4f)
          << "tier " << simd::level_name(level) << " prob " << i;
    }
  }
}

}  // namespace
}  // namespace fademl
