#pragma once

// Naive, obviously-correct reference kernels for differential testing of
// the parallelized tensor/filter implementations. Every function here is
// a direct transcription of the operation's definition — single loop
// nest, no blocking, no im2col, no parallelism — so a mismatch against
// the production kernel localizes the bug to the fast path.
//
// Tolerance guidance (see docs/performance.md):
//  - conv2d / matmul vs their references: the production kernels reorder
//    the reduction (im2col + i-k-j), so compare with a small absolute +
//    relative bound, NOT exact equality.
//  - production kernel at 1 thread vs N threads: bitwise equality. The
//    pool's chunk decomposition never depends on the thread count, so any
//    difference is a determinism bug, not float noise.

#include <algorithm>
#include <cstring>
#include <limits>
#include <utility>
#include <vector>

#include "fademl/tensor/ops.hpp"
#include "fademl/tensor/tensor.hpp"

namespace fademl::testing {

/// Definition-order matmul: out[i][j] = sum_k a[i][k] * b[k][j].
inline Tensor matmul_reference(const Tensor& a, const Tensor& b) {
  const int64_t m = a.dim(0);
  const int64_t k = a.dim(1);
  const int64_t n = b.dim(1);
  Tensor out = Tensor::zeros(Shape{m, n});
  for (int64_t i = 0; i < m; ++i) {
    for (int64_t j = 0; j < n; ++j) {
      float acc = 0.0f;
      for (int64_t kk = 0; kk < k; ++kk) {
        acc += a.at({i, kk}) * b.at({kk, j});
      }
      out.at({i, j}) = acc;
    }
  }
  return out;
}

/// Naive convolution: walk every output element's receptive field.
inline Tensor conv2d_reference(const Tensor& input, const Tensor& weight,
                               const Tensor& bias, const Conv2dSpec& spec) {
  const int64_t n = input.dim(0), c = input.dim(1), h = input.dim(2),
                w = input.dim(3);
  const int64_t o = weight.dim(0);
  const int64_t oh = spec.out_size(h, spec.kernel_h);
  const int64_t ow = spec.out_size(w, spec.kernel_w);
  Tensor out = Tensor::zeros(Shape{n, o, oh, ow});
  for (int64_t b = 0; b < n; ++b) {
    for (int64_t oc = 0; oc < o; ++oc) {
      for (int64_t oy = 0; oy < oh; ++oy) {
        for (int64_t ox = 0; ox < ow; ++ox) {
          float acc = bias.defined() ? bias.at(oc) : 0.0f;
          for (int64_t ic = 0; ic < c; ++ic) {
            for (int64_t ky = 0; ky < spec.kernel_h; ++ky) {
              for (int64_t kx = 0; kx < spec.kernel_w; ++kx) {
                const int64_t iy = oy * spec.stride + ky - spec.pad;
                const int64_t ix = ox * spec.stride + kx - spec.pad;
                if (iy < 0 || iy >= h || ix < 0 || ix >= w) {
                  continue;
                }
                acc += input.at({b, ic, iy, ix}) *
                       weight.at({oc, ic, ky, kx});
              }
            }
          }
          out.at({b, oc, oy, ox}) = acc;
        }
      }
    }
  }
  return out;
}

/// Naive max pooling over non-overlapping k x k windows.
inline Tensor maxpool2d_reference(const Tensor& input, int64_t k) {
  const int64_t n = input.dim(0), c = input.dim(1), h = input.dim(2),
                w = input.dim(3);
  const int64_t oh = h / k;
  const int64_t ow = w / k;
  Tensor out{Shape{n, c, oh, ow}};
  for (int64_t b = 0; b < n; ++b) {
    for (int64_t ch = 0; ch < c; ++ch) {
      for (int64_t oy = 0; oy < oh; ++oy) {
        for (int64_t ox = 0; ox < ow; ++ox) {
          float best = -std::numeric_limits<float>::infinity();
          for (int64_t dy = 0; dy < k; ++dy) {
            for (int64_t dx = 0; dx < k; ++dx) {
              best = std::max(best,
                              input.at({b, ch, oy * k + dy, ox * k + dx}));
            }
          }
          out.at({b, ch, oy, ox}) = best;
        }
      }
    }
  }
  return out;
}

/// Definition-order neighborhood average (the LAP/LAR forward): for every
/// pixel, average the in-bounds offset neighborhood; `center_implicit`
/// always counts the pixel itself (LAP semantics).
inline Tensor neighborhood_average_reference(
    const Tensor& image, const std::vector<std::pair<int, int>>& offsets,
    bool center_implicit) {
  const int64_t c = image.dim(0), h = image.dim(1), w = image.dim(2);
  Tensor out{image.shape()};
  for (int64_t ch = 0; ch < c; ++ch) {
    for (int64_t y = 0; y < h; ++y) {
      for (int64_t x = 0; x < w; ++x) {
        float acc = center_implicit ? image.at({ch, y, x}) : 0.0f;
        int count = center_implicit ? 1 : 0;
        for (const auto& [dy, dx] : offsets) {
          const int64_t ny = y + dy;
          const int64_t nx = x + dx;
          if (ny < 0 || ny >= h || nx < 0 || nx >= w) {
            continue;
          }
          acc += image.at({ch, ny, nx});
          ++count;
        }
        out.at({ch, y, x}) = acc / static_cast<float>(count);
      }
    }
  }
  return out;
}

/// Scatter-form adjoint of neighborhood_average_reference — the
/// pre-parallel formulation, kept as the golden for the gather-form
/// production adjoint (same math, different float summation order).
inline Tensor neighborhood_average_adjoint_reference(
    const Tensor& grad_output, const std::vector<std::pair<int, int>>& offsets,
    bool center_implicit) {
  const int64_t c = grad_output.dim(0), h = grad_output.dim(1),
                w = grad_output.dim(2);
  Tensor grad_in = Tensor::zeros(grad_output.shape());
  for (int64_t ch = 0; ch < c; ++ch) {
    for (int64_t y = 0; y < h; ++y) {
      for (int64_t x = 0; x < w; ++x) {
        int count = center_implicit ? 1 : 0;
        for (const auto& [dy, dx] : offsets) {
          const int64_t ny = y + dy;
          const int64_t nx = x + dx;
          if (ny >= 0 && ny < h && nx >= 0 && nx < w) {
            ++count;
          }
        }
        const float share =
            grad_output.at({ch, y, x}) / static_cast<float>(count);
        if (center_implicit) {
          grad_in.at({ch, y, x}) += share;
        }
        for (const auto& [dy, dx] : offsets) {
          const int64_t ny = y + dy;
          const int64_t nx = x + dx;
          if (ny < 0 || ny >= h || nx < 0 || nx >= w) {
            continue;
          }
          grad_in.at({ch, ny, nx}) += share;
        }
      }
    }
  }
  return grad_in;
}

/// True when the two tensors have the same shape and bitwise-identical
/// float payloads. Use for 1-thread-vs-N-thread comparisons where the
/// determinism contract promises exact equality.
inline bool bitwise_equal(const Tensor& a, const Tensor& b) {
  if (a.shape() != b.shape()) {
    return false;
  }
  const float* pa = a.data();
  const float* pb = b.data();
  for (int64_t i = 0; i < a.numel(); ++i) {
    if (std::memcmp(&pa[i], &pb[i], sizeof(float)) != 0) {
      return false;
    }
  }
  return true;
}

}  // namespace fademl::testing
