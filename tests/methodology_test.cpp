#include "fademl/core/methodology.hpp"

#include <gtest/gtest.h>

#include "fademl/attacks/bim.hpp"

#include "fademl/tensor/error.hpp"
#include "fademl/tensor/ops.hpp"
#include "test_fixtures.hpp"

namespace fademl::core {
namespace {

using fademl::testing::tiny_pipeline;

attacks::AttackConfig budget() {
  attacks::AttackConfig config;
  config.epsilon = 0.18f;
  config.step_size = 0.02f;
  config.max_iterations = 25;
  return config;
}

TEST(FademlMethodology, RejectsTm1Route) {
  const auto pipeline = tiny_pipeline(filters::make_lap(8));
  EXPECT_THROW(run_fademl_methodology(pipeline, attacks::AttackKind::kBim,
                                      paper_scenarios()[0], 16, budget(),
                                      ThreatModel::kI),
               Error);
}

TEST(FademlMethodology, TraceFieldsAreCoherent) {
  const auto pipeline = tiny_pipeline(filters::make_lap(8));
  const FademlTrace trace = run_fademl_methodology(
      pipeline, attacks::AttackKind::kBim, paper_scenarios()[0], 16,
      budget());
  // Step 1 precondition held.
  EXPECT_NE(trace.x_clean.label, trace.y_clean.label);
  EXPECT_EQ(trace.x.shape(), Shape({3, 16, 16}));
  // Step 3 produced a bounded perturbation.
  EXPECT_LE(trace.attack.linf, budget().epsilon + 1e-5f);
  // Step 5's Eq.-2 matches a recomputation from the stored predictions.
  EXPECT_NEAR(trace.eq2, eq2_cost(trace.x_star_tm1.probs,
                                  trace.x_star_filtered.probs),
              1e-6f);
  // Step 6: on the overfit fixture the attack lands the target.
  EXPECT_TRUE(trace.success());
  EXPECT_EQ(trace.x_star_filtered.label, paper_scenarios()[0].target_class);
}

TEST(FademlMethodology, FilterAwareExampleIsViewConsistent) {
  // The methodology's design goal (step 5): the aware example's Eq.-2
  // cost between views must be no larger than a blind BIM example's.
  const auto pipeline = tiny_pipeline(filters::make_lap(8));
  const Scenario& scenario = paper_scenarios()[0];
  const FademlTrace aware = run_fademl_methodology(
      pipeline, attacks::AttackKind::kBim, scenario, 16, budget());

  const attacks::BimAttack blind(budget());
  const ScenarioOutcome blind_out =
      analyze_scenario(pipeline, blind, scenario, 16);
  EXPECT_LE(std::abs(aware.eq2), std::abs(blind_out.eq2) + 0.25f);
}

TEST(FademlMethodology, WorksAlongTm2) {
  const auto pipeline = tiny_pipeline(filters::make_lap(4));
  const FademlTrace trace = run_fademl_methodology(
      pipeline, attacks::AttackKind::kBim, paper_scenarios()[1], 16,
      budget(), ThreatModel::kII);
  EXPECT_EQ(trace.x_star_filtered.probs.numel(), 43);
  // TM-II view recorded (blur + filter): fields populated and normalized.
  EXPECT_NEAR(sum(trace.x_star_filtered.probs), 1.0f, 1e-4f);
}

}  // namespace
}  // namespace fademl::core
