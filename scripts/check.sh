#!/usr/bin/env bash
# Repo health check: the tier-1 build + test run, optionally followed by an
# AddressSanitizer/UBSan pass over the same test suite.
#
#   scripts/check.sh            # tier-1: configure, build, ctest
#   scripts/check.sh --asan     # tier-1, then a FADEML_SANITIZE=ON build
#                               # in build-asan/ and the tests under ASan/UBSan
set -euo pipefail

cd "$(dirname "$0")/.."

run_suite() {
  local build_dir="$1"
  shift
  cmake -B "$build_dir" -S . "$@"
  cmake --build "$build_dir" -j
  ctest --test-dir "$build_dir" --output-on-failure -j "$(nproc)"
}

echo "== tier-1: build + ctest =="
run_suite build

if [[ "${1:-}" == "--asan" ]]; then
  echo
  echo "== sanitizers: ASan/UBSan build + ctest =="
  export ASAN_OPTIONS="${ASAN_OPTIONS:-detect_leaks=0}"
  export UBSAN_OPTIONS="${UBSAN_OPTIONS:-print_stacktrace=1:halt_on_error=1}"
  run_suite build-asan -DFADEML_SANITIZE=ON -DCMAKE_BUILD_TYPE=RelWithDebInfo
fi

echo
echo "check.sh: all green"
