#!/usr/bin/env bash
# Repo health check: the tier-1 build + test run, optionally followed by a
# sanitizer pass.
#
#   scripts/check.sh            # tier-1: configure, build, ctest
#   scripts/check.sh --asan     # tier-1, then a FADEML_SANITIZE=address
#                               # build in build-asan/ and the tests under
#                               # ASan/UBSan
#   scripts/check.sh --tsan     # tier-1, then a FADEML_SANITIZE=thread
#                               # build in build-tsan/ running the
#                               # concurrent suites (obs_test,
#                               # parallel_test, serve_test incl. the
#                               # micro-batching chaos tests,
#                               # supervision_test incl. the hot-swap vs
#                               # worker-restart race, net_test incl. the
#                               # network chaos tests) under
#                               # ThreadSanitizer
set -euo pipefail

cd "$(dirname "$0")/.."

run_suite() {
  local build_dir="$1"
  shift
  cmake -B "$build_dir" -S . "$@"
  cmake --build "$build_dir" -j
  ctest --test-dir "$build_dir" --output-on-failure -j "$(nproc)"
}

echo "== tier-1: build + ctest =="
run_suite build

case "${1:-}" in
  --asan)
    echo
    echo "== sanitizers: ASan/UBSan build + ctest =="
    export ASAN_OPTIONS="${ASAN_OPTIONS:-detect_leaks=0}"
    export UBSAN_OPTIONS="${UBSAN_OPTIONS:-print_stacktrace=1:halt_on_error=1}"
    run_suite build-asan -DFADEML_SANITIZE=address -DCMAKE_BUILD_TYPE=RelWithDebInfo
    ;;
  --tsan)
    echo
    echo "== sanitizers: TSan build + obs_test + parallel_test + simd_kernels_test + arena_test + serve_test + supervision_test + net_test + plan_test =="
    export TSAN_OPTIONS="${TSAN_OPTIONS:-halt_on_error=1 second_deadlock_stack=1 suppressions=$(pwd)/scripts/tsan.supp}"
    cmake -B build-tsan -S . -DFADEML_SANITIZE=thread -DCMAKE_BUILD_TYPE=RelWithDebInfo
    cmake --build build-tsan -j --target obs_test parallel_test simd_kernels_test arena_test serve_test train_determinism_test supervision_test net_test plan_test
    # The observability primitives first (registry/trace collector are the
    # shared reporting substrate), then the thread-pool suite that the
    # other concurrent suites sit on.
    ./build-tsan/tests/obs_test
    ./build-tsan/tests/parallel_test
    # The SIMD differential sweep + the arena/buffer-pool suite: the
    # dispatcher's cached env parse, the pool's use_count-based returns,
    # and the filters' fan-out over pool threads are all cross-thread.
    FADEML_NUM_THREADS=4 ./build-tsan/tests/simd_kernels_test
    FADEML_NUM_THREADS=4 ./build-tsan/tests/arena_test
    FADEML_NUM_THREADS=4 ./build-tsan/tests/train_determinism_test
    ./build-tsan/tests/serve_test
    # The micro-batching chaos tests again with a wider intra-op pool:
    # gather/coalesce/fan-out races only exist when batch rows span
    # worker and pool threads at once.
    FADEML_NUM_THREADS=4 ./build-tsan/tests/serve_test \
      --gtest_filter='*MicroBatch*:*Gather*:*Batch*'
    # The self-healing suite: supervisor abandon/respawn, restart budget +
    # backoff deferral, poison quarantine, and the hot-swap vs
    # worker-restart race (every served prediction must come from a
    # fully-published model).
    ./build-tsan/tests/supervision_test
    # The network chaos suite: retrying client vs injected resets /
    # partial frames / slow peers, hot swap under load, drain shutdown.
    ./build-tsan/tests/net_test
    # The compiled-plan suite: plan-vs-tape identity under a wide pool,
    # and the swap-under-load chaos test (plan caches invalidating while
    # client threads hammer predictions across hot swaps).
    FADEML_NUM_THREADS=4 ./build-tsan/tests/plan_test
    ;;
  "")
    ;;
  *)
    echo "usage: scripts/check.sh [--asan|--tsan]" >&2
    exit 2
    ;;
esac

echo
echo "check.sh: all green"
